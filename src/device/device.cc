#include "device/device.h"

#include <algorithm>
#include <cstdlib>

#include "common/fault_injection.h"
#include "common/status.h"
#include "kernels/registry.h"

namespace ucudnn::device {

DeviceSpec k80_spec() {
  // Per GK210 die: the 8.73 SP TFlop/s / 480 GB/s in Table I are per board
  // (two dies); frameworks see each die as one device.
  return DeviceSpec{.name = "K80",
                    .peak_sp_gflops = 4365.0,
                    .mem_bandwidth_gbs = 240.0,
                    .memory_bytes = std::size_t{12} << 30,
                    .kernel_overhead_us = 8.0,
                    .batch_half = 6.0};
}

DeviceSpec p100_sxm2_spec() {
  return DeviceSpec{.name = "P100-SXM2",
                    .peak_sp_gflops = 10600.0,
                    .mem_bandwidth_gbs = 732.0,
                    .memory_bytes = std::size_t{16} << 30,
                    .kernel_overhead_us = 6.0,
                    .batch_half = 10.0};
}

DeviceSpec v100_sxm2_spec() {
  return DeviceSpec{.name = "V100-SXM2",
                    .peak_sp_gflops = 15700.0,
                    .mem_bandwidth_gbs = 900.0,
                    .memory_bytes = std::size_t{16} << 30,
                    .kernel_overhead_us = 5.0,
                    .batch_half = 14.0};
}

DeviceSpec host_cpu_spec() {
  return DeviceSpec{.name = "HostCpu",
                    .peak_sp_gflops = 200.0,
                    .mem_bandwidth_gbs = 30.0,
                    .memory_bytes = std::size_t{64} << 30,
                    .kernel_overhead_us = 20.0,
                    .batch_half = 2.0,
                    .measured = true};
}

double algo_efficiency(ConvKernelType type, int algo) noexcept {
  // Fractions of peak, calibrated to reproduce cuDNN's qualitative ordering:
  // zero-workspace algorithms run far below peak; staged GEMM/FFT/Winograd
  // variants approach it. (FFT/Winograd flop counts are already reduced by
  // the registry's cost model, so their efficiency is on transformed flops.)
  using namespace kernels;
  switch (type) {
    case ConvKernelType::kForward:
      switch (algo) {
        case fwd_algo::kImplicitGemm: return 0.28;
        case fwd_algo::kImplicitPrecompGemm: return 0.42;
        case fwd_algo::kGemm: return 0.58;
        case fwd_algo::kDirect: return 0.08;
        case fwd_algo::kFft: return 0.50;
        case fwd_algo::kFftTiling: return 0.44;
        case fwd_algo::kWinograd: return 0.46;
        case fwd_algo::kWinogradNonfused: return 0.60;
      }
      break;
    case ConvKernelType::kBackwardData:
      switch (algo) {
        case bwd_data_algo::kAlgo0: return 0.22;
        case bwd_data_algo::kAlgo1: return 0.52;
        case bwd_data_algo::kFft: return 0.50;
        case bwd_data_algo::kFftTiling: return 0.44;
        case bwd_data_algo::kWinograd: return 0.44;
        case bwd_data_algo::kWinogradNonfused: return 0.58;
      }
      break;
    case ConvKernelType::kBackwardFilter:
      switch (algo) {
        case bwd_filter_algo::kAlgo0: return 0.20;
        case bwd_filter_algo::kAlgo1: return 0.45;
        case bwd_filter_algo::kFft: return 0.50;
        case bwd_filter_algo::kAlgo3: return 0.58;
      }
      break;
  }
  return 0.1;
}

Device::Device(DeviceSpec spec, int ordinal)
    : spec_(std::move(spec)), ordinal_(ordinal) {}

double Device::model_time_ms(ConvKernelType type, int algo,
                             const kernels::ConvProblem& p) const {
  const double flops = kernels::algo_flops(type, algo, p);
  const double traffic = kernels::algo_traffic_bytes(type, algo, p);
  const double batch = static_cast<double>(p.batch());
  const double utilization = batch / (batch + spec_.batch_half);
  const double eff = algo_efficiency(type, algo) * utilization;
  const double compute_ms = flops / (eff * spec_.peak_sp_gflops * 1e9) * 1e3;
  const double memory_ms =
      traffic / (spec_.mem_bandwidth_gbs * 1e9) * 1e3;
  return spec_.kernel_overhead_us * 1e-3 + std::max(compute_ms, memory_ms);
}

void* Device::allocate(std::size_t bytes, const std::string& tag) {
  // Before any state is touched, so an injected OOM leaves nothing to undo.
  FaultInjector::instance().fail_point(FaultSite::kAlloc);
  MutexLock lock(mutex_);
  check(in_use_ + bytes <= spec_.memory_bytes, Status::kAllocFailed,
        spec_.name + ": out of device memory allocating " +
            std::to_string(bytes) + " bytes (" + std::to_string(in_use_) +
            " in use of " + std::to_string(spec_.memory_bytes) + ")");
  void* ptr = std::malloc(std::max<std::size_t>(bytes, 1));
  check(ptr != nullptr, Status::kAllocFailed, "host allocation failed");
  allocations_[ptr] = Allocation{bytes, tag};
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  tag_usage_[tag] += bytes;
  tag_peak_[tag] = std::max(tag_peak_[tag], tag_usage_[tag]);
  return ptr;
}

void Device::deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  MutexLock lock(mutex_);
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) return;
  in_use_ -= it->second.bytes;
  tag_usage_[it->second.tag] -= it->second.bytes;
  allocations_.erase(it);
  std::free(ptr);
}

std::size_t Device::bytes_in_use() const {
  MutexLock lock(mutex_);
  return in_use_;
}

std::size_t Device::peak_bytes() const {
  MutexLock lock(mutex_);
  return peak_;
}

std::map<std::string, std::size_t> Device::usage_by_tag() const {
  MutexLock lock(mutex_);
  return tag_usage_;
}

std::map<std::string, std::size_t> Device::peak_by_tag() const {
  MutexLock lock(mutex_);
  return tag_peak_;
}

void Device::advance_clock_ms(double ms) { advance_stream_ms(0, ms); }

void Device::advance_stream_ms(int stream, double ms) {
  MutexLock lock(mutex_);
  stream_clocks_[stream] += ms;
}

double Device::clock_ms() const {
  MutexLock lock(mutex_);
  double wall = 0.0;
  for (const auto& [stream, clock] : stream_clocks_) {
    (void)stream;
    wall = std::max(wall, clock);
  }
  return wall;
}

double Device::stream_clock_ms(int stream) const {
  MutexLock lock(mutex_);
  const auto it = stream_clocks_.find(stream);
  return it == stream_clocks_.end() ? 0.0 : it->second;
}

void Device::sync_streams() {
  MutexLock lock(mutex_);
  double wall = 0.0;
  for (const auto& [stream, clock] : stream_clocks_) {
    (void)stream;
    wall = std::max(wall, clock);
  }
  for (auto& [stream, clock] : stream_clocks_) {
    (void)stream;
    clock = wall;
  }
}

void Device::reset_clock() {
  MutexLock lock(mutex_);
  stream_clocks_.clear();
}

Node::Node(const DeviceSpec& spec, int device_count) {
  check_param(device_count >= 1, "node needs at least one device");
  devices_.reserve(static_cast<std::size_t>(device_count));
  for (int i = 0; i < device_count; ++i) {
    devices_.push_back(std::make_shared<Device>(spec, i));
  }
}

}  // namespace ucudnn::device
