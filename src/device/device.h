// Device abstraction: the paper measures real GPUs (K80, P100-SXM2,
// V100-SXM2); this reproduction substitutes a calibrated device simulator
// plus a real host-CPU backend (see DESIGN.md §2).
//
// A Device provides:
//  * a spec (peak flop/s, memory bandwidth, memory capacity, launch overhead)
//    used by the analytic kernel-time model,
//  * tracked "device memory" allocation (throws kAllocFailed past capacity;
//    records current/peak/per-tag usage — the basis of the Fig. 12 memory
//    breakdowns),
//  * a virtual clock advanced by modeled kernel times when executing in
//    Virtual mode (network-scale benchmarks finish in milliseconds).
//
// A Node groups several homogeneous devices (μ-cuDNN's parallel
// micro-benchmarking distributes work across the node, §III-D).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "kernels/conv_problem.h"

namespace ucudnn::device {

/// Static description of one accelerator.
struct DeviceSpec {
  std::string name;
  double peak_sp_gflops = 0.0;      // single-precision peak
  double mem_bandwidth_gbs = 0.0;   // DRAM bandwidth
  std::size_t memory_bytes = 0;     // capacity ("GPU memory")
  double kernel_overhead_us = 5.0;  // fixed per-kernel launch cost
  double batch_half = 8.0;          // micro-batch size at 50% utilization
  bool measured = false;            // true: run & time real kernels (host CPU)
};

/// Profiles of the paper's three evaluation GPUs (Table I; per-GPU numbers —
/// the K80 figures are per GK210 die) and the host CPU backend.
DeviceSpec k80_spec();
DeviceSpec p100_sxm2_spec();
DeviceSpec v100_sxm2_spec();
DeviceSpec host_cpu_spec();

/// Modeled efficiency (fraction of peak) of an algorithm, before the
/// small-batch utilization penalty. Exposed for tests/ablation.
double algo_efficiency(ConvKernelType type, int algo) noexcept;

class Device {
 public:
  explicit Device(DeviceSpec spec, int ordinal = 0);

  const DeviceSpec& spec() const noexcept { return spec_; }
  int ordinal() const noexcept { return ordinal_; }
  bool is_simulated() const noexcept { return !spec_.measured; }

  /// Analytic kernel time: overhead + max(compute-time, memory-time), with
  /// algorithm efficiency and a small-batch utilization factor
  /// n / (n + batch_half). Deterministic. Milliseconds.
  double model_time_ms(ConvKernelType type, int algo,
                       const kernels::ConvProblem& p) const;

  /// Tracked allocation of "device memory" (really host memory). Throws
  /// Error(kAllocFailed) when the device capacity would be exceeded.
  /// `tag` groups allocations for per-layer reporting.
  void* allocate(std::size_t bytes, const std::string& tag);
  void deallocate(void* ptr) noexcept;

  std::size_t bytes_in_use() const;
  std::size_t peak_bytes() const;
  /// Current bytes per allocation tag.
  std::map<std::string, std::size_t> usage_by_tag() const;
  /// Peak bytes ever held under a tag.
  std::map<std::string, std::size_t> peak_by_tag() const;

  /// Virtual execution clocks. Streams model CUDA streams: kernels on
  /// different streams overlap, so wall time is the maximum stream clock.
  /// advance_clock_ms is shorthand for stream 0.
  void advance_clock_ms(double ms);
  void advance_stream_ms(int stream, double ms);
  /// Wall clock: the maximum over all stream clocks.
  double clock_ms() const;
  double stream_clock_ms(int stream) const;
  /// Joins all streams at the current wall clock (cudaDeviceSynchronize).
  void sync_streams();
  void reset_clock();

 private:
  struct Allocation {
    std::size_t bytes;
    std::string tag;
  };

  DeviceSpec spec_;
  int ordinal_;
  mutable Mutex mutex_{"Device"};
  std::map<void*, Allocation> allocations_ GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> tag_usage_ GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> tag_peak_ GUARDED_BY(mutex_);
  std::size_t in_use_ GUARDED_BY(mutex_) = 0;
  std::size_t peak_ GUARDED_BY(mutex_) = 0;
  std::map<int, double> stream_clocks_ GUARDED_BY(mutex_);
};

/// A compute node with one or more homogeneous devices.
class Node {
 public:
  Node(const DeviceSpec& spec, int device_count);

  std::size_t device_count() const noexcept { return devices_.size(); }
  const std::shared_ptr<Device>& device(std::size_t i) const {
    return devices_.at(i);
  }
  const std::vector<std::shared_ptr<Device>>& devices() const noexcept {
    return devices_;
  }

 private:
  std::vector<std::shared_ptr<Device>> devices_;
};

}  // namespace ucudnn::device
