// FFT substrate used by the FFT-based convolution algorithms.
//
// Provides an in-place iterative radix-2 complex FFT for power-of-two sizes,
// a Bluestein chirp-z fallback for arbitrary sizes, and a row-major 2-D
// transform. Inverse transforms are normalized by 1/n.
#pragma once

#include <complex>
#include <cstddef>

namespace ucudnn::fft {

using Complex = std::complex<float>;

/// In-place complex FFT of power-of-two length (throws kBadParam otherwise).
void fft_pow2(Complex* data, std::size_t n, bool inverse);

/// In-place complex FFT of arbitrary length (radix-2 or Bluestein).
void fft(Complex* data, std::size_t n, bool inverse);

/// In-place 2-D FFT of a row-major rows x cols matrix (arbitrary sizes).
void fft2d(Complex* data, std::size_t rows, std::size_t cols, bool inverse);

/// y[i] += a[i] * b[i] for complex vectors (frequency-domain convolution).
void multiply_accumulate(const Complex* a, const Complex* b, Complex* y,
                         std::size_t n);

/// y[i] += a[i] * conj(b[i]) (frequency-domain cross-correlation).
void multiply_conj_accumulate(const Complex* a, const Complex* b, Complex* y,
                              std::size_t n);

}  // namespace ucudnn::fft
