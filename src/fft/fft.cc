#include "fft/fft.h"

#include <cmath>
#include <cstddef>
#include <memory>
#include <numbers>
#include <unordered_map>
#include <vector>

#include "common/mathutil.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace ucudnn::fft {

namespace {

constexpr double kPi = std::numbers::pi;

inline float* as_floats(Complex* p) { return reinterpret_cast<float*>(p); }
inline const float* as_floats(const Complex* p) {
  return reinterpret_cast<const float*>(p);
}

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse(Complex* data, std::size_t n) {
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Forward twiddles for every stage of a length-n transform, concatenated:
// stage `len` contributes len/2 entries w^j = exp(-2*pi*i*j/len) starting at
// offset len/2 - 1. Contiguous per-stage tables keep the butterfly k-loop
// SIMD-friendly (the old code advanced w by one multiply per butterfly, which
// serializes the loop and accumulates rounding error).
std::shared_ptr<const std::vector<Complex>> twiddle_table(std::size_t n) {
  struct Cache {
    Mutex mutex{"fft.twiddles"};
    std::unordered_map<std::size_t,
                       std::shared_ptr<const std::vector<Complex>>>
        tables GUARDED_BY(mutex);
  };
  static Cache& cache = *new Cache;
  {
    MutexLock lock(cache.mutex);
    auto it = cache.tables.find(n);
    if (it != cache.tables.end()) return it->second;
  }
  auto table = std::make_shared<std::vector<Complex>>();
  table->reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * kPi / static_cast<double>(len);
    for (std::size_t j = 0; j < len / 2; ++j) {
      const double a = angle * static_cast<double>(j);
      table->emplace_back(static_cast<float>(std::cos(a)),
                          static_cast<float>(std::sin(a)));
    }
  }
  MutexLock lock(cache.mutex);
  return cache.tables.try_emplace(n, std::move(table)).first->second;
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// power-of-two circular convolution. The chirp and the FFT of the b sequence
// depend only on (n, direction), so they are computed once and cached.
struct BluesteinPlan {
  std::size_t m = 0;
  std::vector<Complex> chirp;  // n entries
  std::vector<Complex> b_fft;  // m entries: forward FFT of the b sequence
};

std::shared_ptr<const BluesteinPlan> bluestein_plan(std::size_t n,
                                                    bool inverse) {
  struct Cache {
    Mutex mutex{"fft.bluestein"};
    std::unordered_map<std::size_t, std::shared_ptr<const BluesteinPlan>>
        plans GUARDED_BY(mutex);
  };
  static Cache& cache = *new Cache;
  const std::size_t key = 2 * n + (inverse ? 1 : 0);
  {
    MutexLock lock(cache.mutex);
    auto it = cache.plans.find(key);
    if (it != cache.plans.end()) return it->second;
  }

  auto plan = std::make_shared<BluesteinPlan>();
  plan->m = next_pow2(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;
  plan->chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / n;
    plan->chirp[k] = Complex(static_cast<float>(std::cos(angle)),
                             static_cast<float>(std::sin(angle)));
  }
  std::vector<Complex> b(plan->m, Complex(0, 0));
  b[0] = std::conj(plan->chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[plan->m - k] = std::conj(plan->chirp[k]);
  }
  fft_pow2(b.data(), plan->m, false);
  plan->b_fft = std::move(b);

  MutexLock lock(cache.mutex);
  return cache.plans.try_emplace(key, std::move(plan)).first->second;
}

void fft_bluestein(Complex* data, std::size_t n, bool inverse) {
  const auto plan = bluestein_plan(n, inverse);
  const std::size_t m = plan->m;
  const Complex* chirp = plan->chirp.data();

  std::vector<Complex> a(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    const float dr = data[k].real(), di = data[k].imag();
    const float cr = chirp[k].real(), ci = chirp[k].imag();
    a[k] = Complex(dr * cr - di * ci, dr * ci + di * cr);
  }
  fft_pow2(a.data(), m, false);

  std::vector<Complex> prod(m, Complex(0, 0));
  simd::cmul_acc(as_floats(prod.data()), as_floats(a.data()),
                 as_floats(plan->b_fft.data()),
                 static_cast<std::int64_t>(m));
  fft_pow2(prod.data(), m, true);

  const float scale = inverse ? 1.0f / static_cast<float>(n) : 1.0f;
  for (std::size_t k = 0; k < n; ++k) {
    const float pr = prod[k].real(), pi = prod[k].imag();
    const float cr = chirp[k].real(), ci = chirp[k].imag();
    data[k] = Complex(scale * (pr * cr - pi * ci),
                      scale * (pr * ci + pi * cr));
  }
}

}  // namespace

void fft_pow2(Complex* data, std::size_t n, bool inverse) {
  check_param(is_pow2(n), "fft_pow2 requires a power-of-two length");
  if (n == 1) return;
  const auto table = twiddle_table(n);
  bit_reverse(data, n);
  simd::fft_stages(as_floats(data), static_cast<std::int64_t>(n),
                   as_floats(table->data()), inverse);
  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    float* d = as_floats(data);
    for (std::size_t i = 0; i < 2 * n; ++i) d[i] *= scale;
  }
}

void fft(Complex* data, std::size_t n, bool inverse) {
  check_param(n >= 1, "fft length must be >= 1");
  if (is_pow2(n)) {
    fft_pow2(data, n, inverse);
  } else {
    fft_bluestein(data, n, inverse);
  }
}

void fft2d(Complex* data, std::size_t rows, std::size_t cols, bool inverse) {
  // Parallelize the independent 1-D transforms only when the matrix is large
  // enough to amortize chunk dispatch; nested calls (fft2d under an outer
  // parallel_for) share chunks with idle workers instead of serializing.
  const bool parallel = rows >= 4 && rows * cols >= 16384;
  const std::int64_t row_chunk = static_cast<std::int64_t>(
      std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, cols)));
  if (parallel) {
    parallel_for_each(
        static_cast<std::int64_t>(rows),
        [&](std::int64_t r) { fft(data + r * cols, cols, inverse); },
        row_chunk);
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      fft(data + r * cols, cols, inverse);
    }
  }

  // Column pass via transpose: the 1-D kernels then run on contiguous data
  // instead of strided columns copied one at a time. The transpose buffer is
  // per-thread and reused across calls — FFT convolution transforms
  // thousands of identically-sized planes per layer, and a fresh allocation
  // per plane dominated the small transforms. fft() never re-enters fft2d,
  // so the buffer cannot be aliased by the nested row/column loops.
  static thread_local std::vector<Complex> scratch_tls;
  if (scratch_tls.size() < rows * cols) scratch_tls.resize(rows * cols);
  std::vector<Complex>& scratch = scratch_tls;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      scratch[c * rows + r] = data[r * cols + c];
    }
  }
  const std::int64_t col_chunk = static_cast<std::int64_t>(
      std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, rows)));
  if (parallel) {
    parallel_for_each(
        static_cast<std::int64_t>(cols),
        [&](std::int64_t c) { fft(scratch.data() + c * rows, rows, inverse); },
        col_chunk);
  } else {
    for (std::size_t c = 0; c < cols; ++c) {
      fft(scratch.data() + c * rows, rows, inverse);
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      data[r * cols + c] = scratch[c * rows + r];
    }
  }
}

void multiply_accumulate(const Complex* a, const Complex* b, Complex* y,
                         std::size_t n) {
  simd::cmul_acc(as_floats(y), as_floats(a), as_floats(b),
                 static_cast<std::int64_t>(n));
}

void multiply_conj_accumulate(const Complex* a, const Complex* b, Complex* y,
                              std::size_t n) {
  simd::cmul_conj_acc(as_floats(y), as_floats(a), as_floats(b),
                      static_cast<std::int64_t>(n));
}

}  // namespace ucudnn::fft
