#include "fft/fft.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/mathutil.h"
#include "common/status.h"

namespace ucudnn::fft {

namespace {

constexpr double kPi = std::numbers::pi;

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse(Complex* data, std::size_t n) {
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// power-of-two circular convolution.
void fft_bluestein(Complex* data, std::size_t n, bool inverse) {
  const std::size_t m = next_pow2(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp w[k] = exp(sign * i * pi * k^2 / n).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / n;
    chirp[k] = Complex(static_cast<float>(std::cos(angle)),
                       static_cast<float>(std::sin(angle)));
  }

  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  fft_pow2(a.data(), m, false);
  fft_pow2(b.data(), m, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a.data(), m, true);

  for (std::size_t k = 0; k < n; ++k) {
    Complex value = a[k] * chirp[k];
    if (inverse) value /= static_cast<float>(n);
    data[k] = value;
  }
}

}  // namespace

void fft_pow2(Complex* data, std::size_t n, bool inverse) {
  check_param(is_pow2(n), "fft_pow2 requires a power-of-two length");
  if (n == 1) return;
  bit_reverse(data, n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(static_cast<float>(std::cos(angle)),
                       static_cast<float>(std::sin(angle)));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1, 0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const float scale = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

void fft(Complex* data, std::size_t n, bool inverse) {
  check_param(n >= 1, "fft length must be >= 1");
  if (is_pow2(n)) {
    fft_pow2(data, n, inverse);
  } else {
    fft_bluestein(data, n, inverse);
  }
}

void fft2d(Complex* data, std::size_t rows, std::size_t cols, bool inverse) {
  for (std::size_t r = 0; r < rows; ++r) {
    fft(data + r * cols, cols, inverse);
  }
  std::vector<Complex> column(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) column[r] = data[r * cols + c];
    fft(column.data(), rows, inverse);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = column[r];
  }
}

void multiply_accumulate(const Complex* a, const Complex* b, Complex* y,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void multiply_conj_accumulate(const Complex* a, const Complex* b, Complex* y,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a[i] * std::conj(b[i]);
}

}  // namespace ucudnn::fft
