// NCHW tensor, filter, and convolution-geometry descriptors plus an owning
// host tensor. These mirror cudnnTensorDescriptor_t / cudnnFilterDescriptor_t /
// cudnnConvolutionDescriptor_t closely enough that the mcudnn API (and the
// μ-cuDNN wrapper above it) has the same shape as the real thing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/aligned_buffer.h"
#include "common/mathutil.h"
#include "common/status.h"

namespace ucudnn {

/// Data layout. The paper (and this reproduction) evaluates NCHW only; the
/// enum exists so descriptors carry an explicit layout like cuDNN's.
enum class TensorLayout { kNCHW };

/// Element type. Single precision only, as in the paper's evaluation.
enum class DataType { kFloat };

constexpr std::size_t size_of(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat: return 4;
  }
  return 0;
}

/// Shape of a 4-D activation tensor: N (batch), C (channels), H, W.
struct TensorShape {
  std::int64_t n = 0;
  std::int64_t c = 0;
  std::int64_t h = 0;
  std::int64_t w = 0;

  std::int64_t count() const noexcept { return n * c * h * w; }
  std::size_t bytes(DataType type = DataType::kFloat) const noexcept {
    return static_cast<std::size_t>(count()) * size_of(type);
  }
  /// Same shape with a different batch size (micro-batching!).
  TensorShape with_batch(std::int64_t batch) const noexcept {
    return {batch, c, h, w};
  }
  bool operator==(const TensorShape&) const = default;
  std::string to_string() const;
};

/// Descriptor of a 4-D activation tensor: shape + layout + dtype.
struct TensorDesc {
  TensorShape shape;
  TensorLayout layout = TensorLayout::kNCHW;
  DataType dtype = DataType::kFloat;

  bool operator==(const TensorDesc&) const = default;

  /// Linear offset of element (n, c, h, w) in NCHW layout.
  std::int64_t offset(std::int64_t n, std::int64_t c, std::int64_t h,
                      std::int64_t w) const noexcept {
    return ((n * shape.c + c) * shape.h + h) * shape.w + w;
  }
};

/// Descriptor of a convolution filter bank: K output channels, C input
/// channels, R x S kernel window.
struct FilterDesc {
  std::int64_t k = 0;
  std::int64_t c = 0;
  std::int64_t r = 0;
  std::int64_t s = 0;
  DataType dtype = DataType::kFloat;

  std::int64_t count() const noexcept { return k * c * r * s; }
  std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(count()) * size_of(dtype);
  }
  bool operator==(const FilterDesc&) const = default;
  std::string to_string() const;

  std::int64_t offset(std::int64_t k_, std::int64_t c_, std::int64_t r_,
                      std::int64_t s_) const noexcept {
    return ((k_ * c + c_) * r + r_) * s + s_;
  }
};

/// Convolution vs cross-correlation (cuDNN supports both; frameworks almost
/// always use cross-correlation).
enum class ConvMode { kCrossCorrelation, kConvolution };

/// Padding / stride / dilation geometry of a 2-D convolution.
struct ConvGeometry {
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t dilation_h = 1;
  std::int64_t dilation_w = 1;
  /// Grouped convolution (cudnnSetConvolutionGroupCount): the input's C
  /// channels split into `groups` disjoint slices; the filter's c field is
  /// the PER-GROUP input channel count (C / groups), as in cuDNN.
  std::int64_t groups = 1;
  ConvMode mode = ConvMode::kCrossCorrelation;

  bool operator==(const ConvGeometry&) const = default;

  std::int64_t dilated_r(std::int64_t r) const noexcept {
    return (r - 1) * dilation_h + 1;
  }
  std::int64_t dilated_s(std::int64_t s) const noexcept {
    return (s - 1) * dilation_w + 1;
  }

  /// Output spatial height for input height `h` and kernel height `r`.
  std::int64_t out_h(std::int64_t h, std::int64_t r) const noexcept {
    return (h + 2 * pad_h - dilated_r(r)) / stride_h + 1;
  }
  /// Output spatial width for input width `w` and kernel width `s`.
  std::int64_t out_w(std::int64_t w, std::int64_t s) const noexcept {
    return (w + 2 * pad_w - dilated_s(s)) / stride_w + 1;
  }

  /// Output tensor shape for input `x` convolved with filter `f`.
  /// Throws Error(kBadParam) when shapes are inconsistent or degenerate.
  TensorShape output_shape(const TensorShape& x, const FilterDesc& f) const;
};

/// Owning host tensor (float, NCHW).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const TensorShape& shape, bool zeroed = true)
      : desc_{shape}, buffer_(static_cast<std::size_t>(shape.count()), zeroed) {}
  explicit Tensor(const TensorDesc& desc, bool zeroed = true)
      : desc_(desc),
        buffer_(static_cast<std::size_t>(desc.shape.count()), zeroed) {}

  const TensorDesc& desc() const noexcept { return desc_; }
  const TensorShape& shape() const noexcept { return desc_.shape; }
  std::int64_t count() const noexcept { return desc_.shape.count(); }
  std::size_t bytes() const noexcept { return desc_.shape.bytes(desc_.dtype); }

  float* data() noexcept { return buffer_.data(); }
  const float* data() const noexcept { return buffer_.data(); }

  float& at(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) noexcept {
    return buffer_[static_cast<std::size_t>(desc_.offset(n, c, h, w))];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const noexcept {
    return buffer_[static_cast<std::size_t>(desc_.offset(n, c, h, w))];
  }

 private:
  TensorDesc desc_;
  AlignedBuffer<float> buffer_;
};

/// Deterministic uniform fill in [-1, 1) from `seed`.
void fill_random(float* data, std::int64_t count, std::uint64_t seed);
void fill_random(Tensor& t, std::uint64_t seed);

/// Constant fill.
void fill_constant(float* data, std::int64_t count, float value);

/// max_i |a_i - b_i|.
double max_abs_diff(const float* a, const float* b, std::int64_t count);

/// max_i |a_i - b_i| / max(1, max_i |b_i|): scale-aware mismatch measure.
double max_rel_diff(const float* a, const float* b, std::int64_t count);

}  // namespace ucudnn
