#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

namespace ucudnn {

std::string TensorShape::to_string() const {
  std::ostringstream os;
  os << "(" << n << ", " << c << ", " << h << ", " << w << ")";
  return os.str();
}

std::string FilterDesc::to_string() const {
  std::ostringstream os;
  os << "(" << k << ", " << c << ", " << r << ", " << s << ")";
  return os.str();
}

TensorShape ConvGeometry::output_shape(const TensorShape& x,
                                       const FilterDesc& f) const {
  check_param(x.n >= 1 && x.c >= 1 && x.h >= 1 && x.w >= 1,
              "input shape must be positive, got " + x.to_string());
  check_param(f.k >= 1 && f.c >= 1 && f.r >= 1 && f.s >= 1,
              "filter shape must be positive, got " + f.to_string());
  check_param(groups >= 1, "groups must be >= 1");
  check_param(x.c == f.c * groups,
              "channel mismatch: input c=" + std::to_string(x.c) +
                  ", filter c=" + std::to_string(f.c) + " x groups=" +
                  std::to_string(groups));
  check_param(f.k % groups == 0,
              "output channels not divisible by groups in " + f.to_string());
  check_param(stride_h >= 1 && stride_w >= 1, "stride must be >= 1");
  check_param(dilation_h >= 1 && dilation_w >= 1, "dilation must be >= 1");
  check_param(pad_h >= 0 && pad_w >= 0, "padding must be >= 0");
  const std::int64_t oh = out_h(x.h, f.r);
  const std::int64_t ow = out_w(x.w, f.s);
  check_param(oh >= 1 && ow >= 1,
              "degenerate convolution output " + std::to_string(oh) + "x" +
                  std::to_string(ow));
  return {x.n, f.k, oh, ow};
}

void fill_random(float* data, std::int64_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::int64_t i = 0; i < count; ++i) data[i] = dist(rng);
}

void fill_random(Tensor& t, std::uint64_t seed) {
  fill_random(t.data(), t.count(), seed);
}

void fill_constant(float* data, std::int64_t count, float value) {
  std::fill(data, data + count, value);
}

double max_abs_diff(const float* a, const float* b, std::int64_t count) {
  double result = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    result = std::max(result, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return result;
}

double max_rel_diff(const float* a, const float* b, std::int64_t count) {
  double scale = 1.0;
  for (std::int64_t i = 0; i < count; ++i) {
    scale = std::max(scale, std::abs(static_cast<double>(b[i])));
  }
  return max_abs_diff(a, b, count) / scale;
}

}  // namespace ucudnn
