// Process-wide metrics registry: named atomic counters, gauges, and
// fixed-bucket latency histograms, cheap enough for hot paths. Handles are
// value types wrapping a registry-owned cell; creating one takes a lock,
// updating one is a single relaxed atomic RMW. See docs/observability.md for
// the naming scheme and the catalog of metrics the library emits.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — every
// library may include it, it includes nothing project-local except the
// common/thread_annotations.h locking leaf. Environment gating
// (UCUDNN_TELEMETRY) is therefore read with std::getenv directly.
//
// Defining UCUDNN_DISABLE_TELEMETRY compiles every handle operation to a
// no-op and empties the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

namespace ucudnn::telemetry {

#ifdef UCUDNN_DISABLE_TELEMETRY
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Monotonic event counter.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) noexcept {
    if (kCompiledIn && cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return kCompiledIn && cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Monotonic accumulator for wall-clock totals (milliseconds).
class DoubleCounter {
 public:
  DoubleCounter() = default;
  void add(double v) noexcept {
    if (kCompiledIn && cell_) cell_->fetch_add(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return kCompiledIn && cell_ ? cell_->load(std::memory_order_relaxed) : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit DoubleCounter(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Last-writer-wins level (also supports relative adjustment).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) noexcept {
    if (kCompiledIn && cell_) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    if (kCompiledIn && cell_) cell_->fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return kCompiledIn && cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Fixed decade buckets for millisecond latencies: the i-th bucket counts
/// observations <= 1e-3 * 10^i ms (1us, 10us, ... 10s), the last is +inf.
inline constexpr int kHistogramBuckets = 9;

/// Upper bound of bucket `i` in ms; +inf for the overflow bucket.
double histogram_bucket_upper_ms(int i) noexcept;

struct HistogramData {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  double sum_ms = 0.0;
};

/// Interpolated percentile estimate (`quantile` in [0,1], clamped). The rank
/// `quantile * count` is located in the cumulative bucket counts, then
/// interpolated linearly within that decade bucket between its bounds (the
/// first bucket's lower bound is 0). Ranks landing in the open-ended
/// overflow bucket return its lower bound (10 s) — the histogram carries no
/// upper bound to interpolate toward. Returns 0 for an empty histogram.
double histogram_percentile_ms(const HistogramData& data,
                               double quantile) noexcept;

class Histogram {
 public:
  Histogram() = default;
  void observe_ms(double ms) noexcept;
  HistogramData data() const noexcept;

 private:
  friend class MetricsRegistry;
  struct Cells {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum_ms{0.0};
  };
  explicit Histogram(Cells* cells) : cells_(cells) {}
  Cells* cells_ = nullptr;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> double_counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Handle factories: idempotent per name, safe from any thread.
  Counter counter(const std::string& name);
  DoubleCounter double_counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Plain-text form, one "name value" line per metric, sorted by name.
  /// Histograms add `.count`, `.sum_ms`, interpolated `.p50_ms`/`.p95_ms`/
  /// `.p99_ms` estimates, and one `.le_<bound>ms` line per bucket.
  std::string to_text() const;
  /// JSON form of the same snapshot (machine-readable artifact):
  /// {"counters":{...},"double_counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum_ms,p50_ms,p95_ms,p99_ms,buckets:[...]}}}.
  std::string to_json() const;
  /// Zeroes every cell; existing handles stay valid. Intended for tests
  /// that need a clean process-wide baseline.
  void reset();

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Captured at construction: the destructor must not call back into the
  // env-config function-local static, which — depending on which singleton
  // was touched first — may already be destroyed during static teardown.
  std::string exit_snapshot_path_;

  mutable Mutex mutex_{"MetricsRegistry"};
  // Node-based maps: cell addresses are stable for the registry's lifetime.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<std::atomic<double>>> double_counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram::Cells>> histograms_
      GUARDED_BY(mutex_);
};

/// True when UCUDNN_TELEMETRY is set truthy (or to a snapshot path) or
/// UCUDNN_TRACE_FILE names a trace output file. Read once per process.
bool telemetry_enabled() noexcept;

/// The file path form of UCUDNN_TELEMETRY ("" when unset or boolean): the
/// registry writes its plain-text snapshot there at process exit.
const std::string& metrics_snapshot_path() noexcept;

/// Mirrors the runtime lock-order detector's observed acquired-after edge
/// graph into the registry: gauge `ucudnn.lockorder.edges` (distinct edges)
/// and one `ucudnn.lockorder.edge.<held>-><acquired>` gauge per edge with
/// its observation count. A no-op when the detector is compiled out or
/// disabled (docs/analysis.md). Called automatically before the exit-time
/// metrics snapshot; tests and tools may call it at any quiescent point.
void sync_lock_order_metrics();

}  // namespace ucudnn::telemetry
