// Minimal streaming JSON writer shared by every telemetry export (trace,
// metrics, execution report) and the bench artifact emitter. Hand-rolled on
// purpose: the repo takes no JSON dependency, and the writer must stay
// usable from static destructors (stdio/snprintf only, no iostreams).
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — this
// header includes only system headers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ucudnn::telemetry {

/// Appends `text` to `out` with RFC 8259 string escaping (no surrounding
/// quotes): ", \, control characters as \n \r \t or \u00XX.
void append_json_escaped(std::string& out, const std::string& text);

/// `text` as a quoted, escaped JSON string value.
std::string json_quote(const std::string& text);

/// `value` as a JSON number. JSON has no NaN/inf, so non-finite values
/// render as null.
std::string json_number(double value);

/// Incremental JSON builder with automatic separators. Usage:
///
///   JsonWriter w;
///   w.begin_object().key("rows").begin_array();
///   w.begin_object().key("x").value(1.5).end_object();
///   w.end_array().end_object();
///   w.str();  // {"rows":[{"x":1.5}]}
///
/// The writer does not validate nesting beyond separator bookkeeping; the
/// caller is responsible for balanced begin/end calls.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key inside an object; must be followed by exactly one value (or
  /// begin_object/begin_array).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(int v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null_value();
  /// Appends pre-rendered JSON verbatim as one value (caller guarantees it
  /// is valid — e.g. output of json_quote/json_number).
  JsonWriter& raw(const std::string& json);

  const std::string& str() const noexcept { return out_; }

 private:
  /// Emits the pending "," before a new value/key when needed.
  void separator();

  std::string out_;
  std::vector<bool> has_items_;  // one flag per open object/array
  bool pending_key_ = false;     // key() just wrote "name": — no comma next
};

}  // namespace ucudnn::telemetry
