#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "telemetry/json_writer.h"

namespace ucudnn::telemetry {

namespace {

struct EnvConfig {
  bool enabled = false;
  std::string snapshot_path;  // empty when UCUDNN_TELEMETRY is boolean-ish
};

// std::getenv (not common/env.h): telemetry is a leaf and includes nothing
// project-local.
const EnvConfig& env_config() {
  static const EnvConfig config = [] {
    EnvConfig c;
    if (const char* raw = std::getenv("UCUDNN_TELEMETRY");
        raw != nullptr && raw[0] != '\0') {
      if (std::strcmp(raw, "0") == 0 || std::strcmp(raw, "false") == 0 ||
          std::strcmp(raw, "off") == 0 || std::strcmp(raw, "no") == 0) {
        c.enabled = false;
      } else {
        c.enabled = true;
        if (std::strcmp(raw, "1") != 0 && std::strcmp(raw, "true") != 0 &&
            std::strcmp(raw, "on") != 0 && std::strcmp(raw, "yes") != 0) {
          c.snapshot_path = raw;
        }
      }
    }
    if (const char* trace = std::getenv("UCUDNN_TRACE_FILE");
        trace != nullptr && trace[0] != '\0') {
      c.enabled = true;
    }
    return c;
  }();
  return config;
}

}  // namespace

bool telemetry_enabled() noexcept { return kCompiledIn && env_config().enabled; }

const std::string& metrics_snapshot_path() noexcept {
  return env_config().snapshot_path;
}

double histogram_bucket_upper_ms(int i) noexcept {
  if (i < 0) return 0.0;
  if (i >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return 1e-3 * std::pow(10.0, i);
}

double histogram_percentile_ms(const HistogramData& data,
                               double quantile) noexcept {
  if (data.count == 0) return 0.0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  const double target = quantile * static_cast<double>(data.count);
  double cumulative = 0.0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const double in_bucket = static_cast<double>(data.buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : histogram_bucket_upper_ms(i - 1);
      const double upper = histogram_bucket_upper_ms(i);
      if (!std::isfinite(upper)) return lower;  // open-ended overflow bucket
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // count > 0 guarantees some bucket satisfied cumulative + n >= target.
  return histogram_bucket_upper_ms(kHistogramBuckets - 2);
}

void Histogram::observe_ms(double ms) noexcept {
  if (!kCompiledIn || cells_ == nullptr) return;
  int bucket = kHistogramBuckets - 1;
  for (int i = 0; i < kHistogramBuckets - 1; ++i) {
    if (ms <= histogram_bucket_upper_ms(i)) {
      bucket = i;
      break;
    }
  }
  cells_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cells_->count.fetch_add(1, std::memory_order_relaxed);
  cells_->sum_ms.fetch_add(ms, std::memory_order_relaxed);
}

HistogramData Histogram::data() const noexcept {
  HistogramData d;
  if (!kCompiledIn || cells_ == nullptr) return d;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] = cells_->buckets[i].load(std::memory_order_relaxed);
  }
  d.count = cells_->count.load(std::memory_order_relaxed);
  d.sum_ms = cells_->sum_ms.load(std::memory_order_relaxed);
  return d;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() {
  if (telemetry_enabled()) exit_snapshot_path_ = metrics_snapshot_path();
}

MetricsRegistry::~MetricsRegistry() {
  // Exit-time plain-text export, gated by UCUDNN_TELEMETRY=<path>. stdio
  // only: iostreams may already be torn down during static destruction.
  if (exit_snapshot_path_.empty()) return;
  sync_lock_order_metrics();
  if (std::FILE* f = std::fopen(exit_snapshot_path_.c_str(), "w")) {
    const std::string text = to_text();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

Counter MetricsRegistry::counter(const std::string& name) {
  if (!kCompiledIn) return Counter();
  MutexLock lock(mutex_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Counter(cell.get());
}

DoubleCounter MetricsRegistry::double_counter(const std::string& name) {
  if (!kCompiledIn) return DoubleCounter();
  MutexLock lock(mutex_);
  auto& cell = double_counters_[name];
  if (!cell) cell = std::make_unique<std::atomic<double>>(0.0);
  return DoubleCounter(cell.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  if (!kCompiledIn) return Gauge();
  MutexLock lock(mutex_);
  auto& cell = gauges_[name];
  if (!cell) cell = std::make_unique<std::atomic<std::int64_t>>(0);
  return Gauge(cell.get());
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  if (!kCompiledIn) return Histogram();
  MutexLock lock(mutex_);
  auto& cells = histograms_[name];
  if (!cells) cells = std::make_unique<Histogram::Cells>();
  return Histogram(cells.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mutex_);
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : double_counters_) {
    snap.double_counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cells] : histograms_) {
    snap.histograms[name] = Histogram(cells.get()).data();
  }
  return snap;
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, value] : snap.counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.double_counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, data] : snap.histograms) {
    os << name << ".count " << data.count << "\n";
    os << name << ".sum_ms " << data.sum_ms << "\n";
    os << name << ".p50_ms " << histogram_percentile_ms(data, 0.50) << "\n";
    os << name << ".p95_ms " << histogram_percentile_ms(data, 0.95) << "\n";
    os << name << ".p99_ms " << histogram_percentile_ms(data, 0.99) << "\n";
    for (int i = 0; i < kHistogramBuckets; ++i) {
      // %g keeps the decade bounds readable ("0.1", not the full 17-digit
      // round-trip form the value stream uses).
      char bound[32];
      std::snprintf(bound, sizeof(bound), "%g", histogram_bucket_upper_ms(i));
      os << name << ".le_" << bound << "ms " << data.buckets[i] << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.key(name).value(value);
  w.end_object();
  w.key("double_counters").begin_object();
  for (const auto& [name, value] : snap.double_counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, data] : snap.histograms) {
    w.key(name).begin_object();
    w.key("count").value(data.count);
    w.key("sum_ms").value(data.sum_ms);
    w.key("p50_ms").value(histogram_percentile_ms(data, 0.50));
    w.key("p95_ms").value(histogram_percentile_ms(data, 0.95));
    w.key("p99_ms").value(histogram_percentile_ms(data, 0.99));
    w.key("buckets").begin_array();
    for (const std::uint64_t bucket : data.buckets) w.value(bucket);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void sync_lock_order_metrics() {
  if (!kCompiledIn || !lockorder::kCompiledIn) return;
  if (!lockorder::enabled()) return;
  const std::vector<lockorder::Edge> edges = lockorder::edges();
  MetricsRegistry& registry = MetricsRegistry::instance();
  // Always published while the detector is on — a 0 means "detector ran,
  // no nested acquisitions observed", distinct from "detector off".
  registry.gauge("ucudnn.lockorder.edges")
      .set(static_cast<std::int64_t>(edges.size()));
  for (const lockorder::Edge& edge : edges) {
    registry.gauge("ucudnn.lockorder.edge." + edge.from + "->" + edge.to)
        .set(static_cast<std::int64_t>(edge.count));
  }
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, cell] : counters_) cell->store(0);
  for (auto& [name, cell] : double_counters_) cell->store(0.0);
  for (auto& [name, cell] : gauges_) cell->store(0);
  for (auto& [name, cells] : histograms_) {
    for (auto& bucket : cells->buckets) bucket.store(0);
    cells->count.store(0);
    cells->sum_ms.store(0.0);
  }
}

}  // namespace ucudnn::telemetry
