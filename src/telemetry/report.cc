#include "telemetry/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/json_writer.h"

namespace ucudnn::telemetry {

namespace {

double relative_error_pct(double estimated, double measured) {
  if (estimated <= 0.0) return 0.0;
  return std::fabs(measured - estimated) / estimated * 100.0;
}

std::string fixed(double value, int decimals = 3) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace

double SegmentReport::error_pct() const noexcept {
  if (runs == 0) return 0.0;
  return relative_error_pct(estimated_ms, measured_ms_avg());
}

double KernelReport::estimated_ms() const noexcept {
  double total = 0.0;
  for (const SegmentReport& s : segments) total += s.estimated_ms;
  return total;
}

double KernelReport::measured_ms() const noexcept {
  double total = 0.0;
  for (const SegmentReport& s : segments) total += s.measured_ms_avg();
  return total;
}

double KernelReport::error_pct() const noexcept {
  return relative_error_pct(estimated_ms(), measured_ms());
}

double WorkspaceAuditReport::utilization_pct() const noexcept {
  if (declared_bytes == 0) return 0.0;
  return static_cast<double>(touched_bytes) /
         static_cast<double>(declared_bytes) * 100.0;
}

std::uint64_t ExecutionReport::measured_segments() const noexcept {
  std::uint64_t n = 0;
  for (const KernelReport& k : kernels) {
    for (const SegmentReport& s : k.segments) {
      if (s.runs > 0) ++n;
    }
  }
  return n;
}

double ExecutionReport::estimation_error_pct() const noexcept {
  double total = 0.0;
  std::uint64_t n = 0;
  for (const KernelReport& k : kernels) {
    for (const SegmentReport& s : k.segments) {
      if (s.runs == 0) continue;
      total += s.error_pct();
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

std::string ExecutionReport::to_text() const {
  std::string out;
  out += "=== ucudnn execution report: device=" + device +
         " policy=" + policy + " batchPolicy=" + batch_size_policy + " ===\n";
  out += "plan cache: " + std::to_string(plan_cache_hits) + " hit(s), " +
         std::to_string(plan_cache_misses) + " miss(es), epoch " +
         std::to_string(plan_cache_epoch) + "\n";
  out += "degradation: " + (degradation.empty() ? "none" : degradation) + "\n";

  for (const KernelReport& k : kernels) {
    out += "\nkernel " + k.label + " " + k.problem + "\n";
    out += "  plan: " + k.plan + "\n";
    out += "  provenance: " + k.provenance + "  policy=" + k.policy +
           "  workspace=" + k.workspace_kind +
           "  limit=" + std::to_string(k.workspace_limit) + "B" +
           "  declared=" + std::to_string(k.workspace_declared) + "B" +
           "  executions=" + std::to_string(k.executions);
    if (k.replans > 0) out += "  replans=" + std::to_string(k.replans);
    out += "\n";
    out += "  seg      batch  algo              est[ms]    meas[ms]   err[%]"
           "    runs\n";
    char line[160];
    for (std::size_t i = 0; i < k.segments.size(); ++i) {
      const SegmentReport& s = k.segments[i];
      std::snprintf(line, sizeof(line),
                    "  %3zu %10lld  %-14s %10.4f  %10.4f  %7.2f  %6llu%s\n",
                    i, static_cast<long long>(s.batch), s.algo_name.c_str(),
                    s.estimated_ms, s.measured_ms_avg(), s.error_pct(),
                    static_cast<unsigned long long>(s.runs),
                    s.accumulate ? "  (acc)" : "");
      out += line;
    }
    out += "  total: est=" + fixed(k.estimated_ms()) +
           "ms meas=" + fixed(k.measured_ms()) +
           "ms err=" + fixed(k.error_pct(), 2) + "%\n";
  }

  if (!audit.empty()) {
    out += "\nworkspace audit (declared vs touched high-water):\n";
    for (const WorkspaceAuditReport& a : audit) {
      out += "  " + a.kernel + ": declared=" +
             std::to_string(a.declared_bytes) + "B touched=" +
             std::to_string(a.touched_bytes) + "B utilization=" +
             fixed(a.utilization_pct(), 1) + "% runs=" +
             std::to_string(a.runs) + "\n";
    }
  }

  out += "\naggregate estimation error: " + fixed(estimation_error_pct(), 2) +
         "% over " + std::to_string(measured_segments()) +
         " measured segment(s)\n";
  return out;
}

std::string ExecutionReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ucudnn-execution-report-v1");
  w.key("device").value(device);
  w.key("policy").value(policy);
  w.key("batch_size_policy").value(batch_size_policy);
  w.key("plan_cache").begin_object();
  w.key("hits").value(plan_cache_hits);
  w.key("misses").value(plan_cache_misses);
  w.key("epoch").value(plan_cache_epoch);
  w.end_object();
  w.key("degradation").value(degradation);
  w.key("estimation_error_pct").value(estimation_error_pct());
  w.key("measured_segments").value(measured_segments());
  w.key("kernels").begin_array();
  for (const KernelReport& k : kernels) {
    w.begin_object();
    w.key("label").value(k.label);
    w.key("kernel_type").value(k.kernel_type);
    w.key("problem").value(k.problem);
    w.key("plan").value(k.plan);
    w.key("policy").value(k.policy);
    w.key("provenance").value(k.provenance);
    w.key("workspace").begin_object();
    w.key("kind").value(k.workspace_kind);
    w.key("limit_bytes").value(k.workspace_limit);
    w.key("declared_bytes").value(k.workspace_declared);
    w.end_object();
    w.key("executions").value(k.executions);
    w.key("replans").value(k.replans);
    w.key("estimated_ms").value(k.estimated_ms());
    w.key("measured_ms").value(k.measured_ms());
    w.key("error_pct").value(k.error_pct());
    w.key("segments").begin_array();
    for (const SegmentReport& s : k.segments) {
      w.begin_object();
      w.key("batch").value(s.batch);
      w.key("algo").value(s.algo);
      w.key("algo_name").value(s.algo_name);
      w.key("accumulate").value(s.accumulate);
      w.key("workspace_bytes").value(s.workspace_bytes);
      w.key("estimated_ms").value(s.estimated_ms);
      w.key("measured_ms").value(s.measured_ms_avg());
      w.key("error_pct").value(s.error_pct());
      w.key("runs").value(s.runs);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("audit").begin_array();
  for (const WorkspaceAuditReport& a : audit) {
    w.begin_object();
    w.key("kernel").value(a.kernel);
    w.key("declared_bytes").value(a.declared_bytes);
    w.key("touched_bytes").value(a.touched_bytes);
    w.key("utilization_pct").value(a.utilization_pct());
    w.key("runs").value(a.runs);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

const std::string& report_file_path() noexcept {
  // std::getenv, not common/env.h: telemetry is a leaf.
  static const std::string path = [] {
    const char* raw = std::getenv("UCUDNN_REPORT_FILE");
    return std::string(raw == nullptr ? "" : raw);
  }();
  return path;
}

void write_report_file(const ExecutionReport& report, const std::string& path) {
  if (path.empty()) return;
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? report.to_json() + "\n" : report.to_text();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }
}

}  // namespace ucudnn::telemetry
