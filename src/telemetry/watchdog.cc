#include "telemetry/watchdog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "telemetry/trace.h"

namespace ucudnn::telemetry {

WatchdogOptions WatchdogOptions::from_env() {
  WatchdogOptions opts;
  // std::getenv, not common/env.h: telemetry is a leaf.
  const char* raw = std::getenv("UCUDNN_WATCHDOG_MS");
  if (raw == nullptr || raw[0] == '\0') return opts;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end != raw && *end == '\0' && parsed > 0) opts.period_ms = parsed;
  return opts;
}

Watchdog::Watchdog(WatchdogOptions opts, SampleFn sample_fn,
                   FlightRecorder* recorder)
    : opts_(std::move(opts)), sample_(std::move(sample_fn)),
      recorder_(recorder) {
  m_samples_ = MetricsRegistry::instance().counter("ucudnn.watchdog.samples");
  m_incidents_ =
      MetricsRegistry::instance().counter("ucudnn.watchdog.incidents");
  if (opts_.period_ms > 0 && sample_) {
    running_.store(true, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
  }
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
  // Sever the recorder link: after stop() the owner may destroy the flight
  // recorder in any order relative to this watchdog.
  recorder_.store(nullptr, std::memory_order_relaxed);
}

void Watchdog::loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stopping_) return;
      cv_.wait_for_us(mutex_, opts_.period_ms * 1000);
      if (stopping_) return;
    }
    poll_now();
  }
}

std::size_t Watchdog::poll_now() {
  if (!sample_) return 0;
  std::size_t count_before;
  {
    MutexLock lock(mutex_);
    count_before = incidents_.size();
  }
  try {
    const WatchdogSample sample = sample_();
    samples_.fetch_add(1, std::memory_order_relaxed);
    m_samples_.add();
    evaluate(sample);
    // Recorded as an incident, not swallowed: a failing vital-sign probe is
    // itself an anomaly worth reporting.
  } catch (const std::exception&) {  // status-discipline: allow
    emit("sample_failed", "sampling callback threw", 0.0, 0.0);
  }
  MutexLock lock(mutex_);
  return incidents_.size() - count_before;
}

void Watchdog::evaluate(const WatchdogSample& sample) {
  struct Check {
    const char* kind;
    bool firing;
    std::string detail;
    double value;
    double threshold;
  };
  std::vector<Check> checks;

  const bool saturated =
      sample.queue_capacity > 0 && sample.queue_depth >= sample.queue_capacity;
  checks.push_back({"queue_saturated", saturated,
                    "queue depth " + std::to_string(sample.queue_depth) +
                        " / capacity " + std::to_string(sample.queue_capacity),
                    static_cast<double>(sample.queue_depth),
                    static_cast<double>(sample.queue_capacity)});

  const bool overloaded =
      sample.overload_level >= opts_.overload_level_threshold;
  checks.push_back({"overload", overloaded,
                    "overload rung " + std::to_string(sample.overload_level),
                    static_cast<double>(sample.overload_level),
                    static_cast<double>(opts_.overload_level_threshold)});

  const double stuck_threshold_ms =
      std::max(opts_.stuck_factor * sample.service_estimate_ms,
               opts_.min_stuck_ms);
  double worst_busy_ms = 0.0;
  for (const double busy_ms : sample.worker_busy_ms) {
    worst_busy_ms = std::max(worst_busy_ms, busy_ms);
  }
  const bool stuck = worst_busy_ms > stuck_threshold_ms;
  checks.push_back(
      {"worker_stuck", stuck,
       "worker busy " + std::to_string(worst_busy_ms) + " ms vs " +
           std::to_string(stuck_threshold_ms) + " ms limit (estimate " +
           std::to_string(sample.service_estimate_ms) + " ms)",
       worst_busy_ms, stuck_threshold_ms});

  const bool drifting = sample.est_drift > opts_.drift_threshold;
  checks.push_back({"est_drift", drifting,
                    "est-vs-measured drift " +
                        std::to_string(sample.est_drift * 100.0) + "%",
                    sample.est_drift, opts_.drift_threshold});

  for (Check& check : checks) {
    bool rising = false;
    {
      MutexLock lock(mutex_);
      bool& active = active_[check.kind];
      rising = check.firing && !active;
      active = check.firing;
    }
    if (rising) {
      emit(check.kind, std::move(check.detail), check.value, check.threshold);
    }
  }
}

void Watchdog::emit(const std::string& kind, std::string detail, double value,
                    double threshold) {
  WatchdogIncident incident;
  incident.ts_us = TraceRecorder::instance().now_us();
  incident.kind = kind;
  incident.detail = std::move(detail);
  incident.value = value;
  incident.threshold = threshold;
  std::fprintf(stderr, "ucudnn: watchdog incident [%s] %s\n", kind.c_str(),
               incident.detail.c_str());
  {
    MutexLock lock(mutex_);
    incidents_.push_back(incident);
  }
  m_incidents_.add();
  MetricsRegistry::instance().counter("ucudnn.watchdog.incident." + kind)
      .add();
  if (FlightRecorder* recorder = recorder_.load(std::memory_order_relaxed)) {
    recorder->record(FlightEventKind::kWatchdog, recorder->intern(kind),
                     current_trace_id(),
                     static_cast<std::int64_t>(value),
                     static_cast<std::int64_t>(threshold));
    if (opts_.dump_on_incident) recorder->auto_dump(kind.c_str());
  }
}

std::vector<WatchdogIncident> Watchdog::incidents() const {
  MutexLock lock(mutex_);
  return incidents_;
}

}  // namespace ucudnn::telemetry
