// Anomaly watchdog: a background sampler that periodically snapshots the
// serving stack's vital signs — queue depth, overload rung, est-vs-measured
// drift, per-worker liveness — and emits structured incident records (plus a
// flight-recorder dump) when thresholds trip. The watchdog knows nothing
// about the serve layer: the owner supplies a sampling callback, keeping
// telemetry a leaf. Incident catalog and thresholds: docs/observability.md.
//
// Lifecycle discipline: stop() joins the sampler thread and severs the
// flight-recorder pointer, so owner teardown in any order is safe — call
// stop() before destroying the recorder the watchdog was given.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — it may
// include only other telemetry headers and common/thread_annotations.h.
// UCUDNN_WATCHDOG_MS is therefore read with std::getenv directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace ucudnn::telemetry {

struct WatchdogOptions {
  /// Sampling period; 0 disables the background thread (poll_now() still
  /// works, which is what the tests use).
  std::int64_t period_ms = 0;
  /// A worker is "stuck" when busy longer than
  /// max(stuck_factor * service_estimate_ms, min_stuck_ms).
  double stuck_factor = 8.0;
  double min_stuck_ms = 50.0;
  /// est_drift above this fraction (|measured - estimated| / estimated)
  /// raises an incident.
  double drift_threshold = 5.0;
  /// Overload rung at or above this raises an incident.
  int overload_level_threshold = 3;
  /// Incidents also trigger FlightRecorder::auto_dump.
  bool dump_on_incident = true;

  /// period_ms from UCUDNN_WATCHDOG_MS (unset/invalid = 0 = off), the rest
  /// defaulted.
  static WatchdogOptions from_env();
};

/// One vital-sign snapshot produced by the owner's sampling callback.
struct WatchdogSample {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;  // 0 = unknown (saturation check skipped)
  int overload_level = 0;
  double service_estimate_ms = 0.0;  // EWMA batch service estimate
  double est_drift = 0.0;  // |measured-estimated|/estimated from the report
  std::vector<double> worker_busy_ms;  // one entry per currently-busy worker
};

/// A threshold trip. `kind` is one of "worker_stuck", "queue_saturated",
/// "overload", "est_drift", "sample_failed".
struct WatchdogIncident {
  double ts_us = 0.0;
  std::string kind;
  std::string detail;
  double value = 0.0;      // observed value that tripped
  double threshold = 0.0;  // limit it tripped against
};

class Watchdog {
 public:
  using SampleFn = std::function<WatchdogSample()>;

  /// Starts the sampler thread when opts.period_ms > 0. `recorder` (may be
  /// null) receives kWatchdog events and auto-dump requests on incidents.
  Watchdog(WatchdogOptions opts, SampleFn sample_fn,
           FlightRecorder* recorder = nullptr);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Joins the sampler and severs the recorder pointer. Idempotent.
  void stop();

  /// Takes one sample synchronously; returns the number of new incidents.
  std::size_t poll_now();

  std::vector<WatchdogIncident> incidents() const;
  std::uint64_t sample_count() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void evaluate(const WatchdogSample& sample);
  void emit(const std::string& kind, std::string detail, double value,
            double threshold);

  const WatchdogOptions opts_;
  const SampleFn sample_;
  std::atomic<FlightRecorder*> recorder_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<bool> running_{false};

  mutable Mutex mutex_{"telemetry.Watchdog"};
  CondVar cv_;
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<WatchdogIncident> incidents_ GUARDED_BY(mutex_);
  // Rising-edge dedup: an incident kind re-fires only after its condition
  // has been observed clear at least once.
  std::map<std::string, bool> active_ GUARDED_BY(mutex_);

  Counter m_samples_;    // ucudnn.watchdog.samples
  Counter m_incidents_;  // ucudnn.watchdog.incidents

  std::thread thread_;
};

}  // namespace ucudnn::telemetry
