#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/json_writer.h"
#include "telemetry/trace.h"

namespace ucudnn::telemetry {

namespace {

// Consecutive auto_dump() calls within this window coalesce into one file
// write, so a fault storm cannot turn the black box into an fwrite storm.
constexpr std::int64_t kAutoDumpMinIntervalUs = 10'000;

constexpr std::size_t kMinRingCapacity = 1;
constexpr std::size_t kMaxRingCapacity = std::size_t{1} << 20;
constexpr std::size_t kDefaultRingCapacity = 4096;

std::size_t env_ring_capacity() {
  // std::getenv, not common/env.h: telemetry is a leaf.
  const char* raw = std::getenv("UCUDNN_FLIGHT_EVENTS");
  if (raw == nullptr || raw[0] == '\0') return kDefaultRingCapacity;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0) return kDefaultRingCapacity;
  const auto capacity = static_cast<std::size_t>(parsed);
  return std::min(std::max(capacity, std::size_t{16}), kMaxRingCapacity);
}

std::string env_dump_path() {
  const char* path = std::getenv("UCUDNN_FLIGHT_FILE");
  return (path != nullptr && path[0] != '\0') ? std::string(path)
                                              : std::string();
}

std::atomic<std::uint64_t> g_next_recorder_id{1};

// Which recorder instance the calling thread's cached ring belongs to. The
// id (not the pointer) keys the cache so a destroyed-then-reallocated
// recorder can never alias a stale ring.
struct TlsRingRef {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local TlsRingRef t_ring;

}  // namespace

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kSpanOpen: return "span_open";
    case FlightEventKind::kSpanClose: return "span_close";
    case FlightEventKind::kStatus: return "status";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kDegradation: return "degradation";
    case FlightEventKind::kOverload: return "overload";
    case FlightEventKind::kWatchdog: return "watchdog";
    case FlightEventKind::kMark: return "mark";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  // Construction-order pin (docs/observability.md teardown discipline): the
  // registry and trace recorder are built first, so this singleton — whose
  // destructor performs the exit dump and stamps ucudnn.flight.* — is
  // destroyed before the registry's exit snapshot and while the shared
  // trace epoch still exists.
  MetricsRegistry::instance();
  TraceRecorder::instance();
  const std::string path = env_dump_path();
  const bool armed = !path.empty() ||
                     std::getenv("UCUDNN_FLIGHT_EVENTS") != nullptr ||
                     telemetry_enabled();
  static FlightRecorder recorder(env_ring_capacity(), path, /*global=*/true,
                                 armed);
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t events_per_thread,
                               std::string dump_path)
    : FlightRecorder(events_per_thread, std::move(dump_path),
                     /*global=*/false, /*armed=*/true) {}

FlightRecorder::FlightRecorder(std::size_t events_per_thread,
                               std::string dump_path, bool global, bool armed)
    : capacity_(std::min(std::max(events_per_thread, kMinRingCapacity),
                         kMaxRingCapacity)),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      global_(global) {
  {
    MutexLock lock(mutex_);
    dump_path_ = std::move(dump_path);
  }
  m_dumps_ = MetricsRegistry::instance().counter("ucudnn.flight.dumps");
  set_armed(armed);
}

FlightRecorder::~FlightRecorder() {
  if (global_) detail::g_flight_armed.store(false, std::memory_order_relaxed);
  if (!kCompiledIn) return;
  std::string path;
  {
    MutexLock lock(mutex_);
    path = dump_path_;
  }
  if (!path.empty() && recorded() > 0 && dump(path)) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
    m_dumps_.add();
  }
}

void FlightRecorder::set_armed(bool on) noexcept {
  const bool value = kCompiledIn && on;
  armed_.store(value, std::memory_order_relaxed);
  if (global_) detail::g_flight_armed.store(value, std::memory_order_relaxed);
}

void FlightRecorder::note(FlightEventKind kind, const char* name,
                          std::uint64_t trace_id, std::int64_t arg0,
                          std::int64_t arg1) noexcept {
  if (!armed()) return;
  instance().record(kind, name, trace_id, arg0, arg1);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() noexcept {
  if (t_ring.recorder_id == id_) return static_cast<Ring*>(t_ring.ring);
  try {
    auto owned = std::make_unique<Ring>(capacity_);
    Ring* ring = owned.get();
    {
      MutexLock lock(mutex_);
      rings_.push_back(std::move(owned));
    }
    // A thread that alternates between recorders leaves its old ring behind
    // (still owned, still dumped) and starts a fresh one: each ring keeps a
    // single writer for its whole lifetime, which is what makes the
    // lock-free slot protocol sound.
    t_ring = {id_, ring};
    return ring;
  } catch (...) {
    return nullptr;  // allocation failed; drop the event, never the process
  }
}

void FlightRecorder::record(FlightEventKind kind, const char* name,
                            std::uint64_t trace_id, std::int64_t arg0,
                            std::int64_t arg1) noexcept {
  if (!kCompiledIn || !armed_.load(std::memory_order_relaxed)) return;
  if (name == nullptr) return;
  Ring* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  const std::uint64_t claim =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[claim % ring->slots.size()];
  // Seqlock writer (single writer per ring): odd token while writing, even
  // claim-derived token once published. The release fence pairs with the
  // reader's acquire fence so a reader that observes any of these field
  // values also observes the odd token and rejects the slot.
  slot.seq.store(claim * 2 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ts_us.store(TraceRecorder::instance().now_us(),
                   std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.arg0.store(arg0, std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  slot.tid.store(TraceRecorder::thread_ordinal(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(claim * 2 + 2, std::memory_order_release);
}

const char* FlightRecorder::intern(const std::string& name) {
  MutexLock lock(mutex_);
  return interned_.insert(name).first->c_str();
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  if (!kCompiledIn) return events;
  MutexLock lock(mutex_);
  for (const auto& ring : rings_) {
    const std::size_t capacity = ring->slots.size();
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Slot& slot = ring->slots[i % capacity];
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
      FlightEvent event;
      event.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.name = slot.name.load(std::memory_order_relaxed);
      event.arg0 = slot.arg0.load(std::memory_order_relaxed);
      event.arg1 = slot.arg1.load(std::memory_order_relaxed);
      event.tid = slot.tid.load(std::memory_order_relaxed);
      event.kind = static_cast<FlightEventKind>(
          slot.kind.load(std::memory_order_relaxed));
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after = slot.seq.load(std::memory_order_relaxed);
      if (before != after || event.name == nullptr) continue;  // raced
      events.push_back(event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ucudnn-flight-v1");
  w.key("capacity_per_thread").value(static_cast<std::uint64_t>(capacity_));
  w.key("recorded").value(recorded());
  w.key("dropped").value(dropped());
  w.key("events").begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object();
    w.key("ts_us").value(e.ts_us);
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.key("kind").value(to_string(e.kind));
    w.key("name").value(e.name);
    w.key("trace").value(e.trace_id);
    w.key("arg0").value(e.arg0);
    w.key("arg1").value(e.arg1);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str() + "\n";
}

bool FlightRecorder::dump(const std::string& path) const {
  if (!kCompiledIn || path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

bool FlightRecorder::auto_dump(const char* reason) noexcept {
  if (!kCompiledIn || !armed_.load(std::memory_order_relaxed)) return false;
  try {
    std::string path;
    {
      MutexLock lock(mutex_);
      path = dump_path_;
    }
    if (path.empty()) return false;  // black box stays in memory
    const auto now_us =
        static_cast<std::int64_t>(TraceRecorder::instance().now_us());
    const std::int64_t last = last_auto_dump_us_.load(std::memory_order_relaxed);
    if (last >= 0 && now_us - last < kAutoDumpMinIntervalUs) return false;
    last_auto_dump_us_.store(now_us, std::memory_order_relaxed);
    record(FlightEventKind::kMark, "flight.dump", 0, 0, 0);
    if (reason != nullptr) {
      std::fprintf(stderr, "ucudnn: flight recorder dump (%s) -> %s\n", reason,
                   path.c_str());
    }
    if (!dump(path)) return false;
    dumps_.fetch_add(1, std::memory_order_relaxed);
    m_dumps_.add();
    return true;
  } catch (...) {
    return false;  // a failed dump must never take down the process
  }
}

void FlightRecorder::set_dump_path(std::string path) {
  MutexLock lock(mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  MutexLock lock(mutex_);
  return dump_path_;
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  if (!kCompiledIn) return 0;
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  if (!kCompiledIn) return 0;
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t capacity = ring->slots.size();
    if (head > capacity) total += head - capacity;
  }
  return total;
}

void FlightRecorder::clear() {
  MutexLock lock(mutex_);
  for (const auto& ring : rings_) {
    for (Slot& slot : ring->slots) slot.seq.store(0, std::memory_order_relaxed);
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ucudnn::telemetry
