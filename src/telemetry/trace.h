// Scoped trace spans with thread ids and nesting, exportable as Chrome
// chrome://tracing JSON ("traceEvents" with ph:"X" complete events). The
// span catalog lives in docs/observability.md.
//
// Recording is gated by a single relaxed atomic (the FaultInjector::armed
// idiom): a disabled ScopedSpan costs one load and allocates nothing — the
// detail callback of the two-argument constructor is never invoked. Enable
// via UCUDNN_TRACE_FILE=<path> (written at process exit), UCUDNN_TELEMETRY,
// or programmatically with TraceRecorder::set_enabled for tests.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — it may
// include only other telemetry headers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/metrics.h"

namespace ucudnn::telemetry {

/// One completed span. Timestamps are microseconds on the steady clock,
/// relative to the recorder's construction.
struct SpanEvent {
  std::string name;    // catalog name, e.g. "segment_exec"
  std::string detail;  // free-form annotation ("" = none)
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;    // compact per-process thread ordinal
  std::uint32_t depth = 0;  // nesting depth on that thread (0 = top level)
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  bool enabled() const noexcept {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(kCompiledIn && on, std::memory_order_relaxed);
  }

  void clear();
  std::vector<SpanEvent> events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}.
  std::string to_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Appends a completed span (called by ScopedSpan).
  void record(SpanEvent event);

  /// Microseconds since the recorder's epoch.
  double now_us() const noexcept;
  /// Compact ordinal of the calling thread (stable for its lifetime).
  static std::uint32_t thread_ordinal() noexcept;

 private:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::atomic<bool> enabled_{false};
  std::string trace_path_;  // UCUDNN_TRACE_FILE; written at destruction
  std::int64_t epoch_ns_ = 0;
  mutable Mutex mutex_{"TraceRecorder"};
  std::vector<SpanEvent> events_ GUARDED_BY(mutex_);
};

/// RAII span. When the recorder is disabled the constructor is a single
/// relaxed load and the destructor a null check; nothing is allocated and
/// the detail callback is not invoked.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (kCompiledIn && TraceRecorder::instance().enabled()) open(name);
  }

  /// `detail_fn() -> std::string` is evaluated only when recording.
  template <typename DetailFn>
  ScopedSpan(const char* name, DetailFn&& detail_fn) {
    if (kCompiledIn && TraceRecorder::instance().enabled()) {
      open(name);
      detail_ = std::forward<DetailFn>(detail_fn)();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) close();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const noexcept { return name_ != nullptr; }

 private:
  void open(const char* name) noexcept;
  void close() noexcept;

  const char* name_ = nullptr;  // nullptr = inactive
  std::string detail_;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
};

}  // namespace ucudnn::telemetry
