// Scoped trace spans with thread ids, nesting, and request-scoped trace ids,
// exportable as Chrome chrome://tracing JSON ("traceEvents" with ph:"X"
// complete events) and as per-request timelines (`ucudnn-request-trace-v1`).
// The span catalog lives in docs/observability.md.
//
// Recording is gated by a single relaxed atomic (the FaultInjector::armed
// idiom): a disabled ScopedSpan costs one load and allocates nothing — the
// detail callback of the two-argument constructor is never invoked. Enable
// via UCUDNN_TRACE_FILE=<path> (written at process exit), UCUDNN_TELEMETRY,
// or programmatically with TraceRecorder::set_enabled for tests. When the
// flight recorder is armed, spans additionally emit compact open/close
// events into its ring buffers even with the trace recorder off.
//
// Request scoping: next_trace_id() mints a process-unique id, TraceContext
// installs it as the calling thread's ambient id, and every span opened
// while it is installed carries it — existing call sites pick this up with
// no signature changes. The recorder caps retained spans at
// UCUDNN_TRACE_MAX_SPANS (drop-oldest; dropped count exported as
// `ucudnn.trace.dropped`) so a long serving run cannot OOM the recorder.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — it may
// include only other telemetry headers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace ucudnn::telemetry {

/// One completed span. Timestamps are microseconds on the steady clock,
/// relative to the recorder's construction.
struct SpanEvent {
  std::string name;    // catalog name, e.g. "segment_exec"
  std::string detail;  // free-form annotation ("" = none)
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;        // compact per-process thread ordinal
  std::uint32_t depth = 0;      // nesting depth on that thread (0 = top level)
  std::uint64_t trace_id = 0;   // ambient request trace id (0 = unscoped)
};

/// Mints a process-unique request trace id. Never returns 0 (0 = unscoped).
std::uint64_t next_trace_id() noexcept;

/// The calling thread's ambient trace id (0 when no TraceContext is active).
std::uint64_t current_trace_id() noexcept;

/// RAII ambient trace scope: spans opened (and flight events recorded) on
/// this thread while the context is alive carry `trace_id`. Nests; the
/// previous id is restored on destruction.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id) noexcept;
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t prev_ = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  bool enabled() const noexcept {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(kCompiledIn && on, std::memory_order_relaxed);
  }

  void clear();
  std::vector<SpanEvent> events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}.
  std::string to_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Per-request timeline JSON (`ucudnn-request-trace-v1`): spans grouped by
  /// non-zero trace id, each request's spans sorted by start time. Also
  /// written to UCUDNN_REQUEST_TRACE_FILE at process exit when set.
  std::string request_trace_json() const;
  void write_request_trace(const std::string& path) const;

  /// Appends a completed span (called by ScopedSpan). Evicts the oldest
  /// spans beyond max_spans(), counting them in dropped_spans().
  void record(SpanEvent event);

  /// Retention cap (UCUDNN_TRACE_MAX_SPANS, default 1M) and the number of
  /// spans evicted by it so far (also the `ucudnn.trace.dropped` counter).
  std::size_t max_spans() const;
  void set_max_spans(std::size_t cap);  // clamped to >= 1; for tests
  std::uint64_t dropped_spans() const;

  /// Microseconds since the recorder's epoch.
  double now_us() const noexcept;
  /// Compact ordinal of the calling thread (stable for its lifetime).
  static std::uint32_t thread_ordinal() noexcept;

 private:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::atomic<bool> enabled_{false};
  std::string trace_path_;          // UCUDNN_TRACE_FILE; written at destruction
  std::string request_trace_path_;  // UCUDNN_REQUEST_TRACE_FILE; ditto
  std::int64_t epoch_ns_ = 0;
  mutable Mutex mutex_{"TraceRecorder"};
  std::deque<SpanEvent> events_ GUARDED_BY(mutex_);
  std::size_t max_spans_ GUARDED_BY(mutex_);
  std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
  Counter m_dropped_;  // ucudnn.trace.dropped
};

/// RAII span. When both the trace recorder and the flight recorder are
/// disabled the constructor is a single relaxed load (each) and the
/// destructor a null check; nothing is allocated and the detail callback is
/// not invoked. With only the flight recorder armed, the span emits compact
/// ring events but allocates nothing and retains nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (kCompiledIn &&
        (TraceRecorder::instance().enabled() || FlightRecorder::armed())) {
      open(name);
    }
  }

  /// `detail_fn() -> std::string` is evaluated only when the trace recorder
  /// itself records (flight events carry no detail string).
  template <typename DetailFn>
  ScopedSpan(const char* name, DetailFn&& detail_fn) {
    if (!kCompiledIn) return;
    if (TraceRecorder::instance().enabled() || FlightRecorder::armed()) {
      open(name);
      if (to_recorder_) detail_ = std::forward<DetailFn>(detail_fn)();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) close();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const noexcept { return name_ != nullptr; }

 private:
  void open(const char* name) noexcept;
  void close() noexcept;

  const char* name_ = nullptr;  // nullptr = inactive
  bool to_recorder_ = false;    // trace recorder was enabled at open
  std::string detail_;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
  std::uint64_t trace_id_ = 0;
};

}  // namespace ucudnn::telemetry
