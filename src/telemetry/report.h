// ExecutionReport — the "plan explain" data model (docs/observability.md,
// "Execution reports & bench artifacts").
//
// For every convolution kernel a handle executed, the report captures the
// chosen micro-batch division with per-segment algorithms, DP/ILP-estimated
// vs executor-measured milliseconds per segment, workspace declared vs
// audit-touched bytes (when UCUDNN_AUDIT_WORKSPACE is on), plan-cache and
// degradation context, and the WR/WD policy metadata. The planner supplies
// the estimates, division, and provenance; the executor supplies measured
// segment times; the UcudnnHandle facade assembles the report on demand
// (UcudnnHandle::execution_report()) and dumps it at handle teardown when
// UCUDNN_REPORT_FILE is set — as JSON when the path ends in ".json", as the
// pretty text table otherwise.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf, so this
// is a pure data model — strings and numbers only, populated by core through
// plain assignment, with no includes of core headers. UCUDNN_REPORT_FILE is
// therefore read with std::getenv, like the other telemetry variables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ucudnn::telemetry {

/// One micro-batch segment of a kernel's plan: the DP-estimated cost next to
/// what the executor actually measured (device-clock delta on simulated
/// devices, wall clock on measured ones), accumulated over runs.
struct SegmentReport {
  std::int64_t batch = 0;
  int algo = -1;
  std::string algo_name;
  bool accumulate = false;          ///< BackwardFilter beta-accumulation
  std::uint64_t workspace_bytes = 0;  ///< declared workspace need
  double estimated_ms = 0.0;        ///< planner's modeled cost
  double measured_ms_total = 0.0;   ///< sum over runs
  std::uint64_t runs = 0;

  double measured_ms_avg() const noexcept {
    return runs == 0 ? 0.0 : measured_ms_total / static_cast<double>(runs);
  }
  /// |measured - estimated| / estimated * 100; 0 while unmeasured or when
  /// the estimate is 0.
  double error_pct() const noexcept;
};

/// One executed conv kernel: its division, provenance, and workspace story.
struct KernelReport {
  std::string label;        ///< layer label, e.g. "conv2(Forward)"
  std::string kernel_type;  ///< "Forward" | "BackwardData" | "BackwardFilter"
  std::string problem;      ///< ConvProblem::to_string()
  std::string plan;         ///< ExecutionPlan::to_string() — the explain line
  std::string policy;       ///< "WR" | "WD"
  std::string provenance;   ///< optimizer path, e.g. "wr_dp", "wd_ilp"
  std::string workspace_kind;  ///< none | perKernel | sharedWR | wdArena
  std::uint64_t workspace_limit = 0;     ///< effective limit given to the DP
  std::uint64_t workspace_declared = 0;  ///< plan's declared workspace bytes
  std::uint64_t executions = 0;  ///< whole-plan runs through the executor
  std::uint64_t replans = 0;     ///< mid-batch tail re-plans observed
  std::vector<SegmentReport> segments;

  double estimated_ms() const noexcept;  ///< sum of segment estimates
  double measured_ms() const noexcept;   ///< sum of per-segment averages
  double error_pct() const noexcept;     ///< plan-level estimate error
};

/// Declared-vs-touched high-water of one audited kernel
/// (analysis::workspace_audit; present only under UCUDNN_AUDIT_WORKSPACE).
struct WorkspaceAuditReport {
  std::string kernel;  ///< audit display name, e.g. "WR/GEMM"
  std::uint64_t declared_bytes = 0;
  std::uint64_t touched_bytes = 0;
  std::uint64_t runs = 0;

  /// touched/declared in percent (0 when nothing was declared). Mirrored as
  /// the ucudnn.audit.ws_utilization.<kernel> gauge.
  double utilization_pct() const noexcept;
};

/// The full report of one UcudnnHandle.
struct ExecutionReport {
  std::string device;             ///< executing device name
  std::string policy;             ///< "WR" | "WD"
  std::string batch_size_policy;  ///< all | powerOfTwo | undivided
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t plan_cache_epoch = 0;
  std::string degradation;  ///< DegradationStats::to_string(), "" = none
  std::vector<KernelReport> kernels;
  std::vector<WorkspaceAuditReport> audit;

  /// Mean per-segment |measured - estimated| / estimated over every measured
  /// segment, in percent. 0 when nothing was measured.
  double estimation_error_pct() const noexcept;
  /// Measured segments contributing to estimation_error_pct().
  std::uint64_t measured_segments() const noexcept;

  /// Pretty "plan explain" table (embeds each kernel's plan string).
  std::string to_text() const;
  /// Machine-readable form, schema "ucudnn-execution-report-v1".
  std::string to_json() const;
};

/// UCUDNN_REPORT_FILE ("" when unset). Read once per process with
/// std::getenv — telemetry is a leaf.
const std::string& report_file_path() noexcept;

/// Writes to_json() when `path` ends in ".json", to_text() otherwise.
/// stdio-only, so safe from destructors during static teardown.
void write_report_file(const ExecutionReport& report, const std::string& path);

}  // namespace ucudnn::telemetry
