// Always-on flight recorder: fixed-size lock-free per-thread ring buffers of
// compact binary events — the serving stack's black box for "what happened in
// the last N seconds". Writers record span open/close edges, request status
// transitions, fault-site triggers, degradation ladder steps, and overload
// rung changes; the buffer is dumped as `ucudnn-flight-v1` JSON to
// UCUDNN_FLIGHT_FILE on demand, at process exit, and automatically when a
// fault injector site fires or the executor blacklists an algorithm. The
// event catalog lives in docs/observability.md.
//
// Cost model: a disarmed record() is one relaxed atomic load; an armed one is
// a ring-slot claim (fetch_add) plus seven relaxed stores and one release
// store — no locks, no allocation, no syscalls. Each thread owns its ring, so
// writers never contend; readers (dump/snapshot) use a per-slot seqlock to
// discard events they raced with.
//
// Event names must be string literals (or pointers obtained from intern()):
// the ring stores the pointer, not the bytes.
//
// Layering contract (tools/check_layering.py): telemetry is a leaf — it may
// include only other telemetry headers and common/thread_annotations.h.
// Environment gating (UCUDNN_FLIGHT_FILE, UCUDNN_FLIGHT_EVENTS) is therefore
// read with std::getenv directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/metrics.h"

namespace ucudnn::telemetry {

enum class FlightEventKind : std::uint8_t {
  kSpanOpen = 0,     // a ScopedSpan opened (arg0 = nesting depth)
  kSpanClose = 1,    // a ScopedSpan closed (arg0 = depth, arg1 = dur in us)
  kStatus = 2,       // a serve ticket resolved (name = status, arg0 = code)
  kFault = 3,        // a fault-injector site fired (name = site)
  kDegradation = 4,  // executor retry/blacklist ladder step
  kOverload = 5,     // queue overload rung change (arg0 = new, arg1 = old)
  kWatchdog = 6,     // anomaly watchdog incident (name = incident kind)
  kMark = 7,         // free-form annotation
};

/// Catalog name for a kind ("span_open", "fault", ...).
const char* to_string(FlightEventKind kind) noexcept;

/// One decoded ring event. Timestamps share TraceRecorder's epoch so flight
/// events and trace spans line up on the same axis.
struct FlightEvent {
  double ts_us = 0.0;
  std::uint64_t trace_id = 0;  // ambient request trace id (0 = none)
  const char* name = "";       // interned; stable for the recorder's lifetime
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::uint32_t tid = 0;  // TraceRecorder::thread_ordinal of the writer
  FlightEventKind kind = FlightEventKind::kMark;
};

namespace detail {
// Mirror of the *singleton* recorder's armed flag, readable without touching
// the singleton (so instrumentation hooks cost one load when disarmed and
// never force construction). Test-local recorders arm only their member flag.
inline std::atomic<bool> g_flight_armed{false};
}  // namespace detail

class FlightRecorder {
 public:
  /// The process-wide recorder. Construction pins MetricsRegistry and the
  /// TraceRecorder first so this singleton is destroyed (and performs its
  /// exit dump) before the registry's exit snapshot — the static-teardown
  /// discipline from docs/observability.md.
  static FlightRecorder& instance();

  /// Test constructor: explicit per-thread capacity and dump path, never
  /// touching the process-wide armed mirror.
  FlightRecorder(std::size_t events_per_thread, std::string dump_path);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// One relaxed load; true when the *singleton* is armed (hooks' fast path).
  static bool armed() noexcept {
    return kCompiledIn && detail::g_flight_armed.load(std::memory_order_relaxed);
  }

  /// Record through the singleton iff armed. The fast path for call sites.
  static void note(FlightEventKind kind, const char* name,
                   std::uint64_t trace_id = 0, std::int64_t arg0 = 0,
                   std::int64_t arg1 = 0) noexcept;

  /// Appends one event to the calling thread's ring (drop-oldest on wrap).
  /// `name` must outlive the recorder: a literal or an intern() result.
  void record(FlightEventKind kind, const char* name, std::uint64_t trace_id = 0,
              std::int64_t arg0 = 0, std::int64_t arg1 = 0) noexcept;

  /// Copies a dynamic name into recorder-lifetime storage (slow path: takes
  /// the recorder mutex; idempotent per string).
  const char* intern(const std::string& name);

  bool is_armed() const noexcept {
    return kCompiledIn && armed_.load(std::memory_order_relaxed);
  }
  /// Arms/disarms this recorder; on the singleton also flips the global
  /// mirror that ScopedSpan and the fault injector poll.
  void set_armed(bool on) noexcept;

  /// Consistent-ish merged view of every ring, sorted by timestamp. Events
  /// overwritten mid-read are skipped, never torn.
  std::vector<FlightEvent> snapshot() const;

  /// `ucudnn-flight-v1`: {"schema","capacity_per_thread","recorded",
  /// "dropped","events":[{ts_us,tid,kind,name,trace,arg0,arg1},...]}.
  std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  bool dump(const std::string& path) const;

  /// Dump to the configured path (UCUDNN_FLIGHT_FILE for the singleton);
  /// fast no-op returning false when no path is set. Rate-limited so a fault
  /// storm does not turn into an fwrite storm; `reason` is recorded as a
  /// "flight.dump" mark beforehand so the dump explains itself.
  bool auto_dump(const char* reason) noexcept;

  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Total events ever recorded / overwritten before being read.
  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept;
  std::size_t capacity_per_thread() const noexcept { return capacity_; }
  std::uint64_t dump_count() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Resets ring contents and counters. Only meaningful while no other
  /// thread is recording (tests).
  void clear();

 private:
  // Single-writer ring. Each slot is a seqlock: `seq` is 0 while the slot is
  // being (re)written and `claim + 1` (odd-free monotonic token) once
  // published with release order; readers re-check it around the field loads.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> ts_us{0.0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> arg0{0};
    std::atomic<std::int64_t> arg1{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint8_t> kind{0};
  };
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  // total events ever claimed
  };

  FlightRecorder(std::size_t events_per_thread, std::string dump_path,
                 bool global, bool armed);

  Ring* ring_for_this_thread() noexcept;

  const std::size_t capacity_;
  const std::uint64_t id_;    // process-unique; guards thread-local caching
  const bool global_;         // true only for instance()
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::int64_t> last_auto_dump_us_{-1};

  mutable Mutex mutex_{"FlightRecorder"};
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(mutex_);
  std::set<std::string> interned_ GUARDED_BY(mutex_);
  std::string dump_path_ GUARDED_BY(mutex_);

  Counter m_dumps_;  // ucudnn.flight.dumps
};

}  // namespace ucudnn::telemetry
