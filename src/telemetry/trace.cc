#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ucudnn::telemetry {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread nesting depth of active spans.
thread_local std::uint32_t t_span_depth = 0;

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {
  // std::getenv, not common/env.h: telemetry is a leaf.
  if (const char* path = std::getenv("UCUDNN_TRACE_FILE");
      path != nullptr && path[0] != '\0') {
    trace_path_ = path;
  }
  set_enabled(!trace_path_.empty() || telemetry_enabled());
}

TraceRecorder::~TraceRecorder() {
  if (trace_path_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return;
  // Inline (rather than via write_chrome_trace) to avoid re-locking; stdio
  // only, since iostreams may already be torn down at static destruction.
  if (std::FILE* f = std::fopen(trace_path_.c_str(), "w")) {
    std::string json = "{\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent& e : events_) {
      if (!first) json += ",";
      first = false;
      json += "\n{\"name\":\"";
      append_json_escaped(json, e.name);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"ucudnn\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u",
                    e.ts_us, e.dur_us, e.tid, e.depth);
      json += buf;
      if (!e.detail.empty()) {
        json += ",\"detail\":\"";
        append_json_escaped(json, e.detail);
        json += "\"";
      }
      json += "}}";
    }
    json += "\n]}\n";
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_json() const {
  const std::vector<SpanEvent> copy = events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : copy) {
    if (!first) os << ",";
    first = false;
    std::string name, detail;
    append_json_escaped(name, e.name);
    append_json_escaped(detail, e.detail);
    os << "\n{\"name\":\"" << name << "\",\"cat\":\"ucudnn\",\"ph\":\"X\""
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"depth\":" << e.depth;
    if (!detail.empty()) os << ",\"detail\":\"" << detail << "\"";
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string json = to_json();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

void TraceRecorder::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

double TraceRecorder::now_us() const noexcept {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

std::uint32_t TraceRecorder::thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void ScopedSpan::open(const char* name) noexcept {
  name_ = name;
  start_us_ = TraceRecorder::instance().now_us();
  depth_ = t_span_depth++;
}

void ScopedSpan::close() noexcept {
  --t_span_depth;
  TraceRecorder& recorder = TraceRecorder::instance();
  // A span that outlived a set_enabled(false) still records: depth
  // accounting stays balanced either way because open/close pair on name_.
  SpanEvent event;
  event.name = name_;
  event.detail = std::move(detail_);
  event.ts_us = start_us_;
  event.dur_us = recorder.now_us() - start_us_;
  event.tid = TraceRecorder::thread_ordinal();
  event.depth = depth_;
  recorder.record(std::move(event));
}

}  // namespace ucudnn::telemetry
