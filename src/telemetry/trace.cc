#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "telemetry/json_writer.h"

namespace ucudnn::telemetry {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread nesting depth of active spans.
thread_local std::uint32_t t_span_depth = 0;

// Ambient request trace id installed by TraceContext (0 = unscoped).
thread_local std::uint64_t t_trace_id = 0;

constexpr std::size_t kDefaultMaxSpans = 1'000'000;

std::size_t env_max_spans() {
  // std::getenv, not common/env.h: telemetry is a leaf.
  const char* raw = std::getenv("UCUDNN_TRACE_MAX_SPANS");
  if (raw == nullptr || raw[0] == '\0') return kDefaultMaxSpans;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0) return kDefaultMaxSpans;
  return static_cast<std::size_t>(parsed);
}

void append_span_args(JsonWriter& w, const SpanEvent& e) {
  w.key("args").begin_object();
  w.key("depth").value(static_cast<std::int64_t>(e.depth));
  if (e.trace_id != 0) w.key("trace").value(e.trace_id);
  if (!e.detail.empty()) w.key("detail").value(e.detail);
  w.end_object();
}

// Chrome trace-event rendering, shared between to_json (snapshot copy) and
// the destructor (events under the already-held lock). JsonWriter is
// stdio-only, so this is safe during static destruction.
template <typename Events>
std::string events_to_json(const Events& events) {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("ucudnn");
    w.key("ph").value("X");
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    append_span_args(w, e);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str() + "\n";
}

// `ucudnn-request-trace-v1`: spans grouped by non-zero trace id, each
// request's spans sorted by start time, with the request's overall
// begin/end bounds precomputed for timeline reconstruction.
template <typename Events>
std::string events_to_request_trace_json(const Events& events,
                                         std::uint64_t dropped) {
  std::map<std::uint64_t, std::vector<const SpanEvent*>> by_id;
  for (const SpanEvent& e : events) {
    if (e.trace_id != 0) by_id[e.trace_id].push_back(&e);
  }
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ucudnn-request-trace-v1");
  w.key("dropped_spans").value(dropped);
  w.key("requests").begin_array();
  for (auto& [trace_id, spans] : by_id) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent* a, const SpanEvent* b) {
                       return a->ts_us < b->ts_us;
                     });
    double begin_us = spans.front()->ts_us;
    double end_us = begin_us;
    for (const SpanEvent* e : spans) {
      end_us = std::max(end_us, e->ts_us + e->dur_us);
    }
    w.begin_object();
    w.key("trace_id").value(trace_id);
    w.key("begin_us").value(begin_us);
    w.key("end_us").value(end_us);
    w.key("spans").begin_array();
    for (const SpanEvent* e : spans) {
      w.begin_object();
      w.key("name").value(e->name);
      w.key("ts_us").value(e->ts_us);
      w.key("dur_us").value(e->dur_us);
      w.key("tid").value(static_cast<std::int64_t>(e->tid));
      w.key("depth").value(static_cast<std::int64_t>(e->depth));
      if (!e->detail.empty()) w.key("detail").value(e->detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array().end_object();
  return w.str() + "\n";
}

void write_text_file(const std::string& path, const std::string& text) {
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_trace_id() noexcept { return t_trace_id; }

TraceContext::TraceContext(std::uint64_t trace_id) noexcept
    : prev_(t_trace_id) {
  t_trace_id = trace_id;
}

TraceContext::~TraceContext() { t_trace_id = prev_; }

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder()
    : epoch_ns_(steady_ns()), max_spans_(env_max_spans()) {
  // std::getenv, not common/env.h: telemetry is a leaf.
  if (const char* path = std::getenv("UCUDNN_TRACE_FILE");
      path != nullptr && path[0] != '\0') {
    trace_path_ = path;
  }
  if (const char* path = std::getenv("UCUDNN_REQUEST_TRACE_FILE");
      path != nullptr && path[0] != '\0') {
    request_trace_path_ = path;
  }
  // Pins the registry's construction before ours so the dropped-span
  // counter's cell outlives this recorder during static teardown.
  m_dropped_ = MetricsRegistry::instance().counter("ucudnn.trace.dropped");
  set_enabled(!trace_path_.empty() || !request_trace_path_.empty() ||
              telemetry_enabled());
}

TraceRecorder::~TraceRecorder() {
  if (trace_path_.empty() && request_trace_path_.empty()) return;
  MutexLock lock(mutex_);
  if (events_.empty()) return;
  // Renders from events_ directly (rather than via write_chrome_trace) to
  // avoid re-locking during static destruction.
  if (!trace_path_.empty()) {
    write_text_file(trace_path_, events_to_json(events_));
  }
  if (!request_trace_path_.empty()) {
    write_text_file(request_trace_path_,
                    events_to_request_trace_json(events_, dropped_));
  }
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

std::vector<SpanEvent> TraceRecorder::events() const {
  MutexLock lock(mutex_);
  return std::vector<SpanEvent>(events_.begin(), events_.end());
}

std::string TraceRecorder::to_json() const { return events_to_json(events()); }

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  write_text_file(path, to_json());
}

std::string TraceRecorder::request_trace_json() const {
  std::uint64_t dropped = 0;
  std::vector<SpanEvent> snapshot;
  {
    MutexLock lock(mutex_);
    snapshot.assign(events_.begin(), events_.end());
    dropped = dropped_;
  }
  return events_to_request_trace_json(snapshot, dropped);
}

void TraceRecorder::write_request_trace(const std::string& path) const {
  write_text_file(path, request_trace_json());
}

void TraceRecorder::record(SpanEvent event) {
  std::uint64_t evicted = 0;
  {
    MutexLock lock(mutex_);
    while (events_.size() >= max_spans_) {
      events_.pop_front();
      ++evicted;
    }
    dropped_ += evicted;
    events_.push_back(std::move(event));
  }
  if (evicted > 0) m_dropped_.add(evicted);
}

std::size_t TraceRecorder::max_spans() const {
  MutexLock lock(mutex_);
  return max_spans_;
}

void TraceRecorder::set_max_spans(std::size_t cap) {
  MutexLock lock(mutex_);
  max_spans_ = std::max<std::size_t>(cap, 1);
}

std::uint64_t TraceRecorder::dropped_spans() const {
  MutexLock lock(mutex_);
  return dropped_;
}

double TraceRecorder::now_us() const noexcept {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

std::uint32_t TraceRecorder::thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void ScopedSpan::open(const char* name) noexcept {
  name_ = name;
  TraceRecorder& recorder = TraceRecorder::instance();
  // A span that outlives a set_enabled(false) still records, and one opened
  // for the flight recorder alone never retroactively records: the decision
  // is latched here. Depth accounting stays balanced because open/close pair
  // on name_ either way.
  to_recorder_ = recorder.enabled();
  trace_id_ = t_trace_id;
  start_us_ = recorder.now_us();
  depth_ = t_span_depth++;
  FlightRecorder::note(FlightEventKind::kSpanOpen, name, trace_id_,
                       static_cast<std::int64_t>(depth_), 0);
}

void ScopedSpan::close() noexcept {
  --t_span_depth;
  TraceRecorder& recorder = TraceRecorder::instance();
  const double dur_us = recorder.now_us() - start_us_;
  FlightRecorder::note(FlightEventKind::kSpanClose, name_, trace_id_,
                       static_cast<std::int64_t>(depth_),
                       static_cast<std::int64_t>(std::llround(dur_us)));
  if (!to_recorder_) return;
  SpanEvent event;
  event.name = name_;
  event.detail = std::move(detail_);
  event.ts_us = start_us_;
  event.dur_us = dur_us;
  event.tid = TraceRecorder::thread_ordinal();
  event.depth = depth_;
  event.trace_id = trace_id_;
  recorder.record(std::move(event));
}

}  // namespace ucudnn::telemetry
