#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "telemetry/json_writer.h"

namespace ucudnn::telemetry {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread nesting depth of active spans.
thread_local std::uint32_t t_span_depth = 0;

// Chrome trace-event rendering, shared between to_json (snapshot copy) and
// the destructor (events under the already-held lock). JsonWriter is
// stdio-only, so this is safe during static destruction.
std::string events_to_json(const std::vector<SpanEvent>& events) {
  JsonWriter w;
  w.begin_object().key("traceEvents").begin_array();
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("ucudnn");
    w.key("ph").value("X");
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.key("args").begin_object();
    w.key("depth").value(static_cast<std::int64_t>(e.depth));
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    w.end_object();
    w.end_object();
  }
  w.end_array().end_object();
  return w.str() + "\n";
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {
  // std::getenv, not common/env.h: telemetry is a leaf.
  if (const char* path = std::getenv("UCUDNN_TRACE_FILE");
      path != nullptr && path[0] != '\0') {
    trace_path_ = path;
  }
  set_enabled(!trace_path_.empty() || telemetry_enabled());
}

TraceRecorder::~TraceRecorder() {
  if (trace_path_.empty()) return;
  MutexLock lock(mutex_);
  if (events_.empty()) return;
  // Renders from events_ directly (rather than via write_chrome_trace) to
  // avoid re-locking during static destruction.
  if (std::FILE* f = std::fopen(trace_path_.c_str(), "w")) {
    const std::string json = events_to_json(events_);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

std::vector<SpanEvent> TraceRecorder::events() const {
  MutexLock lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_json() const { return events_to_json(events()); }

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string json = to_json();
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
}

void TraceRecorder::record(SpanEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

double TraceRecorder::now_us() const noexcept {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

std::uint32_t TraceRecorder::thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void ScopedSpan::open(const char* name) noexcept {
  name_ = name;
  start_us_ = TraceRecorder::instance().now_us();
  depth_ = t_span_depth++;
}

void ScopedSpan::close() noexcept {
  --t_span_depth;
  TraceRecorder& recorder = TraceRecorder::instance();
  // A span that outlived a set_enabled(false) still records: depth
  // accounting stays balanced either way because open/close pair on name_.
  SpanEvent event;
  event.name = name_;
  event.detail = std::move(detail_);
  event.ts_us = start_us_;
  event.dur_us = recorder.now_us() - start_us_;
  event.tid = TraceRecorder::thread_ordinal();
  event.depth = depth_;
  recorder.record(std::move(event));
}

}  // namespace ucudnn::telemetry
