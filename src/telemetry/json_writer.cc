#include "telemetry/json_writer.h"

#include <cmath>
#include <cstdio>

namespace ucudnn::telemetry {

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_json_escaped(out, text);
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  // %.12g round-trips to ~1e-12 relative precision — far below timing noise
  // — while keeping decade bounds readable ("0.1", not 17-digit forms).
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (!has_items_.empty()) has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (!has_items_.empty()) has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separator();
  out_ += '"';
  append_json_escaped(out_, name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += '"';
  append_json_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  separator();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  separator();
  out_ += json;
  return *this;
}

}  // namespace ucudnn::telemetry
