#include "gemm/gemm.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace ucudnn::gemm {

namespace {

inline float load_a(Trans t, const float* a, std::int64_t lda, std::int64_t i,
                    std::int64_t p) {
  return t == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

inline float load_b(Trans t, const float* b, std::int64_t ldb, std::int64_t p,
                    std::int64_t j) {
  return t == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
}

// Blocking parameters tuned for L1/L2-resident panels of floats.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

// Computes one M-block of C. Packs the A block so the inner loops stream
// contiguously regardless of the requested transposes.
void gemm_block_row(Trans trans_a, Trans trans_b, std::int64_t i0,
                    std::int64_t i1, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
  std::vector<float> a_pack(static_cast<std::size_t>(kBlockM * kBlockK));

  // beta-scale the C rows once up front.
  for (std::int64_t i = i0; i < i1; ++i) {
    float* c_row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }

  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t pb = std::min(kBlockK, k - p0);
    for (std::int64_t ii0 = i0; ii0 < i1; ii0 += kBlockM) {
      const std::int64_t ib = std::min(kBlockM, i1 - ii0);
      // Pack op(A)[ii0:ii0+ib, p0:p0+pb] row-major into a_pack.
      for (std::int64_t i = 0; i < ib; ++i) {
        for (std::int64_t p = 0; p < pb; ++p) {
          a_pack[static_cast<std::size_t>(i * pb + p)] =
              load_a(trans_a, a, lda, ii0 + i, p0 + p);
        }
      }
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t jb = std::min(kBlockN, n - j0);
        for (std::int64_t i = 0; i < ib; ++i) {
          float* c_row = c + (ii0 + i) * ldc + j0;
          const float* a_row = a_pack.data() + i * pb;
          if (trans_b == Trans::kNo) {
            for (std::int64_t p = 0; p < pb; ++p) {
              const float av = alpha * a_row[p];
              if (av == 0.0f) continue;
              const float* b_row = b + (p0 + p) * ldb + j0;
              for (std::int64_t j = 0; j < jb; ++j) c_row[j] += av * b_row[j];
            }
          } else {
            for (std::int64_t j = 0; j < jb; ++j) {
              const float* b_col = b + (j0 + j) * ldb + p0;
              float acc = 0.0f;
              for (std::int64_t p = 0; p < pb; ++p) acc += a_row[p] * b_col[p];
              c_row[j] += alpha * acc;
            }
          }
        }
      }
    }
  }
}

}  // namespace

void sgemm_naive(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, std::int64_t lda,
                 const float* b, std::int64_t ldb, float beta, float* c,
                 std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(load_a(trans_a, a, lda, i, p)) *
               load_b(trans_b, b, ldb, p, j);
      }
      c[i * ldc + j] = static_cast<float>(alpha * acc) +
                       (beta == 0.0f ? 0.0f : beta * c[i * ldc + j]);
    }
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* c_row = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(c_row, c_row + n, 0.0f);
      } else if (beta != 1.0f) {
        for (std::int64_t j = 0; j < n; ++j) c_row[j] *= beta;
      }
    }
    return;
  }
  ThreadPool::global().parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1, std::size_t) {
        gemm_block_row(trans_a, trans_b, i0, i1, n, k, alpha, a, lda, b, ldb,
                       beta, c, ldc);
      },
      /*min_chunk=*/16);
}

void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, const float* b,
           float beta, float* c) {
  const std::int64_t lda = trans_a == Trans::kNo ? k : m;
  const std::int64_t ldb = trans_b == Trans::kNo ? n : k;
  sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

}  // namespace ucudnn::gemm
