#include "gemm/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/mathutil.h"
#include "common/simd.h"
#include "common/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define UCUDNN_GEMM_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define UCUDNN_GEMM_NEON 1
#include <arm_neon.h>
#endif

namespace ucudnn::gemm {

namespace {

inline float load_a(Trans t, const float* a, std::int64_t lda, std::int64_t i,
                    std::int64_t p) {
  return t == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

inline float load_b(Trans t, const float* b, std::int64_t ldb, std::int64_t p,
                    std::int64_t j) {
  return t == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
}

// BLIS-style blocking. The micro-kernel computes a kMR x kNR tile of C with
// the full register file: on AVX2, 6 rows x 2 ymm columns = 12 accumulator
// registers plus two B loads and one A broadcast.
constexpr std::int64_t kMR = 6;
constexpr std::int64_t kNR = 16;
// Cache blocks: the packed A panel (kMC x kKC floats, 96 KiB) targets L2, the
// packed B panel streams through in kKC x kNR strips that fit L1.
constexpr std::int64_t kMC = 96;   // multiple of kMR
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;  // multiple of kNR

// Packed layouts: A strips hold kMR rows interleaved per k step
// (ap[p * kMR + i]), B strips hold kNR columns per k step (bp[p * kNR + j]).
// Edges are zero-padded to full strips so the micro-kernel never branches.

void micro_kernel_scalar(std::int64_t pb, const float* ap, const float* bp,
                         float* c, std::int64_t ldc) {
  float acc[kMR][kNR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] = c[i * ldc + j];
  }
  for (std::int64_t p = 0; p < pb; ++p) {
    const float* a_p = ap + p * kMR;
    const float* b_p = bp + p * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a_p[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += av * b_p[j];
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (std::int64_t j = 0; j < kNR; ++j) c[i * ldc + j] = acc[i][j];
  }
}

#if defined(UCUDNN_GEMM_X86)

__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::int64_t pb, const float* ap, const float* bp, float* c,
    std::int64_t ldc) {
  __m256 acc00 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 acc01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 acc10 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 acc11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  __m256 acc40 = _mm256_loadu_ps(c + 4 * ldc);
  __m256 acc41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  __m256 acc50 = _mm256_loadu_ps(c + 5 * ldc);
  __m256 acc51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  for (std::int64_t p = 0; p < pb; ++p) {
    const float* a_p = ap + p * kMR;
    const float* b_p = bp + p * kNR;
    const __m256 b0 = _mm256_loadu_ps(b_p);
    const __m256 b1 = _mm256_loadu_ps(b_p + 8);
    __m256 av = _mm256_broadcast_ss(a_p + 0);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(a_p + 1);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(a_p + 2);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(a_p + 3);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
    av = _mm256_broadcast_ss(a_p + 4);
    acc40 = _mm256_fmadd_ps(av, b0, acc40);
    acc41 = _mm256_fmadd_ps(av, b1, acc41);
    av = _mm256_broadcast_ss(a_p + 5);
    acc50 = _mm256_fmadd_ps(av, b0, acc50);
    acc51 = _mm256_fmadd_ps(av, b1, acc51);
  }
  _mm256_storeu_ps(c + 0 * ldc, acc00);
  _mm256_storeu_ps(c + 0 * ldc + 8, acc01);
  _mm256_storeu_ps(c + 1 * ldc, acc10);
  _mm256_storeu_ps(c + 1 * ldc + 8, acc11);
  _mm256_storeu_ps(c + 2 * ldc, acc20);
  _mm256_storeu_ps(c + 2 * ldc + 8, acc21);
  _mm256_storeu_ps(c + 3 * ldc, acc30);
  _mm256_storeu_ps(c + 3 * ldc + 8, acc31);
  _mm256_storeu_ps(c + 4 * ldc, acc40);
  _mm256_storeu_ps(c + 4 * ldc + 8, acc41);
  _mm256_storeu_ps(c + 5 * ldc, acc50);
  _mm256_storeu_ps(c + 5 * ldc + 8, acc51);
}

#elif defined(UCUDNN_GEMM_NEON)

void micro_kernel_neon(std::int64_t pb, const float* ap, const float* bp,
                       float* c, std::int64_t ldc) {
  float32x4_t acc[kMR][4];
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (int q = 0; q < 4; ++q) acc[i][q] = vld1q_f32(c + i * ldc + 4 * q);
  }
  for (std::int64_t p = 0; p < pb; ++p) {
    const float* a_p = ap + p * kMR;
    const float* b_p = bp + p * kNR;
    float32x4_t b[4];
    for (int q = 0; q < 4; ++q) b[q] = vld1q_f32(b_p + 4 * q);
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float32x4_t av = vdupq_n_f32(a_p[i]);
      for (int q = 0; q < 4; ++q) acc[i][q] = vfmaq_f32(acc[i][q], av, b[q]);
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (int q = 0; q < 4; ++q) vst1q_f32(c + i * ldc + 4 * q, acc[i][q]);
  }
}

#endif

inline void run_micro_kernel(bool vectorized, std::int64_t pb, const float* ap,
                             const float* bp, float* c, std::int64_t ldc) {
#if defined(UCUDNN_GEMM_X86)
  if (vectorized) return micro_kernel_avx2(pb, ap, bp, c, ldc);
#elif defined(UCUDNN_GEMM_NEON)
  if (vectorized) return micro_kernel_neon(pb, ap, bp, c, ldc);
#else
  (void)vectorized;
#endif
  micro_kernel_scalar(pb, ap, bp, c, ldc);
}

void scale_rows(float* c, std::int64_t ldc, std::int64_t rows,
                std::int64_t cols, float beta) {
  if (beta == 1.0f) return;
  for (std::int64_t i = 0; i < rows; ++i) {
    float* c_row = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + cols, 0.0f);
    } else {
      for (std::int64_t j = 0; j < cols; ++j) c_row[j] *= beta;
    }
  }
}

// Computes C[i0:i1, j0:j1] = alpha * op(A) * op(B) + beta * C over the full k
// range. Each caller (one parallel_for chunk) owns a disjoint C rectangle, so
// ranges never race; packing buffers are chunk-local. alpha is folded into the
// packed A panel, beta is applied to the rectangle once up front.
void gemm_range(Trans trans_a, Trans trans_b, std::int64_t i0, std::int64_t i1,
                std::int64_t j0, std::int64_t j1, std::int64_t k, float alpha,
                const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  scale_rows(c + i0 * ldc + j0, ldc, i1 - i0, j1 - j0, beta);

  const bool vec = simd::vectorized();
  std::vector<float> a_pack(static_cast<std::size_t>(kMC * kKC));
  std::vector<float> b_pack(static_cast<std::size_t>(
      kKC * std::min<std::int64_t>(kNC, round_up(j1 - j0, kNR))));
  alignas(64) float tile[kMR * kNR];

  for (std::int64_t jj0 = j0; jj0 < j1; jj0 += kNC) {
    const std::int64_t jb = std::min(kNC, j1 - jj0);
    const std::int64_t j_strips = ceil_div(jb, kNR);
    for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
      const std::int64_t pb = std::min(kKC, k - p0);
      // Pack op(B)[p0:p0+pb, jj0:jj0+jb] into kNR-column strips.
      for (std::int64_t js = 0; js < j_strips; ++js) {
        float* strip = b_pack.data() + js * pb * kNR;
        const std::int64_t jw = std::min(kNR, jb - js * kNR);
        if (trans_b == Trans::kNo && jw == kNR) {
          for (std::int64_t p = 0; p < pb; ++p) {
            std::memcpy(strip + p * kNR,
                        b + (p0 + p) * ldb + jj0 + js * kNR,
                        kNR * sizeof(float));
          }
        } else {
          for (std::int64_t p = 0; p < pb; ++p) {
            float* dst = strip + p * kNR;
            for (std::int64_t j = 0; j < jw; ++j) {
              dst[j] = load_b(trans_b, b, ldb, p0 + p, jj0 + js * kNR + j);
            }
            for (std::int64_t j = jw; j < kNR; ++j) dst[j] = 0.0f;
          }
        }
      }
      for (std::int64_t ii0 = i0; ii0 < i1; ii0 += kMC) {
        const std::int64_t ib = std::min(kMC, i1 - ii0);
        const std::int64_t i_strips = ceil_div(ib, kMR);
        // Pack alpha * op(A)[ii0:ii0+ib, p0:p0+pb] into kMR-row strips.
        for (std::int64_t is = 0; is < i_strips; ++is) {
          float* strip = a_pack.data() + is * pb * kMR;
          const std::int64_t iw = std::min(kMR, ib - is * kMR);
          for (std::int64_t p = 0; p < pb; ++p) {
            float* dst = strip + p * kMR;
            for (std::int64_t i = 0; i < iw; ++i) {
              dst[i] =
                  alpha * load_a(trans_a, a, lda, ii0 + is * kMR + i, p0 + p);
            }
            for (std::int64_t i = iw; i < kMR; ++i) dst[i] = 0.0f;
          }
        }
        for (std::int64_t js = 0; js < j_strips; ++js) {
          const float* bs = b_pack.data() + js * pb * kNR;
          const std::int64_t jw = std::min(kNR, jb - js * kNR);
          for (std::int64_t is = 0; is < i_strips; ++is) {
            const float* as = a_pack.data() + is * pb * kMR;
            const std::int64_t iw = std::min(kMR, ib - is * kMR);
            float* c_tile = c + (ii0 + is * kMR) * ldc + jj0 + js * kNR;
            if (iw == kMR && jw == kNR) {
              run_micro_kernel(vec, pb, as, bs, c_tile, ldc);
            } else {
              // Edge tile: compute into a private full-size tile, then
              // accumulate only the valid region into C.
              std::fill(tile, tile + kMR * kNR, 0.0f);
              run_micro_kernel(vec, pb, as, bs, tile, kNR);
              for (std::int64_t i = 0; i < iw; ++i) {
                float* c_row = c_tile + i * ldc;
                const float* t_row = tile + i * kNR;
                for (std::int64_t j = 0; j < jw; ++j) c_row[j] += t_row[j];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

void sgemm_naive(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, std::int64_t lda,
                 const float* b, std::int64_t ldb, float beta, float* c,
                 std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(load_a(trans_a, a, lda, i, p)) *
               load_b(trans_b, b, ldb, p, j);
      }
      c[i * ldc + j] = static_cast<float>(alpha * acc) +
                       (beta == 0.0f ? 0.0f : beta * c[i * ldc + j]);
    }
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0f) {
    // Nothing to accumulate: C = beta * C without touching A or B.
    scale_rows(c, ldc, m, n, beta);
    return;
  }
  // Split the larger C dimension across threads; each chunk computes a
  // disjoint rectangle (packing the shared matrix redundantly, which is noise
  // next to the O(m*n*k) compute).
  if (n >= m) {
    ThreadPool::global().parallel_for(
        n,
        [&](std::int64_t jb0, std::int64_t jb1, std::size_t) {
          gemm_range(trans_a, trans_b, 0, m, jb0, jb1, k, alpha, a, lda, b,
                     ldb, beta, c, ldc);
        },
        /*min_chunk=*/64);
  } else {
    ThreadPool::global().parallel_for(
        m,
        [&](std::int64_t ib0, std::int64_t ib1, std::size_t) {
          gemm_range(trans_a, trans_b, ib0, ib1, 0, n, k, alpha, a, lda, b,
                     ldb, beta, c, ldc);
        },
        /*min_chunk=*/16);
  }
}

void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, const float* b,
           float beta, float* c) {
  const std::int64_t lda = trans_a == Trans::kNo ? k : m;
  const std::int64_t ldb = trans_b == Trans::kNo ? n : k;
  sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

}  // namespace ucudnn::gemm
