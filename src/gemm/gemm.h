// Single-precision GEMM substrate (row-major) used by the GEMM-based
// convolution algorithms and the frameworks' fully-connected layers.
//
// C = alpha * op(A) * op(B) + beta * C, where op is identity or transpose.
// `sgemm` is cache-blocked and thread-parallel; `sgemm_naive` is the
// reference implementation used for validation.
#pragma once

#include <cstdint>

namespace ucudnn::gemm {

enum class Trans { kNo, kYes };

/// Reference triple loop. Row-major with leading dimensions:
/// op(A) is M x K, op(B) is K x N, C is M x N with leading dimension ldc.
void sgemm_naive(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, std::int64_t lda,
                 const float* b, std::int64_t ldb, float beta, float* c,
                 std::int64_t ldc);

/// Cache-blocked, thread-parallel GEMM with identical semantics.
void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// Convenience overload with tight leading dimensions
/// (lda = op-a columns, ldb = op-b columns, ldc = n).
void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, const float* b,
           float beta, float* c);

}  // namespace ucudnn::gemm
