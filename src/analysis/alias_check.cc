#include "analysis/alias_check.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace ucudnn::analysis {

bool spans_overlap(const MemSpan& a, const MemSpan& b) noexcept {
  if (a.ptr == nullptr || b.ptr == nullptr) return false;
  if (a.bytes == 0 || b.bytes == 0) return false;
  const auto a_begin = reinterpret_cast<std::uintptr_t>(a.ptr);
  const auto b_begin = reinterpret_cast<std::uintptr_t>(b.ptr);
  return a_begin < b_begin + b.bytes && b_begin < a_begin + a.bytes;
}

void check_disjoint(const std::vector<MemSpan>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      if (!spans_overlap(spans[i], spans[j])) continue;
      const auto i_begin = reinterpret_cast<std::uintptr_t>(spans[i].ptr);
      const auto j_begin = reinterpret_cast<std::uintptr_t>(spans[j].ptr);
      const std::uintptr_t overlap =
          std::min(i_begin + spans[i].bytes, j_begin + spans[j].bytes) -
          std::max(i_begin, j_begin);
      throw Error(Status::kInternalError,
                  "alias audit: span '" + std::string(spans[i].name) + "' (" +
                      std::to_string(spans[i].bytes) + " B) overlaps span '" +
                      std::string(spans[j].name) + "' (" +
                      std::to_string(spans[j].bytes) + " B) by " +
                      std::to_string(static_cast<std::size_t>(overlap)) +
                      " bytes; micro-batch beta-accumulation requires "
                      "disjoint buffers");
    }
  }
}

}  // namespace ucudnn::analysis
