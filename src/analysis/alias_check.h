// Buffer aliasing/overlap checker for the micro-batch execution path.
//
// BackwardFilter accumulates dw across micro-batches with beta=1 (the output
// scale trick, §III-A of the paper), so a workspace that aliases an operand
// or the accumulator silently corrupts gradients. Under the workspace audit
// the WR/WD execution path verifies all live spans are pairwise disjoint
// before every micro-batched convolution.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace ucudnn::analysis {

/// One live device span: half-open byte range [ptr, ptr + bytes).
struct MemSpan {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  std::string_view name;  ///< role in diagnostics, e.g. "workspace", "dw"
};

/// True iff the two spans share at least one byte (empty/null spans never
/// overlap anything).
bool spans_overlap(const MemSpan& a, const MemSpan& b) noexcept;

/// Verifies all spans are pairwise disjoint. Throws Error(kInternalError)
/// naming both offending spans and the size of the overlap.
void check_disjoint(const std::vector<MemSpan>& spans);

}  // namespace ucudnn::analysis
