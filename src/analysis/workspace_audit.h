// Debug-mode workspace-contract auditor (enabled via UCUDNN_AUDIT_WORKSPACE).
//
// The whole μ-cuDNN optimization rests on one contract: an algorithm's
// declared workspace size (kernels::algo_workspace) is what its execution
// actually touches. The WR dynamic program and the WD ILP both optimize over
// those declarations, and cuDNN's one-byte-short fallback cliff (Fig. 1 of
// the paper) shows how silently wrong things go when the accounting is off.
//
// When auditing is enabled, kernels::execute routes every workspace through
// an AuditedBuffer: a fresh allocation of exactly the DECLARED size, bracketed
// by poisoned red-zones and pre-filled with an interior poison pattern. On
// kernel return the red-zones are verified byte-by-byte — a kernel that
// overruns its buffer or under-declares its requirement fails loudly with
// Status::kInternalError naming the kernel and the offending byte offset —
// and the interior poison high-water mark records how many bytes the kernel
// actually touched, aggregated per kernel in a process-wide registry.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "common/aligned_buffer.h"

namespace ucudnn::analysis {

/// Red-zone width on each side of the audited span. A multiple of
/// kBufferAlignment so the interior keeps the allocator's alignment.
inline constexpr std::size_t kRedzoneBytes = kBufferAlignment;

/// Poison byte written into both red-zones.
inline constexpr unsigned char kRedzonePoison = 0xA5;

/// Poison byte pre-filling the audited interior (high-water tracking).
inline constexpr unsigned char kInteriorPoison = 0xC3;

/// Whether workspace auditing is on. Reads UCUDNN_AUDIT_WORKSPACE once on
/// first use; set_workspace_audit_enabled overrides it (tests, tools).
bool workspace_audit_enabled();
void set_workspace_audit_enabled(bool enabled);

/// Pushes a label onto the calling thread's audit-context stack; diagnostics
/// and high-water records are attributed "ctx1/ctx2/kernel". Lets the
/// benchmarker and the WR/WD execution paths tell apart violations of the
/// same kernel.
class ScopedAuditContext {
 public:
  explicit ScopedAuditContext(std::string label);
  ~ScopedAuditContext();
  ScopedAuditContext(const ScopedAuditContext&) = delete;
  ScopedAuditContext& operator=(const ScopedAuditContext&) = delete;
};

/// The calling thread's joined context stack ("" when empty).
std::string current_audit_context();

/// A workspace span instrumented with red-zones and interior poison.
class AuditedBuffer {
 public:
  /// Allocates `declared_bytes` of workspace plus both red-zones and poisons
  /// everything. `kernel` names the algorithm in diagnostics.
  AuditedBuffer(std::size_t declared_bytes, std::string kernel);

  /// The audited workspace span handed to the kernel. Non-null even for a
  /// zero-byte declaration: a kernel that writes despite declaring nothing
  /// lands in the trailing red-zone instead of dereferencing null.
  void* data() noexcept { return interior(); }
  std::size_t size() const noexcept { return declared_; }

  /// Verifies both red-zones. Throws Error(kInternalError) naming the kernel
  /// and the byte offset relative to the declared span on any violation
  /// (negative offset = underrun before the span, offset >= declared =
  /// overrun / under-declaration past it).
  void verify() const;

  /// High-water mark: bytes from the span start through the last byte whose
  /// interior poison was overwritten. (A kernel storing the poison byte
  /// itself can under-count — acceptable for a debug-mode watermark.)
  std::size_t touched_bytes() const noexcept;

 private:
  unsigned char* interior() noexcept { return storage_.data() + kRedzoneBytes; }
  const unsigned char* interior() const noexcept {
    return storage_.data() + kRedzoneBytes;
  }

  AlignedBuffer<unsigned char> storage_;
  std::size_t declared_ = 0;
  std::string kernel_;
};

/// Aggregated audit observations of one kernel (keyed by its display name;
/// runs of the same kernel over different problems share an entry, so all
/// fields aggregate across problem shapes).
struct AuditStats {
  std::size_t declared_bytes = 0;   ///< largest declared size seen
  std::size_t max_touched = 0;      ///< high-water over all audited runs
  /// Smallest per-run (declared - touched) gap: 0 means some run used its
  /// whole declaration; a large value across many runs suggests the
  /// declaration over-reserves (per-run touched > declared cannot appear
  /// here — it throws in verify() first).
  std::size_t min_slack = static_cast<std::size_t>(-1);
  std::size_t runs = 0;             ///< audited executions
};

/// Records one audited execution in the process-wide registry (thread-safe).
void record_audit(const std::string& kernel, std::size_t declared,
                  std::size_t touched);

/// Snapshot of the registry.
std::map<std::string, AuditStats> audit_report();

/// Clears the registry (tests).
void reset_audit_stats();

/// Logs one INFO line per audited kernel: declared vs touched high-water.
void log_audit_report();

}  // namespace ucudnn::analysis
