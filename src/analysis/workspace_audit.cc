#include "analysis/workspace_audit.h"

#include <atomic>
#include <cstring>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics.h"

namespace ucudnn::analysis {

namespace {

// -1 = read UCUDNN_AUDIT_WORKSPACE lazily; 0/1 = forced.
std::atomic<int> g_audit_override{-1};

Mutex g_stats_mutex{"analysis.audit_stats"};
std::map<std::string, AuditStats>& stats_registry() REQUIRES(g_stats_mutex) {
  static std::map<std::string, AuditStats> registry;
  return registry;
}

thread_local std::vector<std::string> t_context_stack;

}  // namespace

bool workspace_audit_enabled() {
  const int forced = g_audit_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = env_bool("UCUDNN_AUDIT_WORKSPACE", false);
  return from_env;
}

void set_workspace_audit_enabled(bool enabled) {
  g_audit_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

ScopedAuditContext::ScopedAuditContext(std::string label) {
  t_context_stack.push_back(std::move(label));
}

ScopedAuditContext::~ScopedAuditContext() { t_context_stack.pop_back(); }

std::string current_audit_context() {
  std::string joined;
  for (const std::string& label : t_context_stack) {
    if (!joined.empty()) joined += "/";
    joined += label;
  }
  return joined;
}

AuditedBuffer::AuditedBuffer(std::size_t declared_bytes, std::string kernel)
    : storage_(declared_bytes + 2 * kRedzoneBytes),
      declared_(declared_bytes),
      kernel_(std::move(kernel)) {
  std::memset(storage_.data(), kRedzonePoison, kRedzoneBytes);
  std::memset(interior(), kInteriorPoison, declared_);
  std::memset(interior() + declared_, kRedzonePoison, kRedzoneBytes);
}

void AuditedBuffer::verify() const {
  const unsigned char* front = storage_.data();
  const unsigned char* back = interior() + declared_;
  for (std::size_t i = 0; i < kRedzoneBytes; ++i) {
    // Scan the trailing zone first: overruns (under-declared workspace) are
    // by far the common failure, and the smallest offset is the most useful.
    if (back[i] != kRedzonePoison) {
      std::string context = current_audit_context();
      throw Error(Status::kInternalError,
                  "workspace audit: kernel " +
                      (context.empty() ? kernel_ : context + "/" + kernel_) +
                      " wrote past its declared workspace of " +
                      std::to_string(declared_) + " bytes (red-zone hit at " +
                      "byte offset " + std::to_string(declared_ + i) +
                      "): under-declared workspace_size() or buffer overrun");
    }
  }
  for (std::size_t i = 0; i < kRedzoneBytes; ++i) {
    if (front[i] != kRedzonePoison) {
      std::string context = current_audit_context();
      throw Error(Status::kInternalError,
                  "workspace audit: kernel " +
                      (context.empty() ? kernel_ : context + "/" + kernel_) +
                      " wrote before its workspace (red-zone hit at byte "
                      "offset -" +
                      std::to_string(kRedzoneBytes - i) + ")");
    }
  }
}

std::size_t AuditedBuffer::touched_bytes() const noexcept {
  const unsigned char* span = interior();
  for (std::size_t i = declared_; i > 0; --i) {
    if (span[i - 1] != kInteriorPoison) return i;
  }
  return 0;
}

void record_audit(const std::string& kernel, std::size_t declared,
                  std::size_t touched) {
  const MutexLock lock(g_stats_mutex);
  AuditStats& stats = stats_registry()[kernel];
  if (declared > stats.declared_bytes) stats.declared_bytes = declared;
  if (touched > stats.max_touched) stats.max_touched = touched;
  const std::size_t slack = declared >= touched ? declared - touched : 0;
  if (slack < stats.min_slack) stats.min_slack = slack;
  ++stats.runs;
  if (stats.declared_bytes > 0) {
    // Utilization high-water in percent, mirrored into execution reports.
    telemetry::MetricsRegistry::instance()
        .gauge("ucudnn.audit.ws_utilization." + kernel)
        .set(static_cast<std::int64_t>(100 * stats.max_touched /
                                       stats.declared_bytes));
  }
}

std::map<std::string, AuditStats> audit_report() {
  const MutexLock lock(g_stats_mutex);
  return stats_registry();
}

void reset_audit_stats() {
  const MutexLock lock(g_stats_mutex);
  stats_registry().clear();
}

void log_audit_report() {
  for (const auto& [kernel, stats] : audit_report()) {
    UCUDNN_LOG_INFO << "workspace audit: " << kernel << " declared up to "
                    << stats.declared_bytes << " B, touched high-water "
                    << stats.max_touched << " B, min slack " << stats.min_slack
                    << " B over " << stats.runs << " run(s)";
  }
}

}  // namespace ucudnn::analysis
