// 0-1 ILP via depth-first branch-and-bound over simplex relaxations.
#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "ilp/ilp.h"

namespace ucudnn::ilp {

namespace {

constexpr double kIntEps = 1e-6;

struct Node {
  std::vector<int> fixed;  // -1 free, 0/1 fixed
};

// LP with x <= 1 rows for free vars and x = v rows for fixed vars.
LinearProgram relax(const LinearProgram& base, const std::vector<int>& fixed) {
  LinearProgram lp = base;
  const std::size_t n = base.num_vars();
  for (std::size_t i = 0; i < n; ++i) {
    Constraint con;
    con.coeffs.assign(n, 0.0);
    con.coeffs[i] = 1.0;
    if (fixed[i] < 0) {
      con.relation = Relation::kLessEqual;
      con.rhs = 1.0;
    } else {
      con.relation = Relation::kEqual;
      con.rhs = static_cast<double>(fixed[i]);
    }
    lp.constraints.push_back(std::move(con));
  }
  return lp;
}

}  // namespace

IlpResult solve_binary_ilp(const LinearProgram& lp, const IlpOptions& options) {
  const std::size_t n = lp.num_vars();
  IlpResult best;
  best.objective = std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(Node{std::vector<int>(n, -1)});

  while (!stack.empty() && best.nodes_explored < options.max_nodes) {
    Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;

    const LpResult relaxed = solve_lp(relax(lp, node.fixed));
    if (!relaxed.feasible || relaxed.unbounded) continue;
    if (relaxed.objective >= best.objective - 1e-9) continue;  // bound

    // Most fractional free variable.
    std::size_t branch_var = n;
    double worst_frac = kIntEps;
    for (std::size_t i = 0; i < n; ++i) {
      const double frac = std::abs(relaxed.x[i] - std::round(relaxed.x[i]));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = i;
      }
    }

    if (branch_var == n) {
      // Integral: new incumbent.
      best.feasible = true;
      best.objective = relaxed.objective;
      best.x.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        best.x[i] = static_cast<int>(std::round(relaxed.x[i]));
      }
      continue;
    }

    // Explore the rounded side first (DFS: pushed last, popped first).
    const int preferred = relaxed.x[branch_var] >= 0.5 ? 1 : 0;
    Node other = node;
    other.fixed[branch_var] = 1 - preferred;
    stack.push_back(std::move(other));
    node.fixed[branch_var] = preferred;
    stack.push_back(std::move(node));
  }

  if (!best.feasible) best.objective = 0.0;
  return best;
}

LinearProgram mckp_to_ilp(const MckpProblem& problem) {
  std::size_t n = 0;
  for (const auto& group : problem.groups) n += group.size();

  LinearProgram lp;
  lp.objective.reserve(n);
  for (const auto& group : problem.groups) {
    for (const auto& item : group) lp.objective.push_back(item.cost);
  }

  // Budget row: sum of weights <= capacity.
  Constraint budget;
  budget.coeffs.reserve(n);
  for (const auto& group : problem.groups) {
    for (const auto& item : group) {
      budget.coeffs.push_back(static_cast<double>(item.weight));
    }
  }
  budget.relation = Relation::kLessEqual;
  budget.rhs = static_cast<double>(problem.capacity);
  lp.constraints.push_back(std::move(budget));

  // Exactly-one rows.
  std::size_t offset = 0;
  for (const auto& group : problem.groups) {
    Constraint pick;
    pick.coeffs.assign(n, 0.0);
    for (std::size_t i = 0; i < group.size(); ++i) pick.coeffs[offset + i] = 1.0;
    pick.relation = Relation::kEqual;
    pick.rhs = 1.0;
    lp.constraints.push_back(std::move(pick));
    offset += group.size();
  }
  return lp;
}

}  // namespace ucudnn::ilp
