#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "ilp/ilp.h"

namespace ucudnn::ilp {

namespace {

constexpr double kEps = 1e-9;

// Dense tableau simplex. Rows 0..m-1 are constraints; row m is the objective
// (reduced costs, minimization). Bland's rule prevents cycling.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) /= pivot_value;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c < cols_; ++c) at(r, c) -= factor * at(pr, c);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

struct StandardForm {
  Tableau tab;
  std::vector<std::size_t> basis;  // basic variable of each constraint row
  std::size_t num_structural;      // original variables
  std::size_t num_total;           // structural + slack/surplus + artificial
  std::vector<std::size_t> artificials;
};

// Builds the phase-1 tableau: slacks for <=, surplus+artificial for >=,
// artificial for =; RHS made non-negative.
StandardForm build(const LinearProgram& lp) {
  const std::size_t n = lp.num_vars();
  const std::size_t m = lp.constraints.size();

  // Count extra columns.
  std::size_t slacks = 0, artificials = 0;
  for (const auto& con : lp.constraints) {
    const bool flip = con.rhs < 0;
    Relation rel = con.relation;
    if (flip) {
      rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    if (rel != Relation::kEqual) ++slacks;
    if (rel != Relation::kLessEqual) ++artificials;
  }
  const std::size_t total = n + slacks + artificials;

  StandardForm sf{Tableau(m + 1, total + 1), {}, n, total, {}};
  sf.basis.resize(m);

  std::size_t slack_col = n;
  std::size_t art_col = n + slacks;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& con = lp.constraints[r];
    check_param(con.coeffs.size() == n, "constraint arity mismatch");
    const bool flip = con.rhs < 0;
    const double sign = flip ? -1.0 : 1.0;
    Relation rel = con.relation;
    if (flip) {
      rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    for (std::size_t c = 0; c < n; ++c) sf.tab.at(r, c) = sign * con.coeffs[c];
    sf.tab.at(r, total) = sign * con.rhs;

    if (rel == Relation::kLessEqual) {
      sf.tab.at(r, slack_col) = 1.0;
      sf.basis[r] = slack_col++;
    } else if (rel == Relation::kGreaterEqual) {
      sf.tab.at(r, slack_col) = -1.0;
      ++slack_col;
      sf.tab.at(r, art_col) = 1.0;
      sf.basis[r] = art_col;
      sf.artificials.push_back(art_col++);
    } else {
      sf.tab.at(r, art_col) = 1.0;
      sf.basis[r] = art_col;
      sf.artificials.push_back(art_col++);
    }
  }
  return sf;
}

// Runs simplex iterations on the current objective row (row m).
// Returns false if unbounded.
bool iterate(StandardForm& sf) {
  const std::size_t m = sf.basis.size();
  const std::size_t rhs = sf.num_total;
  for (;;) {
    // Entering variable: Bland's rule — smallest index with negative reduced
    // cost.
    std::size_t entering = sf.num_total;
    for (std::size_t c = 0; c < sf.num_total; ++c) {
      if (sf.tab.at(m, c) < -kEps) {
        entering = c;
        break;
      }
    }
    if (entering == sf.num_total) return true;  // optimal

    // Leaving variable: minimum ratio, ties by smallest basis index (Bland).
    std::size_t leaving = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = sf.tab.at(r, entering);
      if (a > kEps) {
        const double ratio = sf.tab.at(r, rhs) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == m || sf.basis[r] < sf.basis[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
    }
    if (leaving == m) return false;  // unbounded

    sf.tab.pivot(leaving, entering);
    sf.basis[leaving] = entering;
  }
}

// Rebuilds the objective row for the given costs (phase switch): sets row m
// to c, then eliminates the basic columns.
void set_objective(StandardForm& sf, const std::vector<double>& costs) {
  const std::size_t m = sf.basis.size();
  for (std::size_t c = 0; c <= sf.num_total; ++c) sf.tab.at(m, c) = 0.0;
  for (std::size_t c = 0; c < costs.size(); ++c) sf.tab.at(m, c) = costs[c];
  for (std::size_t r = 0; r < m; ++r) {
    const double coeff = sf.tab.at(m, sf.basis[r]);
    if (std::abs(coeff) < kEps) continue;
    for (std::size_t c = 0; c <= sf.num_total; ++c) {
      sf.tab.at(m, c) -= coeff * sf.tab.at(r, c);
    }
  }
}

}  // namespace

LpResult solve_lp(const LinearProgram& lp) {
  LpResult result;
  StandardForm sf = build(lp);
  const std::size_t m = sf.basis.size();

  // Phase 1: minimize sum of artificials.
  if (!sf.artificials.empty()) {
    std::vector<double> phase1(sf.num_total, 0.0);
    for (std::size_t a : sf.artificials) phase1[a] = 1.0;
    set_objective(sf, phase1);
    if (!iterate(sf)) {
      result.unbounded = true;  // cannot happen for phase 1, defensive
      return result;
    }
    const double art_sum = -sf.tab.at(m, sf.num_total);
    if (art_sum > 1e-7) {
      return result;  // infeasible
    }
    // Drive any lingering artificial out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      const bool is_art =
          std::find(sf.artificials.begin(), sf.artificials.end(),
                    sf.basis[r]) != sf.artificials.end();
      if (!is_art) continue;
      for (std::size_t c = 0; c < sf.num_structural; ++c) {
        if (std::abs(sf.tab.at(r, c)) > kEps) {
          sf.tab.pivot(r, c);
          sf.basis[r] = c;
          break;
        }
      }
    }
  }

  // Phase 2: original objective.
  std::vector<double> costs(sf.num_total, 0.0);
  for (std::size_t c = 0; c < lp.num_vars(); ++c) costs[c] = lp.objective[c];
  // Forbid artificial re-entry.
  for (std::size_t a : sf.artificials) costs[a] = 1e30;
  set_objective(sf, costs);
  if (!iterate(sf)) {
    result.unbounded = true;
    return result;
  }

  result.feasible = true;
  result.x.assign(lp.num_vars(), 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (sf.basis[r] < lp.num_vars()) {
      result.x[sf.basis[r]] = sf.tab.at(r, sf.num_total);
    }
  }
  result.objective = 0.0;
  for (std::size_t c = 0; c < lp.num_vars(); ++c) {
    result.objective += lp.objective[c] * result.x[c];
  }
  return result;
}

}  // namespace ucudnn::ilp
