// LP/ILP substrate replacing GLPK (see DESIGN.md §2).
//
// Three solvers, cross-validated in tests:
//  * solve_lp         — dense two-phase primal simplex over
//                       min cᵀx, Ax {<=,=,>=} b, x >= 0.
//  * solve_binary_ilp — depth-first branch-and-bound on the LP relaxation
//                       for x ∈ {0,1}ⁿ problems.
//  * solve_mckp       — exact (bucketed-weight) dynamic program for the
//                       multiple-choice knapsack form the WD optimizer emits:
//                       min Σ cost, one item per group, Σ weight ≤ capacity.
#pragma once

#include <cstdint>
#include <vector>

namespace ucudnn::ilp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coeffs;  // one per variable (dense)
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// min objectiveᵀ x subject to constraints, x >= 0.
struct LinearProgram {
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  std::size_t num_vars() const noexcept { return objective.size(); }
};

struct LpResult {
  bool feasible = false;
  bool unbounded = false;
  double objective = 0.0;
  std::vector<double> x;
};

/// Two-phase primal simplex (Bland's rule; immune to cycling).
LpResult solve_lp(const LinearProgram& lp);

struct IlpOptions {
  std::int64_t max_nodes = 1'000'000;  // branch-and-bound node budget
};

struct IlpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<int> x;            // 0/1 assignment
  std::int64_t nodes_explored = 0;
};

/// Exact 0-1 ILP via branch-and-bound with simplex relaxations. Variables
/// are implicitly bounded by x <= 1 (enforced with added constraints).
IlpResult solve_binary_ilp(const LinearProgram& lp, const IlpOptions& options = {});

// ------------------------- multiple-choice knapsack -------------------------

struct MckpItem {
  double cost = 0.0;        // execution time
  std::int64_t weight = 0;  // workspace bytes
};

struct MckpProblem {
  std::vector<std::vector<MckpItem>> groups;  // pick exactly one per group
  std::int64_t capacity = 0;
};

struct MckpResult {
  bool feasible = false;
  double cost = 0.0;
  std::vector<int> selection;  // chosen item index per group
};

/// Exact DP over a weight grid. `buckets` bounds the DP table width; weights
/// are rounded UP to bucket granularity, so the returned selection is always
/// feasible for the true capacity (and optimal when the grid resolves all
/// weights exactly, e.g. whenever capacity <= buckets).
MckpResult solve_mckp(const MckpProblem& problem, std::int64_t buckets = 1 << 16);

/// Builds the equivalent 0-1 ILP (used for cross-validation and as the
/// GLPK-style solve path): variables are the flattened group items.
LinearProgram mckp_to_ilp(const MckpProblem& problem);

}  // namespace ucudnn::ilp
