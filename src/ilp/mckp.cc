// Exact multiple-choice knapsack DP: the default WD solve path.
//
// Weights are rounded UP to a bucket grid of at most `buckets` cells, so a
// returned selection is always feasible for the true capacity; when the
// capacity fits the grid exactly (capacity <= buckets) the optimum is exact.
#include <algorithm>
#include <cmath>
#include <limits>

#include "common/mathutil.h"
#include "common/status.h"
#include "ilp/ilp.h"

namespace ucudnn::ilp {

MckpResult solve_mckp(const MckpProblem& problem, std::int64_t buckets) {
  MckpResult result;
  const std::size_t groups = problem.groups.size();
  if (groups == 0) {
    result.feasible = true;
    return result;
  }
  check_param(problem.capacity >= 0, "negative knapsack capacity");
  check_param(buckets >= 1, "need at least one weight bucket");

  // Bucket scale: ceil so that bucketed feasibility implies true feasibility.
  const std::int64_t scale =
      problem.capacity <= buckets ? 1 : ceil_div(problem.capacity, buckets);
  const std::int64_t cap_b = problem.capacity / scale;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t width = static_cast<std::size_t>(cap_b) + 1;

  std::vector<double> dp(width, kInf);
  std::vector<double> next(width, kInf);
  dp[0] = 0.0;

  // choice[g][w]: item index used to reach exact bucketed weight w after
  // group g (-1 = unreachable).
  std::vector<std::vector<std::int16_t>> choice(
      groups, std::vector<std::int16_t>(width, -1));

  for (std::size_t g = 0; g < groups; ++g) {
    const auto& group = problem.groups[g];
    check_param(!group.empty(), "empty MCKP group");
    check_param(group.size() <= 32767, "MCKP group too large");
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t item = 0; item < group.size(); ++item) {
      check_param(group[item].weight >= 0, "negative item weight");
      const std::int64_t wb = ceil_div(group[item].weight, scale);
      if (wb > cap_b) continue;
      const double cost = group[item].cost;
      for (std::int64_t w = 0; w + wb <= cap_b; ++w) {
        const double base = dp[static_cast<std::size_t>(w)];
        if (base == kInf) continue;
        const std::size_t dest = static_cast<std::size_t>(w + wb);
        if (base + cost < next[dest]) {
          next[dest] = base + cost;
          choice[g][dest] = static_cast<std::int16_t>(item);
        }
      }
    }
    dp.swap(next);
  }

  // Best reachable final weight.
  std::size_t best_w = width;
  double best_cost = kInf;
  for (std::size_t w = 0; w < width; ++w) {
    if (dp[w] < best_cost) {
      best_cost = dp[w];
      best_w = w;
    }
  }
  if (best_w == width) return result;  // infeasible

  // Reconstruct the selection by walking groups backwards.
  result.feasible = true;
  result.cost = best_cost;
  result.selection.assign(groups, -1);
  std::size_t w = best_w;
  for (std::size_t g = groups; g-- > 0;) {
    const int item = choice[g][w];
    check(item >= 0, Status::kInternalError, "MCKP reconstruction failed");
    result.selection[g] = item;
    const std::int64_t wb =
        ceil_div(problem.groups[g][static_cast<std::size_t>(item)].weight,
                 scale);
    w -= static_cast<std::size_t>(wb);
  }
  return result;
}

}  // namespace ucudnn::ilp
