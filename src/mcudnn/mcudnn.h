// mcudnn — the cuDNN substitute this reproduction is built on.
//
// Mirrors the cuDNN 7 convolution API surface: an opaque handle bound to one
// device, descriptor-driven convolution calls with alpha/beta scaling,
// workspace-size queries, a Get*Algorithm heuristic with the infamous
// fall-back-to-slower-algorithm-when-one-byte-short semantics (Fig. 1 of the
// paper), and a Find*Algorithm benchmarking entry point that returns a
// performance-sorted list of all algorithms.
//
// Execution modes:
//  * kNumeric — kernels really run (host CPU). On a simulated device the
//    virtual clock additionally advances by the modeled time.
//  * kVirtual — kernels are not executed; only the virtual clock advances.
//    Data pointers may be null. This is how network-scale paper figures are
//    regenerated in milliseconds.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "device/device.h"
#include "kernels/conv_problem.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

namespace ucudnn::mcudnn {

enum class ExecMode { kNumeric, kVirtual };

/// cudnnConvolutionFwdPreference_t equivalent.
enum class AlgoPreference {
  kNoWorkspace,
  kPreferFastest,
  kSpecifyWorkspaceLimit,
};

/// cudnnConvolution*AlgoPerf_t equivalent.
struct AlgoPerf {
  int algo = -1;
  Status status = Status::kNotSupported;
  double time_ms = -1.0;  // modeled (simulated device) or measured (host CPU)
  std::size_t memory = 0; // required workspace bytes
};

/// mcudnnHandle_t equivalent: bound to one device, carries the exec mode.
class Handle {
 public:
  /// Defaults to a fresh host-CPU device in numeric mode.
  Handle();
  explicit Handle(std::shared_ptr<device::Device> dev);
  Handle(std::shared_ptr<device::Device> dev, ExecMode mode);

  device::Device& device() const noexcept { return *device_; }
  const std::shared_ptr<device::Device>& device_ptr() const noexcept {
    return device_;
  }

  ExecMode exec_mode() const noexcept { return mode_; }
  void set_exec_mode(ExecMode mode) noexcept { mode_ = mode; }

  /// cudnnSetStream equivalent: Virtual-mode kernels advance this stream's
  /// clock, so kernels on different streams overlap in modeled time.
  int stream() const noexcept { return stream_; }
  void set_stream(int stream) noexcept { stream_ = stream; }

 private:
  std::shared_ptr<device::Device> device_;
  ExecMode mode_;
  int stream_ = 0;
};

/// Assembles and validates a ConvProblem from cuDNN-style descriptors.
/// Descriptor roles per kernel type (matching the cuDNN signatures):
///   Forward:        in = x,  out = y   (problem.x = in,  problem.y = out)
///   BackwardData:   in = dy, out = dx  (problem.x = out, problem.y = in)
///   BackwardFilter: in = x,  out = dy  (problem.x = in,  problem.y = out)
/// Throws Error(kBadParam) on inconsistent shapes.
kernels::ConvProblem make_problem(ConvKernelType type, const TensorDesc& in,
                                  const FilterDesc& w, const ConvGeometry& conv,
                                  const TensorDesc& out);

/// cudnnGetConvolution*WorkspaceSize: exact requirement of one algorithm.
/// Throws Error(kNotSupported) if the algorithm cannot run this problem.
std::size_t workspace_size(const Handle& handle, ConvKernelType type,
                           const kernels::ConvProblem& p, int algo);

/// cudnnFindConvolution*Algorithm: evaluates every algorithm (modeled time on
/// simulated devices, wall-clock on the host CPU) and returns results sorted
/// fastest-first; unsupported algorithms trail with kNotSupported status.
std::vector<AlgoPerf> find_algorithms(const Handle& handle, ConvKernelType type,
                                      const kernels::ConvProblem& p);

/// cudnnFindConvolution*AlgorithmEx: like find_algorithms, but measured
/// runs use CALLER-provided operand and workspace buffers (and therefore
/// leave real results in `out`, like the cuDNN Ex entry points). Only
/// algorithms whose workspace fits `workspace_bytes` are evaluated; the
/// rest trail with kAllocFailed status. On simulated devices timing is
/// modeled and the buffers are untouched.
std::vector<AlgoPerf> find_algorithms_ex(const Handle& handle,
                                         ConvKernelType type,
                                         const kernels::ConvProblem& p,
                                         const float* a, const float* b,
                                         float* out, void* workspace,
                                         std::size_t workspace_bytes);

/// cudnnGetConvolution*Algorithm: cheapest algorithm honoring the preference.
/// kSpecifyWorkspaceLimit picks the FASTEST algorithm whose workspace fits
/// `ws_limit` — one byte short of the fastest algorithm's need and you get
/// the next (slower) one, exactly the cliff μ-cuDNN exists to fix.
int get_algorithm(const Handle& handle, ConvKernelType type,
                  const kernels::ConvProblem& p, AlgoPreference preference,
                  std::size_t ws_limit = std::numeric_limits<std::size_t>::max());

/// cudnnConvolution{Forward,BackwardData,BackwardFilter}. Operand roles:
///   Forward:        a = x,  b = w,  out = y
///   BackwardData:   a = dy, b = w,  out = dx
///   BackwardFilter: a = x,  b = dy, out = dw
/// In kVirtual mode data pointers are ignored (may be null) and only the
/// device clock advances.
void convolution(const Handle& handle, ConvKernelType type,
                 const kernels::ConvProblem& p, float alpha, const float* a,
                 const float* b, float beta, float* out, int algo,
                 void* workspace, std::size_t workspace_bytes);

// ---------------------------------------------------------------------------
// cuDNN-shaped Status-returning C-style API (what a framework integrates
// against; μ-cuDNN overloads the same entry points for its wrapper handle).
// ---------------------------------------------------------------------------

[[nodiscard]] Status mcudnnGetConvolutionWorkspaceSize(const Handle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes);

[[nodiscard]] Status mcudnnGetConvolutionAlgorithm(const Handle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     AlgoPreference preference,
                                     std::size_t ws_limit, int* algo);

[[nodiscard]] Status mcudnnFindConvolutionAlgorithm(const Handle& handle, ConvKernelType type,
                                      const TensorDesc& in, const FilterDesc& w,
                                      const ConvGeometry& conv,
                                      const TensorDesc& out,
                                      int requested_count, int* returned_count,
                                      AlgoPerf* results);

[[nodiscard]] Status mcudnnConvolutionForward(const Handle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y);

[[nodiscard]] Status mcudnnConvolutionBackwardData(const Handle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx);

[[nodiscard]] Status mcudnnConvolutionBackwardFilter(const Handle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw);

}  // namespace ucudnn::mcudnn
