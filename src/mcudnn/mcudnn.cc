#include "mcudnn/mcudnn.h"

#include <algorithm>

#include "analysis/workspace_audit.h"
#include "common/aligned_buffer.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "common/timer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ucudnn::mcudnn {

Handle::Handle()
    : device_(std::make_shared<device::Device>(device::host_cpu_spec())),
      mode_(ExecMode::kNumeric) {}

Handle::Handle(std::shared_ptr<device::Device> dev)
    : device_(std::move(dev)),
      mode_(device_->is_simulated() ? ExecMode::kVirtual : ExecMode::kNumeric) {
}

Handle::Handle(std::shared_ptr<device::Device> dev, ExecMode mode)
    : device_(std::move(dev)), mode_(mode) {
  check_param(!(mode_ == ExecMode::kNumeric && false),
              "invalid handle configuration");
}

kernels::ConvProblem make_problem(ConvKernelType type, const TensorDesc& in,
                                  const FilterDesc& w, const ConvGeometry& conv,
                                  const TensorDesc& out) {
  switch (type) {
    case ConvKernelType::kForward:
    case ConvKernelType::kBackwardFilter: {
      const kernels::ConvProblem p(in.shape, w, conv);
      check_param(p.y == out.shape,
                  "output descriptor " + out.shape.to_string() +
                      " does not match convolution output " + p.y.to_string());
      return p;
    }
    case ConvKernelType::kBackwardData: {
      // `out` is dx (the problem's input side), `in` is dy.
      const kernels::ConvProblem p(out.shape, w, conv);
      check_param(p.y == in.shape,
                  "dy descriptor " + in.shape.to_string() +
                      " does not match convolution output " + p.y.to_string());
      return p;
    }
  }
  throw Error(Status::kBadParam, "unknown kernel type");
}

std::size_t workspace_size(const Handle& handle, ConvKernelType type,
                           const kernels::ConvProblem& p, int algo) {
  (void)handle;
  return kernels::algo_workspace(type, algo, p);
}

namespace {

// Wall-clock measurement of one algorithm on the host CPU. Allocates scratch
// operands internally, like cudnnFindConvolutionForwardAlgorithm.
double measure_algo_ms(ConvKernelType type, const kernels::ConvProblem& p,
                       int algo, std::size_t ws_bytes) {
  const std::int64_t a_count =
      type == ConvKernelType::kBackwardData ? p.y.count() : p.x.count();
  const std::int64_t b_count =
      type == ConvKernelType::kBackwardFilter ? p.y.count() : p.w.count();
  const std::int64_t out_count = type == ConvKernelType::kForward
                                     ? p.y.count()
                                     : type == ConvKernelType::kBackwardData
                                           ? p.x.count()
                                           : p.w.count();
  AlignedBuffer<float> a(static_cast<std::size_t>(a_count));
  AlignedBuffer<float> b(static_cast<std::size_t>(b_count));
  AlignedBuffer<float> out(static_cast<std::size_t>(out_count));
  fill_constant(a.data(), a_count, 0.5f);
  fill_constant(b.data(), b_count, 0.25f);
  fill_constant(out.data(), out_count, 0.0f);
  AlignedBuffer<char> ws(ws_bytes);

  const analysis::ScopedAuditContext audit_context("find_algorithms");
  // One warmup, then the timed run.
  kernels::execute(type, algo, p, a.data(), b.data(), out.data(), 1.0f, 0.0f,
                   ws.data(), ws.bytes());
  Timer timer;
  kernels::execute(type, algo, p, a.data(), b.data(), out.data(), 1.0f, 0.0f,
                   ws.data(), ws.bytes());
  return timer.elapsed_ms();
}

}  // namespace

std::vector<AlgoPerf> find_algorithms(const Handle& handle, ConvKernelType type,
                                      const kernels::ConvProblem& p) {
  const telemetry::ScopedSpan span("find_algorithms",
                                   [&] { return p.to_string(); });
  {
    static telemetry::Counter calls =
        telemetry::MetricsRegistry::instance().counter(
            "ucudnn.mcudnn.find_algorithms");
    calls.add(1);
  }
  std::vector<AlgoPerf> results;
  results.reserve(static_cast<std::size_t>(kernels::algo_count(type)));
  for (int algo = 0; algo < kernels::algo_count(type); ++algo) {
    AlgoPerf perf;
    perf.algo = algo;
    if (!kernels::algo_supported(type, algo, p)) {
      perf.status = Status::kNotSupported;
      results.push_back(perf);
      continue;
    }
    perf.memory = kernels::algo_workspace(type, algo, p);
    if (FaultInjector::instance().armed() &&
        FaultInjector::instance().should_fail(FaultSite::kKernel)) {
      // Benchmarking observes the failure instead of throwing, exactly like
      // cudnnFind* reporting a per-algorithm status.
      perf.status = Status::kExecutionFailed;
      results.push_back(perf);
      continue;
    }
    perf.status = Status::kSuccess;
    if (handle.device().is_simulated()) {
      perf.time_ms = handle.device().model_time_ms(type, algo, p);
    } else {
      perf.time_ms = measure_algo_ms(type, p, algo, perf.memory);
    }
    results.push_back(perf);
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const AlgoPerf& l, const AlgoPerf& r) {
                     const bool lo = l.status == Status::kSuccess;
                     const bool ro = r.status == Status::kSuccess;
                     if (lo != ro) return lo;
                     if (!lo) return false;
                     return l.time_ms < r.time_ms;
                   });
  return results;
}

std::vector<AlgoPerf> find_algorithms_ex(const Handle& handle,
                                         ConvKernelType type,
                                         const kernels::ConvProblem& p,
                                         const float* a, const float* b,
                                         float* out, void* workspace,
                                         std::size_t workspace_bytes) {
  std::vector<AlgoPerf> results;
  results.reserve(static_cast<std::size_t>(kernels::algo_count(type)));
  for (int algo = 0; algo < kernels::algo_count(type); ++algo) {
    AlgoPerf perf;
    perf.algo = algo;
    if (!kernels::algo_supported(type, algo, p)) {
      perf.status = Status::kNotSupported;
      results.push_back(perf);
      continue;
    }
    perf.memory = kernels::algo_workspace(type, algo, p);
    if (perf.memory > workspace_bytes) {
      // Ex semantics: algorithms that do not fit the provided buffer are
      // reported but not run.
      perf.status = Status::kAllocFailed;
      results.push_back(perf);
      continue;
    }
    perf.status = Status::kSuccess;
    if (handle.device().is_simulated()) {
      perf.time_ms = handle.device().model_time_ms(type, algo, p);
    } else {
      check_param(a != nullptr && b != nullptr && out != nullptr,
                  "find_algorithms_ex needs operand buffers on HostCpu");
      Timer timer;
      kernels::execute(type, algo, p, a, b, out, 1.0f, 0.0f, workspace,
                       workspace_bytes);
      perf.time_ms = timer.elapsed_ms();
    }
    results.push_back(perf);
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const AlgoPerf& l, const AlgoPerf& r) {
                     const bool lo = l.status == Status::kSuccess;
                     const bool ro = r.status == Status::kSuccess;
                     if (lo != ro) return lo;
                     if (!lo) return false;
                     return l.time_ms < r.time_ms;
                   });
  return results;
}

int get_algorithm(const Handle& handle, ConvKernelType type,
                  const kernels::ConvProblem& p, AlgoPreference preference,
                  std::size_t ws_limit) {
  const std::size_t limit =
      preference == AlgoPreference::kNoWorkspace
          ? 0
          : preference == AlgoPreference::kPreferFastest
                ? std::numeric_limits<std::size_t>::max()
                : ws_limit;
  const auto results = find_algorithms(handle, type, p);
  for (const AlgoPerf& perf : results) {
    if (perf.status == Status::kSuccess && perf.memory <= limit) {
      return perf.algo;
    }
  }
  throw Error(Status::kNotSupported,
              "no algorithm fits workspace limit " + std::to_string(limit) +
                  " for " + p.to_string());
}

void convolution(const Handle& handle, ConvKernelType type,
                 const kernels::ConvProblem& p, float alpha, const float* a,
                 const float* b, float beta, float* out, int algo,
                 void* workspace, std::size_t workspace_bytes) {
  const telemetry::ScopedSpan span("mcudnn_conv", [&] {
    return p.to_string() + " algo=" + std::to_string(algo);
  });
  {
    static telemetry::Counter calls =
        telemetry::MetricsRegistry::instance().counter(
            "ucudnn.mcudnn.convolutions");
    calls.add(1);
  }
  check(kernels::algo_supported(type, algo, p), Status::kNotSupported,
        std::string(kernels::algo_name(type, algo)) + " unsupported for " +
            p.to_string());
  // Before any operand byte is touched: a failed launch never has partial
  // effects, which is what makes the caller's retry bitwise-safe.
  FaultInjector::instance().fail_point(FaultSite::kKernel);
  device::Device& dev = handle.device();
  if (handle.exec_mode() == ExecMode::kVirtual) {
    // No data touched; advance the virtual clock by the modeled time. The
    // workspace-size contract is still enforced so that virtual runs catch
    // configuration bugs.
    const std::size_t required = kernels::algo_workspace(type, algo, p);
    check(workspace_bytes >= required, Status::kBadParam,
          "virtual execution with insufficient workspace: need " +
              std::to_string(required) + ", got " +
              std::to_string(workspace_bytes));
    dev.advance_stream_ms(handle.stream(), dev.model_time_ms(type, algo, p));
    return;
  }
  check_param(a != nullptr && b != nullptr && out != nullptr,
              "null operand in numeric convolution");
  kernels::execute(type, algo, p, a, b, out, alpha, beta, workspace,
                   workspace_bytes);
  if (dev.is_simulated()) {
    dev.advance_stream_ms(handle.stream(), dev.model_time_ms(type, algo, p));
  }
}

// ---------------------------------------------------------------------------

Status mcudnnGetConvolutionWorkspaceSize(const Handle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes) {
  UCUDNN_API_BODY({
    check_param(bytes != nullptr, "null output pointer");
    *bytes = workspace_size(handle, type, make_problem(type, in, w, conv, out),
                            algo);
  });
}

Status mcudnnGetConvolutionAlgorithm(const Handle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     AlgoPreference preference,
                                     std::size_t ws_limit, int* algo) {
  UCUDNN_API_BODY({
    check_param(algo != nullptr, "null output pointer");
    *algo = get_algorithm(handle, type, make_problem(type, in, w, conv, out),
                          preference, ws_limit);
  });
}

Status mcudnnFindConvolutionAlgorithm(const Handle& handle, ConvKernelType type,
                                      const TensorDesc& in, const FilterDesc& w,
                                      const ConvGeometry& conv,
                                      const TensorDesc& out,
                                      int requested_count, int* returned_count,
                                      AlgoPerf* results) {
  UCUDNN_API_BODY({
    check_param(returned_count != nullptr && results != nullptr,
                "null output pointer");
    const auto perfs =
        find_algorithms(handle, type, make_problem(type, in, w, conv, out));
    const int n = std::min<int>(requested_count, static_cast<int>(perfs.size()));
    for (int i = 0; i < n; ++i) results[i] = perfs[static_cast<std::size_t>(i)];
    *returned_count = n;
  });
}

Status mcudnnConvolutionForward(const Handle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y) {
  UCUDNN_API_BODY({
    convolution(handle, ConvKernelType::kForward,
                make_problem(ConvKernelType::kForward, x_desc, w_desc, conv,
                             y_desc),
                alpha, x, w, beta, y, algo, workspace, workspace_bytes);
  });
}

Status mcudnnConvolutionBackwardData(const Handle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx) {
  UCUDNN_API_BODY({
    convolution(handle, ConvKernelType::kBackwardData,
                make_problem(ConvKernelType::kBackwardData, dy_desc, w_desc,
                             conv, dx_desc),
                alpha, dy, w, beta, dx, algo, workspace, workspace_bytes);
  });
}

Status mcudnnConvolutionBackwardFilter(const Handle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw) {
  UCUDNN_API_BODY({
    convolution(handle, ConvKernelType::kBackwardFilter,
                make_problem(ConvKernelType::kBackwardFilter, x_desc, dw_desc,
                             conv, dy_desc),
                alpha, x, dy, beta, dw, algo, workspace, workspace_bytes);
  });
}

}  // namespace ucudnn::mcudnn
