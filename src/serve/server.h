// Server — the resilient multi-tenant serving front-end (docs/serving.md).
//
// Ties the pieces together: submit() runs deadline-aware admission into the
// bounded RequestQueue; a worker pool collects coalescible batches (holding
// them open up to the batch window), merges them through the Batcher, and
// executes ONE micro-batched convolution per batch on the shared
// UcudnnHandle — so concurrent small requests ride the planner's optimal
// micro-batch division instead of thrashing it with batch-1 calls.
//
// Robustness guarantees (asserted by tests/serve_test.cc):
//  * submit() never blocks unboundedly — every path returns a Ticket that
//    is either queued or already resolved (kRejected / kDeadlineExceeded /
//    kShuttingDown).
//  * Every admitted Ticket resolves exactly once, including under drain,
//    overload shedding, injected faults, and execution failure.
//  * Transient kExecutionFailed is retried with exponential backoff up to
//    UCUDNN_SERVE_MAX_RETRIES times (on top of the executor's own
//    re-plan/blacklist ladder); retries are skipped once every member of
//    the batch has expired.
//  * drain() stops admission, flushes in-flight batches, fails everything
//    still queued with kShuttingDown, and joins the workers. Idempotent.
//
// Fault sites (UCUDNN_FAULTS): serve.enqueue (admission rejects),
// serve.batch (batch assembly fails), serve.exec (execution fails —
// exercises the retry ladder).
//
// Metrics: ucudnn.serve.{admitted,rejected,expired,shed,retried,completed,
// exec_failed,shutdown_failed,batches,batched_requests} counters,
// ucudnn.serve.{queue_depth,overload_level} gauges, and
// ucudnn.serve.{e2e_ms,queue_wait_ms,batch_occupancy} histograms.
//
// Tracing: submit() mints a per-request trace id (Ticket::trace_id());
// serve_admit/serve_queue/serve_exec_request/serve_resolve spans
// reconstruct each request's timeline across coalesced batches, and the
// flight recorder captures overload rung changes, batch builds, and
// resolutions. UCUDNN_WATCHDOG_MS attaches an anomaly watchdog sampling
// watchdog_sample(). See docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/ucudnn.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/serve_options.h"
#include "telemetry/metrics.h"
#include "telemetry/watchdog.h"

namespace ucudnn::serve {

class Server {
 public:
  /// The handle must outlive the server. One PlanCache / BenchmarkCache —
  /// the handle's — is shared by every worker; execution on it is
  /// serialized internally (UcudnnHandle is not thread-safe).
  Server(core::UcudnnHandle& handle, ServeOptions opts);
  /// Options from the UCUDNN_SERVE_* environment.
  explicit Server(core::UcudnnHandle& handle)
      : Server(handle, ServeOptions::from_env()) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Non-blocking admission. Always returns a valid Ticket; on any
  /// non-admitted path the ticket is already resolved when it returns.
  TicketPtr submit(ServeRequest request);

  /// Graceful shutdown: stop admission, flush in-flight batches, resolve
  /// everything still queued with kShuttingDown, join workers. Idempotent,
  /// safe from any thread.
  void drain();

  bool draining() const noexcept {
    return drained_.load(std::memory_order_acquire);
  }

  /// Resolves every queued request whose deadline has passed (maintenance
  /// hook; workers shed lazily anyway). Returns how many were shed.
  std::size_t shed_expired();

  // --- introspection ------------------------------------------------------

  /// Per-server snapshot of the ucudnn.serve.* counters (process-wide
  /// metrics aggregate across servers; tests want isolation).
  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;         ///< kRejected resolutions
    std::uint64_t expired = 0;          ///< kDeadlineExceeded resolutions
    std::uint64_t shed = 0;             ///< priority evictions (in rejected)
    std::uint64_t retried = 0;          ///< batch execution retries
    std::uint64_t completed = 0;        ///< kSuccess resolutions
    std::uint64_t exec_failed = 0;      ///< non-deadline failure resolutions
    std::uint64_t shutdown_failed = 0;  ///< kShuttingDown resolutions
    std::uint64_t batches = 0;          ///< merged batches executed
    std::uint64_t batched_requests = 0; ///< requests across those batches
  };
  Counters counters() const;

  std::size_t queue_depth() const { return queue_.depth(); }
  int overload_level() const { return queue_.overload_level(); }
  /// EWMA of recent batch execution times; 0 until the first batch.
  double service_estimate_ms() const noexcept {
    return ewma_ms_.load(std::memory_order_relaxed);
  }
  const ServeOptions& options() const noexcept { return opts_; }

  /// The anomaly watchdog attached by ServeOptions::watchdog_ms (null when
  /// 0 or when the server runs workerless). Valid until drain().
  telemetry::Watchdog* watchdog() noexcept { return watchdog_.get(); }
  /// One vital-sign snapshot (queue depth/capacity, overload rung, EWMA
  /// estimate, est-vs-measured drift, per-worker busy times) — the sampling
  /// callback the watchdog polls; public so tests can probe it directly.
  telemetry::WatchdogSample watchdog_sample() const;

 private:
  void worker_loop(std::size_t worker_index);
  void process_batch(std::vector<TicketPtr>& batch);
  /// Builds, (fault-point) executes, and scatters one merged batch.
  /// Throws on failure; the caller owns the retry ladder.
  void execute_once(const std::vector<TicketPtr>& batch);
  /// Resolves (first-wins) and counts; no-op if already resolved.
  void finish(const TicketPtr& ticket, Status status);
  std::int64_t effective_window_us() const;
  void update_load_gauges();

  core::UcudnnHandle& handle_;
  const ServeOptions opts_;
  Batcher batcher_;
  RequestQueue queue_;

  FaultSiteId enqueue_site_;
  FaultSiteId batch_site_;
  FaultSiteId exec_site_;

  /// UcudnnHandle::convolution (planner state, exec records) is not
  /// thread-safe; workers share the handle under this lock. PlanCache /
  /// BenchmarkCache hits still amortize across all workers.
  Mutex exec_mutex_{"serve.Server.exec"};

  std::atomic<double> ewma_ms_{0.0};
  std::atomic<bool> drained_{false};
  /// Serializes drain() (and the destructor) against concurrent drainers.
  Mutex drain_mutex_{"serve.Server.drain"};

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> exec_failed_{0};
  std::atomic<std::uint64_t> shutdown_failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};

  telemetry::Counter m_admitted_, m_rejected_, m_expired_, m_shed_,
      m_retried_, m_completed_, m_exec_failed_, m_shutdown_failed_,
      m_batches_, m_batched_requests_;
  telemetry::Gauge m_depth_, m_level_;
  telemetry::Histogram m_e2e_ms_, m_queue_wait_ms_, m_occupancy_;

  /// Per-worker liveness: steady-clock us when the worker began its current
  /// batch, 0 while idle. Sized once at construction, never resized (the
  /// atomics are not movable).
  struct WorkerState {
    std::atomic<std::int64_t> busy_since_us{0};
  };
  std::vector<WorkerState> worker_state_;
  /// |measured - estimated| / estimated from the handle's ExecutionReport,
  /// refreshed after each batch while the watchdog is attached.
  std::atomic<double> last_drift_{0.0};

  /// Stopped and destroyed by drain() before the workers are joined, and
  /// declared before pool_ so destructor order never leaves the sampler
  /// probing a dead pool.
  std::unique_ptr<telemetry::Watchdog> watchdog_;

  /// Last member: destroyed first, but drain() (not the pool destructor)
  /// is what unblocks the workers.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ucudnn::serve
