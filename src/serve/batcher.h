// Batcher — turns a set of coalescible requests into ONE merged convolution
// call whose mini-batch the planner then divides into micro-batches
// (docs/serving.md). This is the paper's trick inverted: instead of
// splitting one large mini-batch to fit the workspace, many small
// concurrent requests are aggregated into an optimally-divided batch.
//
// Forward batches are concatenated along the batch dimension into staging
// buffers (and optionally padded with zero samples up to the next power of
// two, so the planner only ever sees O(log max_batch) distinct mini-batch
// sizes); the merged outputs are scattered back per member afterwards.
// Backward kernel types are never merged or padded — they execute as
// singleton batches straight on the caller's buffers, bitwise-identical to
// an unserved call.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"

namespace ucudnn::serve {

/// One ready-to-execute merged convolution. When `staged` the operand
/// pointers alias the staging vectors; otherwise they alias the single
/// member's buffers directly.
struct MergedBatch {
  kernels::ConvProblem problem;  ///< merged (possibly padded) problem
  ConvKernelType type = ConvKernelType::kForward;
  std::int64_t total = 0;   ///< sum of member sample counts
  std::int64_t padded = 0;  ///< problem.batch() (>= total)
  float alpha = 1.0f;
  float beta = 0.0f;
  const float* a = nullptr;
  const float* b = nullptr;
  float* out = nullptr;
  bool staged = false;
  std::vector<float> in_stage;
  std::vector<float> out_stage;
};

class Batcher {
 public:
  explicit Batcher(bool pad_to_pow2) : pad_to_pow2_(pad_to_pow2) {}

  /// Builds the merged call for `members` (non-empty, pairwise coalescible —
  /// the queue guarantees both). Copies member inputs (and, when beta != 0,
  /// prior outputs) into the staging buffers when staging is needed.
  /// Throws Error(kBadParam) on a malformed member set.
  MergedBatch build(const std::vector<TicketPtr>& members) const;

  /// Copies each member's output slice back out of a staged batch. No-op
  /// for direct (unstaged) batches.
  void scatter(const MergedBatch& batch,
               const std::vector<TicketPtr>& members) const;

  static std::int64_t next_pow2(std::int64_t n) noexcept {
    std::int64_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

 private:
  bool pad_to_pow2_;
};

}  // namespace ucudnn::serve
