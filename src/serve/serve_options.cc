#include "serve/serve_options.h"

#include <sstream>

#include "common/env.h"
#include "common/status.h"

namespace ucudnn::serve {
namespace {

double env_fraction(const std::string& name, double fallback) {
  const std::optional<std::string> raw = env_raw(name);
  if (!raw) return fallback;
  std::istringstream stream(*raw);
  double value = 0.0;
  stream >> value;
  check(!stream.fail() && stream.eof(), Status::kInvalidValue,
        name + " expects a decimal fraction, got '" + *raw + "'");
  return value;
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions opts;
  opts.workers = static_cast<int>(env_int("UCUDNN_SERVE_WORKERS", opts.workers));
  opts.queue_capacity = static_cast<std::size_t>(
      env_int("UCUDNN_SERVE_QUEUE_CAPACITY",
              static_cast<std::int64_t>(opts.queue_capacity)));
  opts.batch_window_us =
      env_int("UCUDNN_SERVE_BATCH_WINDOW_US", opts.batch_window_us);
  opts.max_batch = env_int("UCUDNN_SERVE_MAX_BATCH", opts.max_batch);
  opts.default_deadline_ms = env_fraction("UCUDNN_SERVE_DEADLINE_MS",
                                          opts.default_deadline_ms);
  opts.max_retries =
      static_cast<int>(env_int("UCUDNN_SERVE_MAX_RETRIES", opts.max_retries));
  opts.retry_backoff_us =
      env_int("UCUDNN_SERVE_RETRY_BACKOFF_US", opts.retry_backoff_us);
  opts.window_watermark =
      env_fraction("UCUDNN_SERVE_WINDOW_WATERMARK", opts.window_watermark);
  opts.shed_watermark =
      env_fraction("UCUDNN_SERVE_SHED_WATERMARK", opts.shed_watermark);
  opts.pad_to_pow2 = env_bool("UCUDNN_SERVE_PAD_POW2", opts.pad_to_pow2);
  opts.watchdog_ms = env_int("UCUDNN_WATCHDOG_MS", opts.watchdog_ms);
  return opts;
}

void ServeOptions::validate() const {
  check_param(workers >= 0, "UCUDNN_SERVE_WORKERS must be >= 0");
  check_param(queue_capacity >= 1, "UCUDNN_SERVE_QUEUE_CAPACITY must be >= 1");
  check_param(batch_window_us >= 0,
              "UCUDNN_SERVE_BATCH_WINDOW_US must be >= 0");
  check_param(max_batch >= 1, "UCUDNN_SERVE_MAX_BATCH must be >= 1");
  check_param(default_deadline_ms >= 0.0,
              "UCUDNN_SERVE_DEADLINE_MS must be >= 0");
  check_param(max_retries >= 0, "UCUDNN_SERVE_MAX_RETRIES must be >= 0");
  check_param(retry_backoff_us >= 0,
              "UCUDNN_SERVE_RETRY_BACKOFF_US must be >= 0");
  check_param(window_watermark >= 0.0 && window_watermark <= 1.0,
              "UCUDNN_SERVE_WINDOW_WATERMARK must be in [0, 1]");
  check_param(shed_watermark >= 0.0 && shed_watermark <= 1.0,
              "UCUDNN_SERVE_SHED_WATERMARK must be in [0, 1]");
  check_param(window_watermark <= shed_watermark,
              "UCUDNN_SERVE_WINDOW_WATERMARK must not exceed "
              "UCUDNN_SERVE_SHED_WATERMARK");
  check_param(watchdog_ms >= 0, "UCUDNN_WATCHDOG_MS must be >= 0");
}

}  // namespace ucudnn::serve
