#include "serve/batcher.h"

#include <algorithm>
#include <cstring>

#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace ucudnn::serve {
namespace {

std::int64_t in_samples_elems(const kernels::ConvProblem& p) {
  return p.x.c * p.x.h * p.x.w;
}

std::int64_t out_samples_elems(const kernels::ConvProblem& p) {
  return p.y.c * p.y.h * p.y.w;
}

}  // namespace

MergedBatch Batcher::build(const std::vector<TicketPtr>& members) const {
  check_param(!members.empty(), "batch must have at least one member");
  const ServeRequest& first = members.front()->request();

  MergedBatch batch;
  batch.type = first.type;
  batch.alpha = first.alpha;
  batch.beta = first.beta;
  batch.b = first.weights;

  for (const TicketPtr& member : members) {
    const ServeRequest& req = member->request();
    // coalescible() is false for any backward pair (even a request against
    // itself), so only cross-member merges are checked against it; backward
    // singletons are legal.
    check_param(member == members.front() || coalescible(first, req),
                "batch members must be pairwise coalescible");
    check_param(req.input != nullptr && req.weights != nullptr &&
                    req.output != nullptr,
                "serve requests must carry non-null operands");
    batch.total += req.problem.batch();
  }

  // Only forward batches are merged: concatenating inputs along the batch
  // dimension is exactly concatenating the outputs. Backward types run as
  // singletons (coalescible() refuses them, so the queue never merges them).
  const bool mergeable = first.type == ConvKernelType::kForward;
  check_param(mergeable || members.size() == 1,
              "only forward batches may have multiple members");

  batch.padded = (mergeable && pad_to_pow2_) ? next_pow2(batch.total)
                                             : batch.total;
  batch.problem = first.problem.with_batch(batch.padded);
  batch.staged = mergeable && (members.size() > 1 || batch.padded != batch.total);
  telemetry::FlightRecorder::note(telemetry::FlightEventKind::kMark,
                                  "serve.batch_build",
                                  telemetry::current_trace_id(), batch.total,
                                  batch.padded);

  if (!batch.staged) {
    batch.a = first.input;
    batch.out = first.output;
    return batch;
  }

  const std::int64_t in_per_sample = in_samples_elems(first.problem);
  const std::int64_t out_per_sample = out_samples_elems(first.problem);
  // Zero-init so pad samples contribute exact zeros (and, with beta != 0,
  // accumulate onto zeros — the pad slice is discarded by scatter anyway).
  batch.in_stage.assign(
      static_cast<std::size_t>(batch.padded * in_per_sample), 0.0f);
  batch.out_stage.assign(
      static_cast<std::size_t>(batch.padded * out_per_sample), 0.0f);

  std::int64_t offset = 0;
  for (const TicketPtr& member : members) {
    const ServeRequest& req = member->request();
    const std::int64_t samples = req.problem.batch();
    std::memcpy(batch.in_stage.data() + offset * in_per_sample, req.input,
                static_cast<std::size_t>(samples * in_per_sample) *
                    sizeof(float));
    if (batch.beta != 0.0f) {
      // beta-accumulation reads the prior output; feed each member's in.
      std::memcpy(batch.out_stage.data() + offset * out_per_sample,
                  req.output,
                  static_cast<std::size_t>(samples * out_per_sample) *
                      sizeof(float));
    }
    offset += samples;
  }
  batch.a = batch.in_stage.data();
  batch.out = batch.out_stage.data();
  return batch;
}

void Batcher::scatter(const MergedBatch& batch,
                      const std::vector<TicketPtr>& members) const {
  if (!batch.staged) return;
  const std::int64_t out_per_sample =
      out_samples_elems(members.front()->request().problem);
  std::int64_t offset = 0;
  for (const TicketPtr& member : members) {
    const ServeRequest& req = member->request();
    const std::int64_t samples = req.problem.batch();
    std::memcpy(req.output,
                batch.out_stage.data() + offset * out_per_sample,
                static_cast<std::size_t>(samples * out_per_sample) *
                    sizeof(float));
    offset += samples;
  }
}

}  // namespace ucudnn::serve
