#include "serve/request_queue.h"

#include <algorithm>

#include "telemetry/flight_recorder.h"

namespace ucudnn::serve {

RequestQueue::RequestQueue(const ServeOptions& opts) : opts_(opts) {
  opts_.validate();
}

void RequestQueue::purge_expired_locked(Clock::time_point now,
                                        std::vector<TicketPtr>* expired) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->expired(now)) {
      expired->push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

int RequestQueue::level_locked() const {
  const auto depth = static_cast<double>(queue_.size());
  const auto cap = static_cast<double>(opts_.queue_capacity);
  if (queue_.size() >= opts_.queue_capacity) return 3;
  if (depth >= opts_.shed_watermark * cap) return 2;
  if (depth >= opts_.window_watermark * cap) return 1;
  return 0;
}

void RequestQueue::note_level_locked() {
  const int level = level_locked();
  if (level == last_level_) return;
  telemetry::FlightRecorder::note(telemetry::FlightEventKind::kOverload,
                                  "serve.overload_level", 0, level,
                                  last_level_);
  last_level_ = level;
}

std::ptrdiff_t RequestQueue::lowest_priority_locked() const {
  std::ptrdiff_t lowest = -1;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(queue_.size());
       ++i) {
    // `<=` so the most recent arrival among equals is the victim: shedding
    // prefers to undo the newest admission decision, not starve the oldest.
    if (lowest < 0 ||
        queue_[static_cast<std::size_t>(i)]->request().priority <=
            queue_[static_cast<std::size_t>(lowest)]->request().priority) {
      lowest = i;
    }
  }
  return lowest;
}

RequestQueue::Admission RequestQueue::try_enqueue(const TicketPtr& ticket,
                                                  double est_service_ms) {
  Admission result;
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  if (draining_) {
    result.status = Status::kShuttingDown;
    return result;
  }
  // Reject-on-unmeetable-deadline: already expired, or provably unmeetable
  // under the current service-time estimate even if service started now.
  if (ticket->expired(now) ||
      (est_service_ms > 0.0 &&
       ticket->deadline() != Clock::time_point::max() &&
       now + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(est_service_ms)) >
           ticket->deadline())) {
    result.status = Status::kDeadlineExceeded;
    return result;
  }
  purge_expired_locked(now, &result.expired);

  const int level = level_locked();
  if (level >= 2) {
    const std::ptrdiff_t lowest = lowest_priority_locked();
    const int incoming = ticket->request().priority;
    if (level == 3) {
      // Rung 3: full. Evict a strictly lower-priority entry or reject.
      if (lowest >= 0 &&
          queue_[static_cast<std::size_t>(lowest)]->request().priority <
              incoming) {
        result.shed.push_back(queue_[static_cast<std::size_t>(lowest)]);
        queue_.erase(queue_.begin() + lowest);
      } else {
        result.status = Status::kRejected;
        note_level_locked();
        return result;
      }
    } else {
      // Rung 2: room remains, but only arrivals that beat the lowest queued
      // priority may take it — background traffic is degraded first.
      if (lowest >= 0 &&
          queue_[static_cast<std::size_t>(lowest)]->request().priority >=
              incoming) {
        result.status = Status::kRejected;
        note_level_locked();
        return result;
      }
    }
  }
  queue_.push_back(ticket);
  note_level_locked();
  cv_.notify_one();
  return result;
}

void RequestQueue::collect_locked(const TicketPtr& seed,
                                  std::int64_t max_batch, std::int64_t* total,
                                  std::vector<TicketPtr>* batch,
                                  std::vector<TicketPtr>* expired,
                                  Clock::time_point now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->expired(now)) {
      expired->push_back(*it);
      it = queue_.erase(it);
      continue;
    }
    const std::int64_t samples = (*it)->request().problem.batch();
    if (coalescible(seed->request(), (*it)->request()) &&
        *total + samples <= max_batch) {
      batch->push_back(*it);
      *total += samples;
      it = queue_.erase(it);
      continue;
    }
    ++it;
  }
}

std::vector<TicketPtr> RequestQueue::next_batch(
    std::int64_t window_us, std::int64_t max_batch, double est_service_ms,
    std::vector<TicketPtr>* expired) {
  std::vector<TicketPtr> batch;
  MutexLock lock(mutex_);
  TicketPtr seed;
  while (seed == nullptr) {
    const Clock::time_point now = Clock::now();
    purge_expired_locked(now, expired);
    if (!queue_.empty()) {
      seed = queue_.front();
      queue_.pop_front();
      break;
    }
    // A purge must reach the caller NOW, not after the next batch: going
    // back to sleep would sit on the expired tickets until new traffic
    // happens to wake this worker — which at the tail of a load burst is
    // never, leaving their clients waiting past the deadline forever.
    if (!expired->empty()) return batch;
    if (draining_) return batch;
    cv_.wait(mutex_);
  }
  batch.push_back(seed);
  std::int64_t total = seed->request().problem.batch();
  collect_locked(seed, max_batch, &total, &batch, expired, Clock::now());

  // Hold the batch open for stragglers — but never past the point where the
  // tightest member deadline (minus the service-time estimate) is at risk,
  // and never once the queue starts draining. Members collected during the
  // wait tighten the window too: a late joiner with a tight deadline must
  // not be held past its own latest viable start.
  Clock::time_point window_end =
      Clock::now() + std::chrono::microseconds(window_us);
  std::size_t tightened = 0;
  const auto tighten_window = [&] {
    for (; tightened < batch.size(); ++tightened) {
      const TicketPtr& member = batch[tightened];
      if (member->deadline() != Clock::time_point::max()) {
        const Clock::time_point latest_start =
            member->deadline() -
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(est_service_ms));
        window_end = std::min(window_end, latest_start);
      }
    }
  };
  tighten_window();
  while (total < max_batch && !draining_) {
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        window_end - Clock::now());
    if (left.count() <= 0) break;
    cv_.wait_for_us(mutex_, left.count());
    collect_locked(seed, max_batch, &total, &batch, expired, Clock::now());
    tighten_window();
  }
  note_level_locked();
  return batch;
}

std::vector<TicketPtr> RequestQueue::close() {
  std::vector<TicketPtr> leftovers;
  MutexLock lock(mutex_);
  draining_ = true;
  leftovers.assign(queue_.begin(), queue_.end());
  queue_.clear();
  note_level_locked();
  cv_.notify_all();
  return leftovers;
}

std::vector<TicketPtr> RequestQueue::shed_expired() {
  std::vector<TicketPtr> expired;
  MutexLock lock(mutex_);
  purge_expired_locked(Clock::now(), &expired);
  note_level_locked();
  return expired;
}

bool RequestQueue::draining() const {
  MutexLock lock(mutex_);
  return draining_;
}

std::size_t RequestQueue::depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

int RequestQueue::overload_level() const {
  MutexLock lock(mutex_);
  return level_locked();
}

}  // namespace ucudnn::serve
