#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "common/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace ucudnn::serve {
namespace {

Clock::duration ms_to_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Ceiling on the exponential retry backoff. max_retries and the backoff
/// base are user-configurable with no upper bound, so 2^attempt scaling
/// must saturate here instead of overflowing.
constexpr std::int64_t kMaxRetryBackoffUs = 1'000'000;

std::int64_t retry_backoff_us(std::int64_t base_us, int attempt) {
  std::int64_t backoff = base_us;
  for (int i = 0; i < attempt && backoff < kMaxRetryBackoffUs; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, kMaxRetryBackoffUs);
}

std::int64_t steady_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Element count of the buffer a request's `output` points at; depends on
/// the kernel type (forward writes dY-shaped, backward-data dX-shaped,
/// backward-filter dW-shaped data).
std::int64_t output_elems(const ServeRequest& req) {
  switch (req.type) {
    case ConvKernelType::kBackwardData:
      return req.problem.x.count();
    case ConvKernelType::kBackwardFilter:
      return req.problem.w.count();
    case ConvKernelType::kForward:
      break;
  }
  return req.problem.y.count();
}

}  // namespace

Server::Server(core::UcudnnHandle& handle, ServeOptions opts)
    : handle_(handle),
      opts_(opts),
      batcher_(opts.pad_to_pow2),
      queue_(opts),
      enqueue_site_(FaultInjector::instance().register_site(
          "serve.enqueue", Status::kRejected)),
      batch_site_(FaultInjector::instance().register_site(
          "serve.batch", Status::kExecutionFailed)),
      exec_site_(FaultInjector::instance().register_site(
          "serve.exec", Status::kExecutionFailed)),
      worker_state_(static_cast<std::size_t>(std::max(opts.workers, 0))) {
  opts_.validate();
  auto& metrics = telemetry::MetricsRegistry::instance();
  m_admitted_ = metrics.counter("ucudnn.serve.admitted");
  m_rejected_ = metrics.counter("ucudnn.serve.rejected");
  m_expired_ = metrics.counter("ucudnn.serve.expired");
  m_shed_ = metrics.counter("ucudnn.serve.shed");
  m_retried_ = metrics.counter("ucudnn.serve.retried");
  m_completed_ = metrics.counter("ucudnn.serve.completed");
  m_exec_failed_ = metrics.counter("ucudnn.serve.exec_failed");
  m_shutdown_failed_ = metrics.counter("ucudnn.serve.shutdown_failed");
  m_batches_ = metrics.counter("ucudnn.serve.batches");
  m_batched_requests_ = metrics.counter("ucudnn.serve.batched_requests");
  m_depth_ = metrics.gauge("ucudnn.serve.queue_depth");
  m_level_ = metrics.gauge("ucudnn.serve.overload_level");
  m_e2e_ms_ = metrics.histogram("ucudnn.serve.e2e_ms");
  m_queue_wait_ms_ = metrics.histogram("ucudnn.serve.queue_wait_ms");
  m_occupancy_ = metrics.histogram("ucudnn.serve.batch_occupancy");

  if (opts_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(opts_.workers));
    for (int i = 0; i < opts_.workers; ++i) {
      const auto index = static_cast<std::size_t>(i);
      pool_->submit([this, index] { worker_loop(index); });
    }
    if (opts_.watchdog_ms > 0) {
      telemetry::WatchdogOptions wd;
      wd.period_ms = opts_.watchdog_ms;
      watchdog_ = std::make_unique<telemetry::Watchdog>(
          wd, [this] { return watchdog_sample(); },
          &telemetry::FlightRecorder::instance());
    }
  }
}

Server::~Server() { drain(); }

void Server::finish(const TicketPtr& ticket, Status status) {
  if (!ticket->resolve(status)) return;
  // Per-request terminal markers: a zero-duration "serve_resolve" span on
  // the request's timeline and a compact status transition in the black box.
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::instance();
  if (recorder.enabled()) {
    telemetry::SpanEvent event;
    event.name = "serve_resolve";
    event.detail = std::string(to_string(status));
    event.ts_us = recorder.now_us();
    event.dur_us = 0.0;
    event.tid = telemetry::TraceRecorder::thread_ordinal();
    event.trace_id = ticket->trace_id();
    recorder.record(std::move(event));
  }
  telemetry::FlightRecorder::note(
      telemetry::FlightEventKind::kStatus, to_string(status).data(),
      ticket->trace_id(), static_cast<std::int64_t>(status), 0);
  m_e2e_ms_.observe_ms(ticket->latency_ms());
  switch (status) {
    case Status::kSuccess:
      completed_.fetch_add(1, std::memory_order_relaxed);
      m_completed_.add();
      break;
    case Status::kDeadlineExceeded:
      expired_.fetch_add(1, std::memory_order_relaxed);
      m_expired_.add();
      break;
    case Status::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_.add();
      break;
    case Status::kShuttingDown:
      shutdown_failed_.fetch_add(1, std::memory_order_relaxed);
      m_shutdown_failed_.add();
      break;
    default:
      exec_failed_.fetch_add(1, std::memory_order_relaxed);
      m_exec_failed_.add();
      break;
  }
}

void Server::update_load_gauges() {
  m_depth_.set(static_cast<std::int64_t>(queue_.depth()));
  m_level_.set(queue_.overload_level());
}

std::int64_t Server::effective_window_us() const {
  // Overload ladder rung 1+: collapse the batch window so queued work
  // drains at maximum rate instead of idling for stragglers.
  return queue_.overload_level() >= 1 ? 0 : opts_.batch_window_us;
}

TicketPtr Server::submit(ServeRequest request) {
  auto ticket = std::make_shared<Ticket>(std::move(request));
  // Mint the request's trace id before anything else can emit on its
  // behalf; the ambient context scopes every admission-path span (and
  // flight event) to it.
  ticket->set_trace_id(telemetry::next_trace_id());
  ticket->set_submit_ts_us(telemetry::TraceRecorder::instance().now_us());
  const telemetry::TraceContext trace_scope(ticket->trace_id());
  const telemetry::ScopedSpan admit_span("serve_admit");
  const double deadline_ms = ticket->request().deadline_ms > 0.0
                                 ? ticket->request().deadline_ms
                                 : opts_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    ticket->set_deadline(ticket->submitted() + ms_to_duration(deadline_ms));
  }

  if (drained_.load(std::memory_order_acquire)) {
    finish(ticket, Status::kShuttingDown);
    return ticket;
  }

  FaultInjector& injector = FaultInjector::instance();
  if (injector.armed() && injector.should_fail(enqueue_site_)) {
    UCUDNN_LOG_DEBUG << "serve: injected admission rejection";
    finish(ticket, Status::kRejected);
    return ticket;
  }

  RequestQueue::Admission admission =
      queue_.try_enqueue(ticket, service_estimate_ms());
  for (const TicketPtr& stale : admission.expired) {
    finish(stale, Status::kDeadlineExceeded);
  }
  for (const TicketPtr& victim : admission.shed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    m_shed_.add();
    finish(victim, Status::kRejected);
  }
  switch (admission.status) {
    case Status::kSuccess:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      m_admitted_.add();
      break;
    default:
      finish(ticket, admission.status);
      break;
  }
  update_load_gauges();
  return ticket;
}

std::size_t Server::shed_expired() {
  const std::vector<TicketPtr> stale = queue_.shed_expired();
  for (const TicketPtr& ticket : stale) {
    finish(ticket, Status::kDeadlineExceeded);
  }
  update_load_gauges();
  return stale.size();
}

void Server::worker_loop(std::size_t worker_index) {
  WorkerState* state = worker_index < worker_state_.size()
                           ? &worker_state_[worker_index]
                           : nullptr;
  for (;;) {
    std::vector<TicketPtr> stale;
    std::vector<TicketPtr> batch =
        queue_.next_batch(effective_window_us(), opts_.max_batch,
                          service_estimate_ms(), &stale);
    for (const TicketPtr& ticket : stale) {
      finish(ticket, Status::kDeadlineExceeded);
    }
    if (batch.empty()) {
      // Either the queue is draining (exit) or the wait was cut short just
      // to hand back freshly expired tickets (resolved above — go again).
      if (queue_.draining()) return;
      update_load_gauges();
      continue;
    }
    // Liveness beacon for the watchdog: busy from batch pickup to
    // resolution, cleared on every exit path.
    if (state != nullptr) {
      state->busy_since_us.store(steady_us(), std::memory_order_relaxed);
    }
    try {
      process_batch(batch);
    } catch (const std::exception& e) {
      // process_batch owns failure resolution; anything escaping is a bug,
      // but a worker must never die with tickets unresolved.
      UCUDNN_LOG_ERROR << "serve: batch processing escaped: " << e.what();
      for (const TicketPtr& ticket : batch) {
        finish(ticket, Status::kInternalError);
      }
    }
    if (state != nullptr) {
      state->busy_since_us.store(0, std::memory_order_relaxed);
    }
    update_load_gauges();
  }
}

void Server::execute_once(const std::vector<TicketPtr>& batch) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.armed()) injector.fail_point(batch_site_);
  MergedBatch merged = batcher_.build(batch);
  {
    telemetry::ScopedSpan span("serve_exec", [&merged] {
      return merged.problem.to_string() + " total=" +
             std::to_string(merged.total);
    });
    MutexLock lock(exec_mutex_);
    handle_.convolution(merged.type, merged.problem, merged.alpha, merged.a,
                        merged.b, merged.beta, merged.out);
    // After the convolution so an injected failure models the worst case: a
    // transient fault whose attempt already wrote into the output buffer —
    // exactly what the retry ladder's beta-snapshot must survive.
    if (injector.armed()) injector.fail_point(exec_site_);
  }
  batcher_.scatter(merged, batch);
}

void Server::process_batch(std::vector<TicketPtr>& batch) {
  const Clock::time_point start = Clock::now();
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::instance();
  // The batch gets its own trace id (execution is shared work), scoped over
  // everything below — serve_exec and the executor's segment spans inherit
  // it ambiently. Member request ids are listed in the batch span's detail,
  // and each member's timeline gets explicit queue/exec spans carrying its
  // own id, so per-request reconstruction never needs the batch id.
  const std::uint64_t batch_trace_id = telemetry::next_trace_id();
  const telemetry::TraceContext trace_scope(batch_trace_id);
  telemetry::ScopedSpan span("serve_batch", [&batch] {
    std::string detail = std::to_string(batch.size()) + " request(s) members=[";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i > 0) detail += ",";
      detail += std::to_string(batch[i]->trace_id());
    }
    detail += "]";
    return detail;
  });
  batches_.fetch_add(1, std::memory_order_relaxed);
  m_batches_.add();
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  m_batched_requests_.add(batch.size());
  std::int64_t samples = 0;
  for (const TicketPtr& ticket : batch) {
    samples += ticket->request().problem.batch();
    m_queue_wait_ms_.observe_ms(
        std::chrono::duration<double, std::milli>(start - ticket->submitted())
            .count());
  }
  m_occupancy_.observe_ms(static_cast<double>(samples));
  if (recorder.enabled()) {
    // Retroactive per-member "serve_queue" spans: submit -> batch pickup,
    // recorded on each member's own timeline.
    const double pickup_us = recorder.now_us();
    for (const TicketPtr& ticket : batch) {
      telemetry::SpanEvent event;
      event.name = "serve_queue";
      event.ts_us = ticket->submit_ts_us();
      event.dur_us = std::max(0.0, pickup_us - ticket->submit_ts_us());
      event.tid = telemetry::TraceRecorder::thread_ordinal();
      event.trace_id = ticket->trace_id();
      recorder.record(std::move(event));
    }
  }

  // A singleton batch may execute directly into the client's output buffer
  // (no staging); with beta != 0 a failed attempt can leave it partially
  // accumulated, and a retry re-reading it would apply beta twice. Snapshot
  // it up front and restore before every retry. Staged batches need nothing:
  // they re-stage from the untouched client buffers on each attempt.
  std::vector<float> output_snapshot;
  float* snapshot_dst = nullptr;
  if (opts_.max_retries > 0 && batch.size() == 1 &&
      batch.front()->request().beta != 0.0f) {
    const ServeRequest& req = batch.front()->request();
    snapshot_dst = req.output;
    output_snapshot.assign(req.output, req.output + output_elems(req));
  }

  const double exec_begin_us = recorder.now_us();
  Status failure = Status::kSuccess;
  for (int attempt = 0;; ++attempt) {
    try {
      execute_once(batch);
      break;
    } catch (const Error& e) {
      const Clock::time_point now = Clock::now();
      const bool all_expired =
          std::all_of(batch.begin(), batch.end(), [now](const TicketPtr& t) {
            return t->expired(now);
          });
      // Retries stay on during drain: they are bounded (max_retries with
      // capped backoff), and skipping them would leak kExecutionFailed where
      // the ticket contract promises success/deadline/reject/shutdown.
      if (e.status() == Status::kExecutionFailed &&
          attempt < opts_.max_retries && !all_expired) {
        retried_.fetch_add(1, std::memory_order_relaxed);
        m_retried_.add();
        UCUDNN_LOG_WARN << "serve: transient batch failure (attempt "
                        << attempt + 1 << "): " << e.what();
        if (snapshot_dst != nullptr) {
          std::copy(output_snapshot.begin(), output_snapshot.end(),
                    snapshot_dst);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(
            retry_backoff_us(opts_.retry_backoff_us, attempt)));
        continue;
      }
      UCUDNN_LOG_ERROR << "serve: batch failed terminally: " << e.what();
      failure = e.status();
      break;
    }
  }

  if (recorder.enabled()) {
    // Per-member "serve_exec_request" spans covering the (retried) execution
    // window, so each request's timeline is self-contained.
    const double exec_end_us = recorder.now_us();
    for (const TicketPtr& ticket : batch) {
      telemetry::SpanEvent event;
      event.name = "serve_exec_request";
      event.ts_us = exec_begin_us;
      event.dur_us = exec_end_us - exec_begin_us;
      event.tid = telemetry::TraceRecorder::thread_ordinal();
      event.trace_id = ticket->trace_id();
      recorder.record(std::move(event));
    }
  }
  if (watchdog_ != nullptr) {
    // Refresh the est-vs-measured drift vital sign from the handle's
    // execution report (report access shares the handle's exec lock).
    MutexLock lock(exec_mutex_);
    const double drift_pct = handle_.execution_report().estimation_error_pct();
    last_drift_.store(drift_pct / 100.0, std::memory_order_relaxed);
  }

  const double service_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  // Lossy EWMA update: concurrent workers may clobber each other's store,
  // which only costs estimate freshness, never correctness.
  const double prev = ewma_ms_.load(std::memory_order_relaxed);
  ewma_ms_.store(prev == 0.0 ? service_ms : 0.8 * prev + 0.2 * service_ms,
                 std::memory_order_relaxed);

  const Clock::time_point done = Clock::now();
  for (const TicketPtr& ticket : batch) {
    if (ticket->expired(done)) {
      // Whatever happened, the deadline contract wins (an expired member of
      // a failed batch is a deadline miss, and a result that arrived late
      // is too — so p99 of successful requests stays bounded by the
      // deadline).
      finish(ticket, Status::kDeadlineExceeded);
    } else {
      finish(ticket, failure);  // kSuccess when the batch went through
    }
  }
}

void Server::drain() {
  MutexLock lock(drain_mutex_);
  if (drained_.load(std::memory_order_acquire)) return;
  drained_.store(true, std::memory_order_release);
  // The watchdog samples server state, so it stops before anything else is
  // torn down (its stop() also severs the flight-recorder link).
  watchdog_.reset();
  std::vector<TicketPtr> leftovers = queue_.close();
  for (const TicketPtr& ticket : leftovers) {
    finish(ticket, Status::kShuttingDown);
  }
  // Workers flush whatever batch they already collected, observe draining,
  // and return; the pool destructor joins them.
  pool_.reset();
  update_load_gauges();
}

telemetry::WatchdogSample Server::watchdog_sample() const {
  telemetry::WatchdogSample sample;
  sample.queue_depth = queue_.depth();
  sample.queue_capacity = queue_.capacity();
  sample.overload_level = queue_.overload_level();
  sample.service_estimate_ms = service_estimate_ms();
  sample.est_drift = last_drift_.load(std::memory_order_relaxed);
  const std::int64_t now_us = steady_us();
  for (const WorkerState& state : worker_state_) {
    const std::int64_t since = state.busy_since_us.load(std::memory_order_relaxed);
    if (since > 0) {
      sample.worker_busy_ms.push_back(
          static_cast<double>(now_us - since) / 1000.0);
    }
  }
  return sample;
}

Server::Counters Server::counters() const {
  Counters c;
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.expired = expired_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.retried = retried_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.exec_failed = exec_failed_.load(std::memory_order_relaxed);
  c.shutdown_failed = shutdown_failed_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace ucudnn::serve
