// Serving front-end configuration (docs/serving.md). Like everything else
// in this reproduction, every knob is controllable through UCUDNN_SERVE_*
// environment variables and programmatically through this struct:
//
//   UCUDNN_SERVE_WORKERS          worker threads draining the queue    (2)
//   UCUDNN_SERVE_QUEUE_CAPACITY   bounded request-queue depth          (256)
//   UCUDNN_SERVE_BATCH_WINDOW_US  how long a worker holds a batch open
//                                 for same-shape stragglers            (200)
//   UCUDNN_SERVE_MAX_BATCH        coalesced-batch sample cap           (64)
//   UCUDNN_SERVE_DEADLINE_MS      default per-request deadline; 0 = none (0)
//   UCUDNN_SERVE_MAX_RETRIES      serve-level retries for a transient
//                                 kExecutionFailed batch               (3)
//   UCUDNN_SERVE_RETRY_BACKOFF_US base exponential-backoff unit        (50)
//   UCUDNN_SERVE_WINDOW_WATERMARK queue-depth fraction beyond which the
//                                 batch window collapses to 0          (0.5)
//   UCUDNN_SERVE_SHED_WATERMARK   queue-depth fraction beyond which
//                                 lowest-priority requests are shed    (0.75)
//   UCUDNN_SERVE_PAD_POW2         pad coalesced batches to the next
//                                 power of two (bounds the number of
//                                 distinct plans/benchmarks)           (1)
//   UCUDNN_WATCHDOG_MS            anomaly-watchdog sampling period in ms;
//                                 0 disables it (docs/observability.md) (0)
#pragma once

#include <cstdint>
#include <cstddef>

namespace ucudnn::serve {

struct ServeOptions {
  /// Worker threads draining the queue. 0 is legal and means "no workers":
  /// nothing dequeues, which tests use to make admission behavior
  /// deterministic (drain() still resolves everything).
  int workers = 2;
  std::size_t queue_capacity = 256;
  /// Latency budget a worker spends holding a batch open for same-shape
  /// stragglers. Collapsed to 0 by the overload ladder's first rung.
  std::int64_t batch_window_us = 200;
  /// Sample cap of one coalesced batch (the merged mini-batch the planner
  /// divides into micro-batches).
  std::int64_t max_batch = 64;
  /// Default deadline applied when a request leaves deadline_ms at 0.
  /// 0 = requests without an explicit deadline never expire.
  double default_deadline_ms = 0.0;
  /// Serve-level retries for a batch failing with transient
  /// kExecutionFailed (on top of the executor's own retry/blacklist
  /// ladder, which handles per-segment kernel failures).
  int max_retries = 3;
  /// Exponential backoff base between serve-level retries:
  /// backoff_us * 2^attempt, saturating at 1 s per sleep (max_retries is
  /// unbounded, so the doubling must not overflow).
  std::int64_t retry_backoff_us = 50;
  /// Overload ladder rung 1: queue depth fraction beyond which the batch
  /// window collapses to 0 (stop waiting for stragglers).
  double window_watermark = 0.5;
  /// Overload ladder rung 2: queue depth fraction beyond which admission
  /// sheds the lowest-priority queued request to make room for a
  /// higher-priority arrival (and rejects arrivals that do not beat the
  /// lowest queued priority).
  double shed_watermark = 0.75;
  /// Pad coalesced batches up to the next power of two with zero samples.
  /// Bounds the set of distinct mini-batch sizes the planner ever sees, so
  /// plan-cache entries and benchmark cost stay O(log max_batch) instead of
  /// O(max_batch).
  bool pad_to_pow2 = true;
  /// Anomaly-watchdog sampling period (telemetry::Watchdog over queue depth,
  /// overload rung, est-vs-measured drift, and worker liveness); 0 = off.
  /// Shares UCUDNN_WATCHDOG_MS with telemetry::WatchdogOptions::from_env so
  /// one variable arms both the serve-attached and standalone watchdogs.
  std::int64_t watchdog_ms = 0;

  /// Reads every field from the environment.
  static ServeOptions from_env();

  /// Throws Error(kBadParam) on out-of-range values (negative counts,
  /// watermarks outside [0,1] or inverted, zero capacity).
  void validate() const;
};

}  // namespace ucudnn::serve
