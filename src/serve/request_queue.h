// Bounded, deadline-aware request queue of the serving front-end
// (docs/serving.md).
//
// Admission NEVER blocks the caller: try_enqueue() returns a terminal
// verdict immediately — kSuccess (queued), kShuttingDown (draining),
// kDeadlineExceeded (the deadline already passed, or the service-time
// estimate proves it unmeetable), or kRejected (queue full / overload
// shed). The overload ladder is driven by queue-depth watermarks:
//
//   rung 0  depth <  window_wm * capacity   normal: full batch window
//   rung 1  depth >= window_wm * capacity   batch window collapses to 0
//   rung 2  depth >= shed_wm * capacity     only arrivals beating the lowest
//                                           queued priority are admitted
//   rung 3  depth == capacity               lowest-priority entry is evicted
//                                           for a strictly higher-priority
//                                           arrival, else the arrival is
//                                           rejected
//
// Expired entries are shed lazily wherever the queue is already being
// walked (admission, batch collection, the shed_expired() maintenance
// hook) and handed back to the caller — the queue never resolves tickets
// itself, so no ticket lock is ever taken under the queue lock.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/thread_annotations.h"
#include "serve/request.h"
#include "serve/serve_options.h"

namespace ucudnn::serve {

class RequestQueue {
 public:
  explicit RequestQueue(const ServeOptions& opts);

  struct Admission {
    Status status = Status::kSuccess;
    std::vector<TicketPtr> expired;  ///< shed in passing; resolve
                                     ///< kDeadlineExceeded
    std::vector<TicketPtr> shed;     ///< evicted by priority; resolve
                                     ///< kRejected
  };

  /// Non-blocking admission (see header comment). `est_service_ms` is the
  /// caller's current service-time estimate (0 = unknown): a request whose
  /// deadline cannot be met even if service started now is rejected with
  /// kDeadlineExceeded instead of wasting queue space.
  Admission try_enqueue(const TicketPtr& ticket, double est_service_ms);

  /// Blocks until a request is available (or the queue is draining), then
  /// collects a coalescible batch: the head request plus every queued
  /// request coalescible with it, up to `max_batch` total samples. While
  /// the batch has room the call holds it open up to `window_us` for
  /// stragglers — but never past the point where the tightest member
  /// deadline minus `est_service_ms` would be overrun. Expired entries
  /// encountered are moved to *expired. Returns an empty vector only when
  /// draining and empty.
  std::vector<TicketPtr> next_batch(std::int64_t window_us,
                                    std::int64_t max_batch,
                                    double est_service_ms,
                                    std::vector<TicketPtr>* expired);

  /// Stops admission and returns everything still queued (the caller
  /// resolves them kShuttingDown). Wakes every blocked next_batch().
  /// Idempotent.
  std::vector<TicketPtr> close();

  /// Sheds every expired entry now (maintenance hook; also used by tests).
  std::vector<TicketPtr> shed_expired();

  bool draining() const;
  std::size_t depth() const;
  std::size_t capacity() const noexcept { return opts_.queue_capacity; }

  /// Current overload-ladder rung, 0..3.
  int overload_level() const;

 private:
  void purge_expired_locked(Clock::time_point now,
                            std::vector<TicketPtr>* expired) REQUIRES(mutex_);
  int level_locked() const REQUIRES(mutex_);
  /// Records an overload-rung transition into the flight recorder (and
  /// remembers the rung) whenever the depth-derived level moved since the
  /// last call. Called wherever the queue was just mutated.
  void note_level_locked() REQUIRES(mutex_);
  /// Index of the lowest-priority entry (latest arrival wins ties), or -1.
  std::ptrdiff_t lowest_priority_locked() const REQUIRES(mutex_);
  /// Moves every entry coalescible with `seed` into `batch` until the total
  /// sample count would exceed `max_batch`.
  void collect_locked(const TicketPtr& seed, std::int64_t max_batch,
                      std::int64_t* total, std::vector<TicketPtr>* batch,
                      std::vector<TicketPtr>* expired, Clock::time_point now)
      REQUIRES(mutex_);

  const ServeOptions opts_;
  mutable Mutex mutex_{"serve.RequestQueue"};
  CondVar cv_;
  std::deque<TicketPtr> queue_ GUARDED_BY(mutex_);
  bool draining_ GUARDED_BY(mutex_) = false;
  int last_level_ GUARDED_BY(mutex_) = 0;
};

}  // namespace ucudnn::serve
