// Request/ticket model of the serving front-end (docs/serving.md).
//
// A client describes one inference call as a ServeRequest (a convolution
// problem whose batch dimension is this request's sample count, plus operand
// pointers, a priority, and a deadline) and receives a Ticket: a one-shot
// future that resolves to exactly one terminal Status —
//
//   kSuccess           the outputs were produced within the deadline
//   kDeadlineExceeded  the deadline passed in the queue or during service
//   kRejected          admission control refused (queue full / overload shed)
//   kShuttingDown      the server drained before the request was started
//   anything else      the execution itself failed past all retries
//
// The guarantee the soak tests assert: every submitted request's Ticket
// resolves; no code path leaves a waiter hanging.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "kernels/conv_problem.h"

namespace ucudnn::serve {

using Clock = std::chrono::steady_clock;

/// One inference request. `problem.batch()` is this request's sample count;
/// forward requests whose problems differ ONLY in batch are coalescible when
/// their operand scaling and weights pointer also match. Backward requests
/// never coalesce — they always execute as singleton batches.
struct ServeRequest {
  ConvKernelType type = ConvKernelType::kForward;
  kernels::ConvProblem problem;
  float alpha = 1.0f;
  float beta = 0.0f;
  const float* input = nullptr;    ///< operand a (per-sample, batch-sliced)
  const float* weights = nullptr;  ///< operand b (the tenant's model)
  float* output = nullptr;         ///< batch-sliced result
  /// Larger = more important. Overload shedding evicts the smallest
  /// priority first; ties evict the most recent arrival.
  int priority = 0;
  /// Relative deadline from submit time; 0 uses ServeOptions'
  /// default_deadline_ms (and if that is also 0, the request never expires).
  double deadline_ms = 0.0;
};

/// The one-shot future a submit() returns. Shared between the client and the
/// worker that eventually resolves it; thread-safe.
class Ticket {
 public:
  explicit Ticket(ServeRequest request) : request_(std::move(request)) {}

  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  const ServeRequest& request() const noexcept { return request_; }

  /// Blocks until resolution. Safe to call from multiple threads.
  Status wait() {
    MutexLock lock(mutex_);
    while (!resolved_) cv_.wait(mutex_);
    return status_;
  }

  /// Bounded wait; returns false (and leaves *out untouched) on timeout.
  bool wait_for_us(std::int64_t timeout_us, Status* out) {
    const Clock::time_point until =
        Clock::now() + std::chrono::microseconds(timeout_us);
    MutexLock lock(mutex_);
    while (!resolved_) {
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          until - Clock::now());
      if (left.count() <= 0) return false;
      cv_.wait_for_us(mutex_, left.count());
    }
    if (out != nullptr) *out = status_;
    return true;
  }

  bool done() {
    MutexLock lock(mutex_);
    return resolved_;
  }

  /// End-to-end latency (submit -> resolution) in ms; 0 until resolved.
  double latency_ms() {
    MutexLock lock(mutex_);
    return latency_ms_;
  }

  // --- server side -------------------------------------------------------

  /// Resolves exactly once; later calls are ignored (the first terminal
  /// status wins, so a drain racing a completion cannot flip a result).
  /// Returns true when this call performed the resolution.
  bool resolve(Status status) {
    MutexLock lock(mutex_);
    if (resolved_) return false;
    resolved_ = true;
    status_ = status;
    latency_ms_ = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            submitted_)
                      .count();
    cv_.notify_all();
    return true;
  }

  /// Set by admission on entry; time_point::max() = never expires.
  Clock::time_point deadline() const noexcept { return deadline_; }
  void set_deadline(Clock::time_point t) noexcept { deadline_ = t; }
  Clock::time_point submitted() const noexcept { return submitted_; }

  /// Process-unique request trace id (telemetry::next_trace_id), assigned by
  /// admission before the ticket is visible to workers; 0 = untraced.
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  void set_trace_id(std::uint64_t id) noexcept { trace_id_ = id; }
  /// Submit time on the trace recorder's timeline (TraceRecorder::now_us),
  /// so per-request queue spans share the span timestamp axis.
  double submit_ts_us() const noexcept { return submit_ts_us_; }
  void set_submit_ts_us(double ts_us) noexcept { submit_ts_us_ = ts_us; }

  bool expired(Clock::time_point now) const noexcept {
    return now > deadline_;
  }

 private:
  const ServeRequest request_;
  // Written once by admission (before the ticket is visible to workers).
  Clock::time_point submitted_ = Clock::now();
  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t trace_id_ = 0;
  double submit_ts_us_ = 0.0;

  Mutex mutex_{"Ticket"};
  CondVar cv_;
  bool resolved_ GUARDED_BY(mutex_) = false;
  Status status_ GUARDED_BY(mutex_) = Status::kInternalError;
  double latency_ms_ GUARDED_BY(mutex_) = 0.0;
};

using TicketPtr = std::shared_ptr<Ticket>;

/// Requests coalesce when both are forward and everything but the batch
/// dimension matches: the merged mini-batch is mathematically the
/// concatenation of the members. Backward types are excluded outright —
/// concatenation is not valid for them (filter gradients sum over the
/// batch), and Batcher::build refuses multi-member non-forward batches.
inline bool coalescible(const ServeRequest& a, const ServeRequest& b) {
  return a.type == ConvKernelType::kForward && b.type == a.type &&
         a.weights == b.weights && a.alpha == b.alpha && a.beta == b.beta &&
         a.problem.with_batch(1) == b.problem.with_batch(1);
}

}  // namespace ucudnn::serve
