// μ-cuDNN configuration. Like the paper's implementation everything is
// controllable through UCUDNN_* environment variables, and programmatically
// through this struct ("a special library function", §III-D):
//
//   UCUDNN_BATCH_SIZE_POLICY     all | powerOfTwo | undivided   (powerOfTwo)
//   UCUDNN_WORKSPACE_POLICY      wr | wd                        (wr)
//   UCUDNN_WORKSPACE_LIMIT       per-kernel bytes, K/M/G suffix; overrides the
//                                limit the framework passes (needed for
//                                frameworks that never pass one, §IV-B2)
//   UCUDNN_TOTAL_WORKSPACE_SIZE  WD total arena bytes           (64M)
//   UCUDNN_WD_SOLVER             dp | ilp                       (dp)
//   UCUDNN_CACHE_PATH            benchmark-cache database file  (unset = off)
//   UCUDNN_BENCHMARK_DEVICES     parallel benchmarking fan-out  (1)
//   UCUDNN_MAX_RETRIES           transient-kernel-failure retries before the
//                                algorithm is blacklisted       (3)
//   UCUDNN_FAIL_FAST             1 = disable graceful degradation; resource
//                                failures throw immediately     (0)
//   UCUDNN_ILP_MAX_NODES         branch-and-bound node budget before the WD
//                                ILP solver falls back to MCKP-DP (1000000)
//   UCUDNN_FAULTS                fault-injection schedule (testing only; see
//                                docs/robustness.md)            (unset = off)
//   UCUDNN_TELEMETRY             1/true/on/yes = metrics + trace spans; any
//                                other value = also write a plain-text metrics
//                                snapshot to that path at exit; 0/false/off/no
//                                = off (docs/observability.md)  (unset = off)
//   UCUDNN_TRACE_FILE            chrome://tracing JSON written at exit;
//                                implies telemetry on           (unset = off)
//   UCUDNN_REQUEST_TRACE_FILE    per-request timeline JSON
//                                (ucudnn-request-trace-v1) written at exit;
//                                implies telemetry on           (unset = off)
//   UCUDNN_TRACE_MAX_SPANS       retained-span cap, drop-oldest; evictions
//                                counted in ucudnn.trace.dropped (1000000)
//   UCUDNN_FLIGHT_FILE           arm the flight recorder; dump its rings
//                                (ucudnn-flight-v1) there at exit and on
//                                faults/incidents
//                                (docs/observability.md)        (unset = off)
//   UCUDNN_FLIGHT_EVENTS         per-thread flight ring capacity, clamped to
//                                [16, 1M]; setting it arms the recorder (4096)
//   UCUDNN_WATCHDOG_MS           anomaly-watchdog sampling period for each
//                                serve::Server; 0 = off
//                                (docs/observability.md)        (0)
//   UCUDNN_REPORT_FILE           per-handle execution report (plan explain,
//                                estimated-vs-measured ms, workspace audit)
//                                at handle teardown; JSON when the path ends
//                                in .json, pretty text otherwise (unset = off)
//   UCUDNN_BENCH_JSON_DIR        bench binaries also write machine-readable
//                                BENCH_<name>.json artifacts to this
//                                directory (same as --json-dir); compare runs
//                                with tools/bench_compare.py  (unset = off)
//   UCUDNN_LOCK_ORDER            1 = runtime lock-order (potential-deadlock)
//                                detection; only in builds compiling the
//                                detector in (Debug/sanitizer presets; see
//                                docs/analysis.md)              (unset = off)
//   UCUDNN_NUM_THREADS           CPU kernel thread-pool size; malformed or
//                                non-positive values warn and fall back to
//                                hardware concurrency, values above 1024 are
//                                clamped (docs/kernels.md)    (cores)
//   UCUDNN_SIMD                  0 = force the portable scalar kernel paths
//                                instead of runtime AVX2/NEON dispatch
//                                (docs/kernels.md)            (auto)
//   UCUDNN_SERVE_*               serving front-end knobs (workers, queue
//                                capacity, batch window, deadlines, overload
//                                watermarks) — read by serve::ServeOptions,
//                                cataloged in src/serve/serve_options.h and
//                                docs/serving.md
//
// The telemetry variables are read by the src/telemetry leaf directly (not
// through Options): telemetry must stay includable from every layer without
// creating a cycle back into core. The UCUDNN_SERVE_* family likewise lives
// in the serve layer, which sits on top of this facade, and the kernel
// substrate knobs (UCUDNN_NUM_THREADS, UCUDNN_SIMD) are read by src/common
// for the same layering reason.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/types.h"

namespace ucudnn::core {

enum class WdSolver { kMckpDp, kBranchBoundIlp };

struct Options {
  BatchSizePolicy batch_size_policy = BatchSizePolicy::kPowerOfTwo;
  WorkspacePolicy workspace_policy = WorkspacePolicy::kWR;
  /// Per-kernel workspace limit override (WR). When set, wins over the limit
  /// the framework passes to GetConvolution*Algorithm.
  std::optional<std::size_t> workspace_limit;
  /// Total arena size for WD.
  std::size_t total_workspace_size = std::size_t{64} << 20;
  WdSolver wd_solver = WdSolver::kMckpDp;
  /// WR normally keeps one persistent workspace per kernel (§III-A: total
  /// grows with the layer count). When execution is strictly sequential —
  /// the TensorFlow-style integration — a single shared buffer sized to the
  /// largest requirement is semantically identical and far smaller; set via
  /// UCUDNN_SHARED_WORKSPACE=1.
  bool share_wr_workspace = false;
  /// File-backed benchmark cache (empty = in-memory only).
  std::string cache_path;
  /// Number of devices used for parallel micro-benchmark evaluation.
  int benchmark_devices = 1;
  /// Retries for a transient kExecutionFailed from a kernel before the
  /// algorithm is blacklisted and the remaining mini-batch re-planned.
  int max_retries = 3;
  /// Disables the graceful-degradation chain: allocation failures, infeasible
  /// WD plans, and kernel failures throw immediately instead of degrading.
  bool fail_fast = false;
  /// Node budget for WdSolver::kBranchBoundIlp. When exhausted without an
  /// incumbent the planner falls back to the exact MCKP-DP solver.
  std::int64_t ilp_max_nodes = 1'000'000;

  /// Reads every field from the environment.
  static Options from_env();
};

}  // namespace ucudnn::core
