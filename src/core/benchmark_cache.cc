#include "core/benchmark_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ucudnn::core {

namespace {

telemetry::Counter& cache_hits_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.benchmark_cache.hits");
  return c;
}

telemetry::Counter& cache_misses_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.benchmark_cache.misses");
  return c;
}

}  // namespace

std::string BenchmarkCache::make_key(const std::string& device,
                                     ConvKernelType type,
                                     const kernels::ConvProblem& problem,
                                     std::int64_t micro_batch) {
  std::ostringstream os;
  os << device << "|" << to_string(type) << "|" << std::hex << problem.hash()
     << std::dec << "|" << micro_batch;
  return os.str();
}

std::string BenchmarkCache::blacklist_key(const std::string& device,
                                          ConvKernelType type, int algo) {
  std::ostringstream os;
  os << device << "|" << to_string(type) << "|" << algo;
  return os.str();
}

std::optional<std::vector<mcudnn::AlgoPerf>> BenchmarkCache::lookup(
    const std::string& device, ConvKernelType type,
    const kernels::ConvProblem& problem, std::int64_t micro_batch) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(make_key(device, type, problem, micro_batch));
  if (it == entries_.end()) {
    cache_misses_metric().add(1);
    return std::nullopt;
  }
  cache_hits_metric().add(1);
  if (blacklist_.empty()) return it->second;
  std::vector<mcudnn::AlgoPerf> filtered;
  filtered.reserve(it->second.size());
  std::copy_if(it->second.begin(), it->second.end(),
               std::back_inserter(filtered), [&](const mcudnn::AlgoPerf& p) {
                 return blacklist_.count(blacklist_key(device, type, p.algo)) ==
                        0;
               });
  if (filtered.empty() && !it->second.empty()) {
    // The blacklist emptied a non-empty entry. Returning the empty vector
    // would read as "this problem supports no algorithms at all" and make
    // the caller give up; a miss instead sends it back to find_algorithms,
    // which re-measures and applies the blacklist to fresh results.
    return std::nullopt;
  }
  return filtered;
}

void BenchmarkCache::store(const std::string& device, ConvKernelType type,
                           const kernels::ConvProblem& problem,
                           std::int64_t micro_batch,
                           const std::vector<mcudnn::AlgoPerf>& perfs) {
  MutexLock lock(mutex_);
  entries_[make_key(device, type, problem, micro_batch)] = perfs;
}

std::size_t BenchmarkCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void BenchmarkCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  blacklist_.clear();
}

void BenchmarkCache::blacklist(const std::string& device, ConvKernelType type,
                               int algo) {
  MutexLock lock(mutex_);
  blacklist_.insert(blacklist_key(device, type, algo));
}

bool BenchmarkCache::is_blacklisted(const std::string& device,
                                    ConvKernelType type, int algo) const {
  MutexLock lock(mutex_);
  return blacklist_.count(blacklist_key(device, type, algo)) != 0;
}

std::size_t BenchmarkCache::blacklisted_count() const {
  MutexLock lock(mutex_);
  return blacklist_.size();
}

std::string BenchmarkCache::encode_perfs(
    const std::vector<mcudnn::AlgoPerf>& perfs) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < perfs.size(); ++i) {
    if (i > 0) os << ",";
    os << perfs[i].algo << ":" << static_cast<int>(perfs[i].status) << ":"
       << perfs[i].time_ms << ":" << perfs[i].memory;
  }
  return os.str();
}

std::vector<mcudnn::AlgoPerf> BenchmarkCache::decode_perfs(
    const std::string& text) {
  std::vector<mcudnn::AlgoPerf> perfs;
  if (text.empty()) return perfs;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ',')) {
    mcudnn::AlgoPerf perf;
    int status = 0;
    char sep1 = 0, sep2 = 0, sep3 = 0;
    std::istringstream is(item);
    is >> perf.algo >> sep1 >> status >> sep2 >> perf.time_ms >> sep3 >>
        perf.memory;
    // `is.peek() == EOF` rejects trailing bytes: the format has exactly four
    // fields and no whitespace, so "0:0:1.5:64junk" is corruption, not a
    // value — accepting it silently would load a truncated/damaged entry.
    check(!is.fail() && sep1 == ':' && sep2 == ':' && sep3 == ':' &&
              is.peek() == std::istringstream::traits_type::eof(),
          Status::kInternalError, "malformed benchmark cache entry: " + item);
    perf.status = static_cast<Status>(status);
    perfs.push_back(perf);
  }
  return perfs;
}

CacheLoadResult BenchmarkCache::load_file(const std::string& path) {
  const telemetry::ScopedSpan span("cache_load", [&] { return path; });
  std::ifstream in(path);
  if (!in) return CacheLoadResult::kMissing;  // missing cache files are fine

  // Parse into a staging map first: either the whole file is good and gets
  // merged, or none of it does.
  std::map<std::string, std::vector<mcudnn::AlgoPerf>> parsed;
  std::string why;
  bool corrupt = FaultInjector::instance().armed() &&
                 FaultInjector::instance().should_fail(FaultSite::kCacheLoad);
  if (corrupt) {
    why = "injected fault at site cache-load";
  } else {
    try {
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto tab = line.find('\t');
        check(tab != std::string::npos, Status::kInternalError,
              "malformed benchmark cache line: " + line);
        parsed[line.substr(0, tab)] = decode_perfs(line.substr(tab + 1));
      }
      // status-discipline: allow (recorded in `why`; quarantined + logged below)
    } catch (const Error& e) {
      corrupt = true;
      why = e.what();
    }
  }
  in.close();

  if (corrupt) {
    // Quarantine instead of throwing: a stale or damaged database must never
    // abort a run. The rename keeps the evidence for inspection.
    const std::string quarantine_path = path + ".corrupt";
    std::error_code ec;
    std::filesystem::rename(path, quarantine_path, ec);
    UCUDNN_LOG_WARN << "benchmark cache " << path << " is corrupt (" << why
                    << "); quarantined to " << quarantine_path
                    << (ec ? " (rename failed: " + ec.message() + ")" : "");
    return CacheLoadResult::kQuarantined;
  }

  MutexLock lock(mutex_);
  for (auto& [key, perfs] : parsed) entries_[key] = std::move(perfs);
  return CacheLoadResult::kLoaded;
}

void BenchmarkCache::save_file(const std::string& path) const {
  const telemetry::ScopedSpan span("cache_save", [&] { return path; });
  // Write-then-rename: readers either see the old complete database or the
  // new complete one, never a torn write.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    check(static_cast<bool>(out), Status::kInternalError,
          "cannot open benchmark cache file for writing: " + tmp_path);
    out << "# ucudnn benchmark cache v1\n";
    {
      MutexLock lock(mutex_);
      for (const auto& [key, perfs] : entries_) {
        out << key << "\t" << encode_perfs(perfs) << "\n";
      }
    }
    out.flush();
    check(!out.fail(), Status::kInternalError,
          "failed writing benchmark cache: " + tmp_path);
  }
  try {
    // Simulated crash between write and publish; the target must survive.
    FaultInjector::instance().fail_point(FaultSite::kCacheSave);
  } catch (const Error&) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  check(!ec, Status::kInternalError,
        "cannot publish benchmark cache " + path + ": " + ec.message());
}

}  // namespace ucudnn::core
