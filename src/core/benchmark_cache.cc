#include "core/benchmark_cache.h"

#include <fstream>
#include <sstream>

#include "common/status.h"

namespace ucudnn::core {

std::string BenchmarkCache::make_key(const std::string& device,
                                     ConvKernelType type,
                                     const kernels::ConvProblem& problem,
                                     std::int64_t micro_batch) {
  std::ostringstream os;
  os << device << "|" << to_string(type) << "|" << std::hex << problem.hash()
     << std::dec << "|" << micro_batch;
  return os.str();
}

std::optional<std::vector<mcudnn::AlgoPerf>> BenchmarkCache::lookup(
    const std::string& device, ConvKernelType type,
    const kernels::ConvProblem& problem, std::int64_t micro_batch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(make_key(device, type, problem, micro_batch));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void BenchmarkCache::store(const std::string& device, ConvKernelType type,
                           const kernels::ConvProblem& problem,
                           std::int64_t micro_batch,
                           const std::vector<mcudnn::AlgoPerf>& perfs) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[make_key(device, type, problem, micro_batch)] = perfs;
}

std::size_t BenchmarkCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void BenchmarkCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::string BenchmarkCache::encode_perfs(
    const std::vector<mcudnn::AlgoPerf>& perfs) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < perfs.size(); ++i) {
    if (i > 0) os << ",";
    os << perfs[i].algo << ":" << static_cast<int>(perfs[i].status) << ":"
       << perfs[i].time_ms << ":" << perfs[i].memory;
  }
  return os.str();
}

std::vector<mcudnn::AlgoPerf> BenchmarkCache::decode_perfs(
    const std::string& text) {
  std::vector<mcudnn::AlgoPerf> perfs;
  if (text.empty()) return perfs;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ',')) {
    mcudnn::AlgoPerf perf;
    int status = 0;
    char sep1 = 0, sep2 = 0, sep3 = 0;
    std::istringstream is(item);
    is >> perf.algo >> sep1 >> status >> sep2 >> perf.time_ms >> sep3 >>
        perf.memory;
    check(!is.fail() && sep1 == ':' && sep2 == ':' && sep3 == ':',
          Status::kInternalError, "malformed benchmark cache entry: " + item);
    perf.status = static_cast<Status>(status);
    perfs.push_back(perf);
  }
  return perfs;
}

void BenchmarkCache::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // missing cache files are fine
  std::string line;
  std::lock_guard<std::mutex> lock(mutex_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto tab = line.find('\t');
    check(tab != std::string::npos, Status::kInternalError,
          "malformed benchmark cache line: " + line);
    entries_[line.substr(0, tab)] = decode_perfs(line.substr(tab + 1));
  }
}

void BenchmarkCache::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  check(static_cast<bool>(out), Status::kInternalError,
        "cannot open benchmark cache file for writing: " + path);
  out << "# ucudnn benchmark cache v1\n";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, perfs] : entries_) {
    out << key << "\t" << encode_perfs(perfs) << "\n";
  }
}

}  // namespace ucudnn::core
