#include "core/executor.h"

#include <numeric>

#include "analysis/alias_check.h"
#include "analysis/workspace_audit.h"
#include "common/logging.h"
#include "common/timer.h"
#include "kernels/registry.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ucudnn::core {

namespace {

telemetry::Counter& segments_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.executor.segments");
  return c;
}

telemetry::Histogram& segment_ms_histogram() {
  static telemetry::Histogram h =
      telemetry::MetricsRegistry::instance().histogram(
          "ucudnn.executor.segment_ms");
  return h;
}

}  // namespace

Executor::Executor(mcudnn::Handle& handle, const Options& options,
                   DegradationStats& stats)
    : handle_(handle), options_(options), stats_(stats) {}

void Executor::run(const ExecutionPlan& plan, float alpha, const float* a,
                   const float* b, float beta, float* out, void* ws,
                   std::size_t ws_bytes, const ReplanFn& replan,
                   const MeasureFn& measure) {
  const ConvKernelType type = plan.type;
  const kernels::ConvProblem& problem = plan.problem;
  {
    const std::int64_t covered = std::accumulate(
        plan.segments.begin(), plan.segments.end(), std::int64_t{0},
        [](std::int64_t sum, const PlanSegment& s) { return sum + s.batch; });
    check(covered == problem.batch(), Status::kInternalError,
          "plan does not cover the mini-batch");
  }

  const analysis::ScopedAuditContext audit_context(
      plan.binding.kind == WorkspaceKind::kWdArena ? "WD" : "WR");

  // The segment list is mutable: when an algorithm keeps failing past the
  // retry budget, the not-yet-executed tail is spliced out for replacement
  // segments from the ReplanFn.
  std::vector<PlanSegment> segments = plan.segments;
  // On a simulated device the wall-clock Timer reads ~0 (virtual execution
  // only advances the modeled stream clock), so measured segment times are
  // taken as device-clock deltas there — the quantity the planner's
  // estimates model.
  device::Device& dev = handle_.device();
  const bool simulated = dev.is_simulated();
  std::int64_t done = 0;
  int replans = 0;
  std::size_t idx = 0;
  while (idx < segments.size()) {
    const PlanSegment segment = segments[idx];
    const telemetry::ScopedSpan span("segment_exec", [&] {
      return "batch=" + std::to_string(segment.batch) +
             " algo=" + std::to_string(segment.algo);
    });
    const double clock_start =
        simulated ? dev.stream_clock_ms(handle_.stream()) : 0.0;
    Timer segment_timer;
    const kernels::ConvProblem sub = problem.with_batch(segment.batch);
    const float* a_ptr = a == nullptr ? nullptr : a + segment.a_offset;
    const float* b_ptr = b == nullptr ? nullptr : b + segment.b_offset;
    float* out_ptr = out == nullptr ? nullptr : out + segment.out_offset;
    // BackwardFilter accumulates across micro-batches (output scale trick).
    const float micro_beta = segment.accumulate ? 1.0f : beta;

    if (analysis::workspace_audit_enabled()) {
      // BackwardFilter beta-accumulates dw across micro-batches, so
      // workspace aliasing any operand (or the operands aliasing the
      // accumulator) silently corrupts gradients. Checked per segment with
      // the micro-batch spans actually touched.
      const std::size_t a_bytes = static_cast<std::size_t>(
          type == ConvKernelType::kBackwardData ? sub.y.bytes()
                                                : sub.x.bytes());
      const std::size_t b_bytes = static_cast<std::size_t>(
          type == ConvKernelType::kBackwardFilter ? sub.y.bytes()
                                                  : sub.w.bytes());
      const std::size_t out_bytes = static_cast<std::size_t>(
          type == ConvKernelType::kForward        ? sub.y.bytes()
          : type == ConvKernelType::kBackwardData ? sub.x.bytes()
                                                  : sub.w.bytes());
      analysis::check_disjoint({{ws, ws_bytes, "workspace"},
                                {a_ptr, a_bytes, "operand a"},
                                {b_ptr, b_bytes, "operand b"},
                                {out_ptr, out_bytes, "output"}});
    }

    int failures = 0;
    bool replanned = false;
    for (;;) {
      try {
        mcudnn::convolution(handle_, type, sub, alpha, a_ptr, b_ptr,
                            micro_beta, out_ptr, segment.algo, ws, ws_bytes);
        break;
      } catch (const Error& e) {
        if (e.status() != Status::kExecutionFailed || options_.fail_fast) {
          throw;
        }
        ++failures;
        if (failures <= options_.max_retries) {
          stats_.count_retry();
          telemetry::FlightRecorder::note(
              telemetry::FlightEventKind::kDegradation, "executor.retry",
              telemetry::current_trace_id(), segment.algo, failures);
          UCUDNN_LOG_WARN << "transient kernel failure ("
                          << kernels::algo_name(type, segment.algo) << " on "
                          << sub.to_string() << "): " << e.what()
                          << "; retry " << failures << "/"
                          << options_.max_retries;
          continue;
        }
        ++replans;
        // Blacklisting is the flight recorder's "engine out" moment: record
        // the ladder step and preserve the surrounding ring automatically.
        telemetry::FlightRecorder::note(
            telemetry::FlightEventKind::kDegradation, "executor.blacklist",
            telemetry::current_trace_id(), segment.algo, replans);
        if (telemetry::FlightRecorder::armed()) {
          telemetry::FlightRecorder::instance().auto_dump("executor.blacklist");
        }
        std::vector<PlanSegment> tail = replan(segment.algo, done, replans);
        segments.resize(idx);
        segments.insert(segments.end(), tail.begin(), tail.end());
        replanned = true;
        break;
      }
    }
    if (replanned) continue;  // segments[idx] was replaced; run the new tail
    const double wall_ms = segment_timer.elapsed_ms();
    segments_metric().add(1);
    segment_ms_histogram().observe_ms(wall_ms);
    if (measure) {
      const double measured_ms =
          simulated ? dev.stream_clock_ms(handle_.stream()) - clock_start
                    : wall_ms;
      measure(idx, segment, measured_ms);
    }
    done += segment.batch;
    ++idx;
  }
}

}  // namespace ucudnn::core
