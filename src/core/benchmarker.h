// Micro-batch benchmarking (step 1 of the WR algorithm, §III-B): for every
// candidate micro-batch size b', evaluate all convolution algorithms with
// cudnnFindConvolution*Algorithm-style benchmarking, through the cache.
// Candidate sizes can be distributed over several homogeneous devices and
// evaluated concurrently (§III-D "parallel micro-configuration evaluation").
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/benchmark_cache.h"
#include "core/types.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::core {

/// Benchmark table of one kernel: perfs[i] holds the SUPPORTED algorithm
/// results (ascending time) for micro-batch size sizes[i].
struct MicroBenchmark {
  std::vector<std::int64_t> sizes;
  std::vector<std::vector<mcudnn::AlgoPerf>> perfs;
};

class Benchmarker {
 public:
  /// Handle 0 is the primary. Handles are normally homogeneous (one
  /// mini-batch's candidates only make sense on one device model), but each
  /// measurement is keyed by its measuring handle's device name, so a
  /// heterogeneous set cannot cross-pollute the cache.
  Benchmarker(std::vector<mcudnn::Handle> handles,
              std::shared_ptr<BenchmarkCache> cache);

  // The atomic accumulator suppresses the implicit moves the Planner needs.
  // Moving is only safe between runs, which is the only time it happens.
  Benchmarker(Benchmarker&& other) noexcept
      : handles_(std::move(other.handles_)),
        cache_(std::move(other.cache_)),
        total_benchmark_ms_(
            other.total_benchmark_ms_.load(std::memory_order_relaxed)) {}

  /// Benchmarks every candidate micro size of `problem`'s batch under
  /// `policy`. Results are cached by (device, kernel, problem, micro size).
  MicroBenchmark run(ConvKernelType type, const kernels::ConvProblem& problem,
                     BatchSizePolicy policy);

  /// Accumulated wall-clock time spent benchmarking (the §IV-B1
  /// "time to optimization" accounting). Atomic: concurrent run() calls on
  /// the same Benchmarker must not lose updates. Mirrored process-wide as
  /// the ucudnn.benchmark.total_ms metric.
  double total_benchmark_ms() const noexcept {
    return total_benchmark_ms_.load(std::memory_order_relaxed);
  }

  const std::shared_ptr<BenchmarkCache>& cache() const noexcept {
    return cache_;
  }

 private:
  std::vector<mcudnn::Handle> handles_;
  std::shared_ptr<BenchmarkCache> cache_;
  std::atomic<double> total_benchmark_ms_{0.0};
};

}  // namespace ucudnn::core
