// Planner — phase one of the paper's two-phase pipeline: turn a convolution
// problem into a ready-to-execute ExecutionPlan.
//
// The Planner owns everything decision-shaped that used to live inline in
// UcudnnHandle: WR optimization (per-kernel DP, §III-B), WD optimization
// (Pareto fronts + ILP over the recorded kernel set, §III-C/E), the whole
// graceful-degradation ladder (workspace-limit halving on OOM, ILP->DP,
// WD->WR), the workspace buffers the plans bind to, and a keyed PlanCache so
// steady-state convolution() calls fetch a finished plan instead of
// re-deriving strides and walking the WR entry table.
//
// Layering contract (tools/check_layering.py): the planner may include the
// plan IR but never the executor; execution-time policy reaches back into
// the planner only through the callback the facade wires up.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/benchmarker.h"
#include "core/options.h"
#include "core/plan.h"
#include "core/types.h"
#include "core/wd_optimizer.h"

namespace ucudnn::core {

/// Default per-kernel workspace limit when neither the framework nor
/// UCUDNN_WORKSPACE_LIMIT provides one (Caffe's 8 MiB default).
inline constexpr std::size_t kDefaultPerKernelLimit = std::size_t{8} << 20;

/// RAII buffer of tracked device memory.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::shared_ptr<device::Device> dev, std::size_t bytes,
               const std::string& tag);
  ~DeviceBuffer();
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  void* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return bytes_; }

 private:
  std::shared_ptr<device::Device> dev_;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Cache of finished ExecutionPlans, keyed by
/// kernel-type x problem x workspace-limit x device x blacklist-epoch (the
/// key string is assembled by the Planner). Blacklisting an algorithm bumps
/// the epoch, which both drops every stored plan and changes the key of all
/// future lookups, so a stale schedule can never be fetched again — while
/// shared_ptr ownership keeps the plan a mid-flight execution still holds
/// alive until it finishes.
class PlanCache {
 public:
  /// Returns the cached plan or nullptr; counts a hit or a miss.
  /// Thread-safe: worker handles of the serving layer (ROADMAP item 1)
  /// share one PlanCache across threads.
  std::shared_ptr<const ExecutionPlan> lookup(const std::string& key);
  void insert(const std::string& key,
              std::shared_ptr<const ExecutionPlan> plan);

  /// Invalidates every cached plan and starts a new blacklist epoch.
  void bump_epoch();
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  mutable Mutex mutex_{"PlanCache"};
  std::map<std::string, std::shared_ptr<const ExecutionPlan>> plans_
      GUARDED_BY(mutex_);
  // Atomics, not guarded counters: epoch() is read on every plan-key build
  // and hits()/misses() feed execution reports — thin reads must not take
  // the map's lock. bump_epoch orders the clear before the epoch publish.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// A plan plus its workspace binding resolved to the live buffer. The
/// pointer is only valid for the duration of the convolution call it was
/// fetched for (buffers may be reallocated by later degradation events).
struct PlannedConvolution {
  std::shared_ptr<const ExecutionPlan> plan;
  void* workspace = nullptr;
  std::size_t workspace_bytes = 0;
};

class Planner {
 public:
  /// `handle` and `options` are the facade's; `stats` is the facade-owned
  /// degradation ledger, shared with the Executor.
  Planner(mcudnn::Handle& handle, Options& options, Benchmarker benchmarker,
          DegradationStats& stats);

  /// Remembers the framework-provided workspace limit for a kernel
  /// (GetConvolution*Algorithm recording, done by the facade).
  void record_limit(ConvKernelType type, const kernels::ConvProblem& problem,
                    std::size_t limit);

  /// Returns a ready-to-run plan for the full mini-batch — from the
  /// PlanCache in steady state, otherwise by running WR/WD optimization
  /// (with the full degradation ladder) and lowering the result.
  /// `requests` is the facade's recorded kernel list (WD needs it).
  PlannedConvolution plan(ConvKernelType type,
                          const kernels::ConvProblem& problem,
                          const std::vector<KernelRequest>& requests);

  /// Retry-budget exhaustion policy, called back from the Executor via the
  /// facade: blacklists `algo` on this device, bumps the PlanCache epoch,
  /// queues the stale WR/WD state for deferred invalidation, re-benchmarks
  /// the unexecuted tail (counted in total_replan_benchmark_ms), re-runs the
  /// WR DP within the workspace already held, and returns splice-ready
  /// segments. `replans` is the per-execution re-plan ordinal; past the
  /// algorithm count the failure is systemic and kExecutionFailed is thrown.
  std::vector<PlanSegment> replan_tail(ConvKernelType type,
                                       const kernels::ConvProblem& problem,
                                       int algo, std::int64_t done,
                                       std::size_t ws_bytes, int replans);

  /// Drops WR entries / WD plans that reference blacklisted algorithms.
  /// Deferred to the next plan() entry (the facade calls this first) because
  /// the invalidating event happens mid-execution, while the stale plan's
  /// workspace pointer is still in use. `requests` pairs positionally with
  /// the frozen WD assignment list.
  void apply_pending_invalidations(const std::vector<KernelRequest>& requests);

  // --- WD control (§III-E) ---------------------------------------------

  /// Freezes `requests` and runs WD optimization now. Degrades per the
  /// ladder: arena OOM re-solves with a halved limit; an infeasible plan
  /// falls back to per-kernel WR.
  void finalize_wd(const std::vector<KernelRequest>& requests);
  bool wd_finalized() const noexcept { return wd_plan_.has_value(); }
  const WdPlan* wd_plan() const noexcept {
    return wd_plan_ ? &*wd_plan_ : nullptr;
  }
  bool wd_degraded_to_wr() const noexcept { return wd_degraded_to_wr_; }

  // --- introspection ----------------------------------------------------

  /// The configuration that will run / ran for this kernel (null before
  /// optimization).
  const Configuration* configuration_for(
      ConvKernelType type, const kernels::ConvProblem& problem,
      const std::vector<KernelRequest>& requests) const;

  /// Which optimizer produced the kernel's current division — "wr_dp",
  /// "wd_ilp", "wd_mckp_dp", with degradation prefixes/suffixes such as
  /// "wd_ilp->mckp_dp" (ILP budget exhausted), "wd_infeasible->wr_dp", or
  /// "wr_dp(degraded)" (workspace OOM halving). Feeds execution reports.
  std::string provenance_for(ConvKernelType type,
                             const kernels::ConvProblem& problem,
                             const std::vector<KernelRequest>& requests) const;

  /// The per-kernel workspace limit the WR DP runs under: the
  /// UCUDNN_WORKSPACE_LIMIT override, else the framework-recorded limit,
  /// else the 8 MiB default.
  std::size_t effective_limit(ConvKernelType type,
                              const kernels::ConvProblem& problem) const;

  Benchmarker& benchmarker() noexcept { return benchmarker_; }
  const Benchmarker& benchmarker() const noexcept { return benchmarker_; }
  PlanCache& plan_cache() noexcept { return plan_cache_; }
  const PlanCache& plan_cache() const noexcept { return plan_cache_; }

  /// Wall time spent in DP/ILP optimization (excludes benchmarking).
  /// Atomic thin read; mirrored process-wide as ucudnn.planner.optimize_ms.
  double total_optimize_ms() const noexcept {
    return total_optimize_ms_.load(std::memory_order_relaxed);
  }
  /// Wall time spent re-benchmarking inside tail re-plans. Kept separate
  /// from Benchmarker::total_benchmark_ms (which only counts cache misses)
  /// so the §IV-B1 overhead accounting cannot under-report the replan path.
  /// Atomic thin read; mirrored as ucudnn.planner.replan_benchmark_ms.
  double total_replan_benchmark_ms() const noexcept {
    return total_replan_benchmark_ms_.load(std::memory_order_relaxed);
  }

 private:
  struct WrEntry {
    Configuration config;
    DeviceBuffer workspace;
    std::string provenance;  // "wr_dp", or "wr_dp(degraded)" after OOM halving
  };

  std::string wr_key(ConvKernelType type, const kernels::ConvProblem& problem,
                     std::size_t limit) const;
  std::string plan_key(ConvKernelType type,
                       const kernels::ConvProblem& problem,
                       std::size_t limit) const;
  WrEntry& wr_entry(ConvKernelType type, const kernels::ConvProblem& problem,
                    const std::vector<KernelRequest>& requests);
  const WdAssignment* wd_assignment(
      ConvKernelType type, const kernels::ConvProblem& problem,
      const std::vector<KernelRequest>& requests) const;
  PlannedConvolution resolve(std::shared_ptr<const ExecutionPlan> plan,
                             std::size_t limit);
  void note_wd_fallback(ConvKernelType type,
                        const kernels::ConvProblem& problem);
  void charge_optimize_ms(double ms);
  void charge_replan_benchmark_ms(double ms);

  mcudnn::Handle& handle_;
  Options& options_;
  DegradationStats& stats_;
  Benchmarker benchmarker_;
  std::map<std::string, std::size_t> request_limits_;  // wr_key(limit=0) -> limit
  std::map<std::string, WrEntry> wr_entries_;
  DeviceBuffer shared_ws_;  // used when options_.share_wr_workspace
  std::optional<WdPlan> wd_plan_;
  DeviceBuffer wd_arena_;
  bool wd_degraded_to_wr_ = false;  // infeasible WD plan -> per-kernel WR
  PlanCache plan_cache_;
  std::vector<std::pair<ConvKernelType, int>> pending_invalidations_;
  // Warn-once ledger for WD "unrecorded kernel" fallbacks: first occurrence
  // per kernel logs, repeats only count (stats_.wd_unrecorded_fallbacks).
  std::map<std::string, std::uint64_t> wd_fallbacks_;
  // Atomic: a handle shared across threads must not lose timing updates
  // (the old plain doubles raced).
  std::atomic<double> total_optimize_ms_{0.0};
  std::atomic<double> total_replan_benchmark_ms_{0.0};
};

}  // namespace ucudnn::core
