// Core μ-cuDNN data model: micro-configurations, configurations, batch-size
// policies and workspace policies — the vocabulary of §III of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kernels/conv_problem.h"

namespace ucudnn::core {

/// One micro-batch assignment: run `algo` on `batch` samples. A convolution
/// kernel's "configuration" is a list of these covering the mini-batch
/// (e.g. <c(64, FFT), c(64, FFT), c(128, GEMM)> in the paper's notation).
struct MicroConfig {
  int algo = -1;
  std::int64_t batch = 0;
  double time_ms = 0.0;
  std::size_t workspace = 0;

  bool operator==(const MicroConfig&) const = default;
};

/// A full division of the mini-batch. Micro-batches execute sequentially and
/// share one workspace, so the configuration's footprint is the MAX of the
/// micro workspaces while its cost is the SUM of the micro times.
struct Configuration {
  std::vector<MicroConfig> micro;
  std::int64_t batch = 0;
  double time_ms = 0.0;
  std::size_t workspace = 0;

  void append(const MicroConfig& m) {
    micro.push_back(m);
    batch += m.batch;
    time_ms += m.time_ms;
    workspace = std::max(workspace, m.workspace);
  }

  bool empty() const noexcept { return micro.empty(); }
  std::size_t size() const noexcept { return micro.size(); }

  /// Human-readable form like "[64:FFT, 64:FFT, 128:GEMM]".
  std::string to_string(ConvKernelType type) const;
};

/// §III-D batch-size policies: which micro-batch sizes get benchmarked.
enum class BatchSizePolicy { kAll, kPowerOfTwo, kUndivided };

constexpr std::string_view to_string(BatchSizePolicy p) noexcept {
  switch (p) {
    case BatchSizePolicy::kAll: return "all";
    case BatchSizePolicy::kPowerOfTwo: return "powerOfTwo";
    case BatchSizePolicy::kUndivided: return "undivided";
  }
  return "unknown";
}

/// Parses "all" / "powerOfTwo" / "undivided" (throws kInvalidValue).
BatchSizePolicy parse_batch_size_policy(const std::string& text);

/// §III-A workspace policies.
enum class WorkspacePolicy { kWR, kWD };

constexpr std::string_view to_string(WorkspacePolicy p) noexcept {
  return p == WorkspacePolicy::kWR ? "WR" : "WD";
}

WorkspacePolicy parse_workspace_policy(const std::string& text);

/// Candidate micro-batch sizes for a mini-batch of `batch` under `policy`,
/// ascending. powerOfTwo additionally contains `batch` itself when it is not
/// a power of two, so every mini-batch remains coverable.
std::vector<std::int64_t> candidate_micro_sizes(BatchSizePolicy policy,
                                                std::int64_t batch);

/// Counters for every graceful-degradation event the planner/executor stack
/// performed (ROADMAP robustness north-star: a recoverable resource condition
/// must never abort a training run). Owned by the UcudnnHandle facade, shared
/// by reference with the Planner and the Executor, and logged at teardown
/// next to the audit report.
///
/// The fields stay public (tests and reports read them per handle), but
/// increments go through the count_* methods, which also mirror each event
/// into the process-wide MetricsRegistry under ucudnn.degradation.*.
struct DegradationStats {
  std::uint64_t retries = 0;                 // transient kernel failures retried
  std::uint64_t degraded_allocations = 0;    // workspace limits halved on OOM
  std::uint64_t blacklisted_algorithms = 0;  // algos retired after retries
  std::uint64_t solver_fallbacks = 0;        // ILP->DP and WD->WR fallbacks
  std::uint64_t cache_quarantines = 0;       // corrupt cache files quarantined
  std::uint64_t wd_unrecorded_fallbacks = 0; // WD misses routed to WR

  void count_retry();
  void count_degraded_allocation();
  void count_blacklisted_algorithm();
  void count_solver_fallback();
  void count_cache_quarantine();
  void count_wd_unrecorded_fallback();

  bool any() const noexcept {
    return retries != 0 || degraded_allocations != 0 ||
           blacklisted_algorithms != 0 || solver_fallbacks != 0 ||
           cache_quarantines != 0 || wd_unrecorded_fallbacks != 0;
  }
  std::string to_string() const;
};

/// One convolution kernel instance a framework asked about: the unit of WD
/// optimization ("kernel" in §III-C).
struct KernelRequest {
  ConvKernelType type = ConvKernelType::kForward;
  kernels::ConvProblem problem;
  std::string label;  // e.g. "conv2(Forward)" — used in reports

  bool matches(ConvKernelType t, const kernels::ConvProblem& p) const {
    return type == t && problem == p;
  }
};

}  // namespace ucudnn::core
