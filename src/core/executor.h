// Executor — phase two of the pipeline: run an ExecutionPlan.
//
// The executor walks a plan's segments, slicing operands by the precomputed
// offsets and applying the BackwardFilter beta-accumulation flag. All policy
// it needs at runtime is either baked into the plan or injected: when an
// algorithm keeps failing past the retry budget, the ReplanFn callback (wired
// by the facade to Planner::replan_tail) supplies splice-ready replacement
// segments for the unexecuted tail.
//
// Layering contract (tools/check_layering.py): the executor depends on the
// plan IR only — it must not include the planner.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/options.h"
#include "core/plan.h"
#include "core/types.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::core {

/// Re-plans the not-yet-executed tail after `algo` failed past the retry
/// budget: `done` samples are complete, `replans` is the per-execution
/// ordinal (1-based). Returns segments covering the remaining batch, with
/// offsets continuing from `done`. Throws when the failure is systemic.
using ReplanFn = std::function<std::vector<PlanSegment>(
    int algo, std::int64_t done, int replans)>;

/// Per-segment measurement sink (execution reports): `index` is the position
/// in the — possibly re-planned — segment list, `segment` the schedule entry
/// that ran, `measured_ms` the cost of the completed execution (including
/// retries). On a simulated device that is the device-clock delta, so
/// virtual-mode measurements agree with the analytic model the planner's
/// estimates come from; on a measured device it is wall clock.
using MeasureFn = std::function<void(std::size_t index,
                                     const PlanSegment& segment,
                                     double measured_ms)>;

class Executor {
 public:
  /// `stats` is the facade-owned degradation ledger, shared with the Planner.
  Executor(mcudnn::Handle& handle, const Options& options,
           DegradationStats& stats);

  /// Executes every segment of `plan` against the bound workspace. A failed
  /// mcudnn::convolution throws before touching any operand byte, so
  /// retrying (or splicing replacement segments for the remaining
  /// micro-batches) cannot change the values already produced. `measure`
  /// (optional) receives every completed segment's measured time.
  void run(const ExecutionPlan& plan, float alpha, const float* a,
           const float* b, float beta, float* out, void* ws,
           std::size_t ws_bytes, const ReplanFn& replan,
           const MeasureFn& measure = {});

 private:
  mcudnn::Handle& handle_;
  const Options& options_;
  DegradationStats& stats_;
};

}  // namespace ucudnn::core
