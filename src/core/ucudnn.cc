#include "core/ucudnn.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/alias_check.h"
#include "analysis/workspace_audit.h"
#include "common/logging.h"
#include "common/timer.h"

namespace ucudnn::core {

namespace {

std::vector<mcudnn::Handle> make_bench_handles(
    const std::shared_ptr<device::Device>& primary) {
  return {mcudnn::Handle(primary)};
}

std::vector<mcudnn::Handle> make_bench_handles(const device::Node& node,
                                               int count) {
  std::vector<mcudnn::Handle> handles;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(count), node.device_count());
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.emplace_back(node.device(i));
  }
  return handles;
}

std::shared_ptr<BenchmarkCache> make_cache(const Options& options) {
  auto cache = std::make_shared<BenchmarkCache>();
  if (!options.cache_path.empty()) cache->load_file(options.cache_path);
  return cache;
}

}  // namespace

DeviceBuffer::DeviceBuffer(std::shared_ptr<device::Device> dev,
                           std::size_t bytes, const std::string& tag)
    : dev_(std::move(dev)), bytes_(bytes) {
  if (bytes_ > 0) ptr_ = dev_->allocate(bytes_, tag);
}

DeviceBuffer::~DeviceBuffer() {
  if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : dev_(std::move(other.dev_)),
      ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
    dev_ = std::move(other.dev_);
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

UcudnnHandle::UcudnnHandle()
    : UcudnnHandle(std::make_shared<device::Device>(device::host_cpu_spec()),
                   Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev)
    : UcudnnHandle(std::move(dev), Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev, Options options)
    : handle_(dev),
      options_(std::move(options)),
      benchmarker_(make_bench_handles(dev), make_cache(options_)) {}

UcudnnHandle::UcudnnHandle(const device::Node& node, Options options)
    : handle_(node.device(0)),
      options_(std::move(options)),
      benchmarker_(make_bench_handles(node, options_.benchmark_devices),
                   make_cache(options_)) {}

UcudnnHandle::~UcudnnHandle() {
  if (analysis::workspace_audit_enabled()) analysis::log_audit_report();
  if (!options_.cache_path.empty()) {
    try {
      benchmarker_.cache()->save_file(options_.cache_path);
    } catch (const std::exception& e) {
      UCUDNN_LOG_WARN << "failed to persist benchmark cache: " << e.what();
    }
  }
}

void UcudnnHandle::set_next_kernel_label(std::string label) {
  next_label_ = std::move(label);
}

std::string UcudnnHandle::label_for(ConvKernelType type,
                                    const kernels::ConvProblem& problem) const {
  if (!next_label_.empty()) {
    return next_label_ + "(" + std::string(to_string(type)) + ")";
  }
  std::ostringstream os;
  os << "kernel" << requests_.size() << "(" << to_string(type) << ")";
  (void)problem;
  return os.str();
}

std::size_t UcudnnHandle::workspace_size(ConvKernelType type,
                                         const kernels::ConvProblem& problem,
                                         int algo) {
  (void)type;
  (void)problem;
  (void)algo;
  return 0;  // μ-cuDNN manages workspace internally.
}

std::string UcudnnHandle::wr_key(ConvKernelType type,
                                 const kernels::ConvProblem& problem,
                                 std::size_t limit) const {
  std::ostringstream os;
  os << to_string(type) << "|" << std::hex << problem.hash() << "|" << limit
     << "|" << to_string(options_.batch_size_policy);
  return os.str();
}

std::size_t UcudnnHandle::effective_limit(
    ConvKernelType type, const kernels::ConvProblem& problem) const {
  if (options_.workspace_limit) return *options_.workspace_limit;
  const auto it = request_limits_.find(wr_key(type, problem, 0));
  if (it != request_limits_.end()) return it->second;
  return kDefaultPerKernelLimit;
}

int UcudnnHandle::get_algorithm(ConvKernelType type,
                                const kernels::ConvProblem& problem,
                                mcudnn::AlgoPreference preference,
                                std::size_t ws_limit) {
  // After WD finalization further queries are ignored (§III-E).
  if (wd_finalized()) return kVirtualAlgo;

  const std::size_t limit =
      preference == mcudnn::AlgoPreference::kNoWorkspace ? 0
      : preference == mcudnn::AlgoPreference::kPreferFastest
          ? std::numeric_limits<std::size_t>::max()
          : ws_limit;
  // Remember the framework-provided limit keyed by kernel identity.
  request_limits_[wr_key(type, problem, 0)] = limit;

  // Record unique kernels for WD.
  const bool seen = std::any_of(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  if (!seen) {
    requests_.push_back(KernelRequest{type, problem, label_for(type, problem)});
  }
  next_label_.clear();
  return kVirtualAlgo;
}

MicroBenchmark UcudnnHandle::benchmark(ConvKernelType type,
                                       const kernels::ConvProblem& problem,
                                       BatchSizePolicy policy) {
  return benchmarker_.run(type, problem, policy);
}

UcudnnHandle::WrEntry& UcudnnHandle::wr_entry(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  // Frameworks that never call GetConvolution*Algorithm (the TensorFlow
  // integration style, §IV-B2) are recorded on first execution instead.
  const bool seen = std::any_of(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  if (!seen) {
    requests_.push_back(KernelRequest{type, problem, label_for(type, problem)});
    next_label_.clear();
  }
  const std::size_t limit = effective_limit(type, problem);
  const std::string key = wr_key(type, problem, limit);
  auto it = wr_entries_.find(key);
  if (it != wr_entries_.end()) return it->second;

  const MicroBenchmark bench =
      benchmarker_.run(type, problem, options_.batch_size_policy);
  Timer timer;
  Configuration config = optimize_wr(bench, problem.batch(), limit);
  total_optimize_ms_ += timer.elapsed_ms();
  UCUDNN_LOG_INFO << "WR " << to_string(type) << " " << problem.to_string()
                  << " limit=" << limit << " -> " << config.to_string(type)
                  << " time=" << config.time_ms
                  << "ms ws=" << config.workspace;

  // Tag workspace memory with the layer label when we know it.
  std::string tag = "workspace";
  for (const auto& request : requests_) {
    if (request.matches(type, problem)) {
      tag = request.label + ":ws";
      break;
    }
  }
  DeviceBuffer ws;
  if (options_.share_wr_workspace) {
    // Sequential execution: one shared buffer, grown to the largest need.
    if (config.workspace > shared_ws_.size()) {
      shared_ws_ = DeviceBuffer(handle_.device_ptr(), config.workspace,
                                "shared:ws");
    }
  } else {
    ws = DeviceBuffer(handle_.device_ptr(), config.workspace, tag);
  }
  auto [inserted, ok] =
      wr_entries_.emplace(key, WrEntry{std::move(config), std::move(ws)});
  (void)ok;
  return inserted->second;
}

void UcudnnHandle::finalize_wd() {
  if (wd_finalized()) return;
  check(options_.workspace_policy == WorkspacePolicy::kWD,
        Status::kBadParam, "finalize_wd requires UCUDNN_WORKSPACE_POLICY=wd");
  Timer timer;
  WdPlan plan =
      optimize_wd(benchmarker_, requests_, options_.total_workspace_size,
                  options_.batch_size_policy, options_.wd_solver);
  total_optimize_ms_ += timer.elapsed_ms();
  UCUDNN_LOG_INFO << "WD finalized: " << requests_.size() << " kernels, "
                  << plan.num_variables << " ILP variables, arena "
                  << plan.total_workspace << " bytes, solve "
                  << plan.solve_ms << " ms";
  wd_arena_ = DeviceBuffer(handle_.device_ptr(), plan.total_workspace,
                           "wd_arena");
  wd_plan_ = std::move(plan);
}

const WdAssignment* UcudnnHandle::wd_assignment(
    ConvKernelType type, const kernels::ConvProblem& problem) const {
  if (!wd_plan_) return nullptr;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (requests_[i].matches(type, problem)) {
      return &wd_plan_->assignments[i];
    }
  }
  return nullptr;
}

const Configuration* UcudnnHandle::configuration_for(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  if (options_.workspace_policy == WorkspacePolicy::kWD) {
    const WdAssignment* assignment = wd_assignment(type, problem);
    return assignment ? &assignment->config : nullptr;
  }
  const std::size_t limit = effective_limit(type, problem);
  const auto it = wr_entries_.find(wr_key(type, problem, limit));
  return it != wr_entries_.end() ? &it->second.config : nullptr;
}

void UcudnnHandle::convolution(ConvKernelType type,
                               const kernels::ConvProblem& problem, float alpha,
                               const float* a, const float* b, float beta,
                               float* out) {
  if (options_.workspace_policy == WorkspacePolicy::kWD) {
    if (!wd_finalized()) finalize_wd();
    if (const WdAssignment* assignment = wd_assignment(type, problem)) {
      char* arena = static_cast<char*>(wd_arena_.data());
      execute_configuration(type, problem, assignment->config, alpha, a, b,
                            beta, out,
                            arena == nullptr ? nullptr
                                             : arena + assignment->offset,
                            assignment->config.workspace);
      return;
    }
    UCUDNN_LOG_WARN << "WD: unrecorded kernel " << problem.to_string()
                    << ", falling back to WR";
  }
  WrEntry& entry = wr_entry(type, problem);
  if (options_.share_wr_workspace) {
    execute_configuration(type, problem, entry.config, alpha, a, b, beta, out,
                          shared_ws_.data(), shared_ws_.size());
  } else {
    execute_configuration(type, problem, entry.config, alpha, a, b, beta, out,
                          entry.workspace.data(), entry.workspace.size());
  }
}

void UcudnnHandle::execute_configuration(ConvKernelType type,
                                         const kernels::ConvProblem& problem,
                                         const Configuration& config,
                                         float alpha, const float* a,
                                         const float* b, float beta, float* out,
                                         void* ws, std::size_t ws_bytes) {
  check(config.batch == problem.batch(), Status::kInternalError,
        "configuration does not cover the mini-batch");

  const analysis::ScopedAuditContext audit_context(
      options_.workspace_policy == WorkspacePolicy::kWD ? "WD" : "WR");
  if (analysis::workspace_audit_enabled()) {
    // BackwardFilter beta-accumulates dw across micro-batches, so workspace
    // aliasing any operand (or the operands aliasing the accumulator)
    // silently corrupts gradients. All live spans must be disjoint.
    const std::size_t a_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kBackwardData ? problem.y.bytes()
                                              : problem.x.bytes());
    const std::size_t b_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kBackwardFilter ? problem.y.bytes()
                                                : problem.w.bytes());
    const std::size_t out_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kForward        ? problem.y.bytes()
        : type == ConvKernelType::kBackwardData ? problem.x.bytes()
                                                : problem.w.bytes());
    analysis::check_disjoint({{ws, ws_bytes, "workspace"},
                              {a, a_bytes, "operand a"},
                              {b, b_bytes, "operand b"},
                              {out, out_bytes, "output"}});
  }

  const std::int64_t image_x = problem.x.c * problem.x.h * problem.x.w;
  const std::int64_t image_y = problem.y.c * problem.y.h * problem.y.w;

  // Per-micro-batch strides of the sliced operands (0 = operand not sliced).
  std::int64_t a_stride = 0, out_stride = 0;
  switch (type) {
    case ConvKernelType::kForward:
      a_stride = image_x;
      out_stride = image_y;
      break;
    case ConvKernelType::kBackwardData:
      a_stride = image_y;
      out_stride = image_x;
      break;
    case ConvKernelType::kBackwardFilter:
      a_stride = image_x;  // x slices; dy (operand b) slices via b_stride
      out_stride = 0;      // dw accumulates in place
      break;
  }
  const std::int64_t b_stride =
      type == ConvKernelType::kBackwardFilter ? image_y : 0;

  std::int64_t offset = 0;
  bool first = true;
  for (const MicroConfig& micro : config.micro) {
    const kernels::ConvProblem sub = problem.with_batch(micro.batch);
    const float* a_ptr = a == nullptr ? nullptr : a + offset * a_stride;
    const float* b_ptr = b == nullptr ? nullptr : b + offset * b_stride;
    float* out_ptr = out == nullptr ? nullptr : out + offset * out_stride;
    // BackwardFilter accumulates across micro-batches (output scale trick).
    const float micro_beta =
        type == ConvKernelType::kBackwardFilter && !first ? 1.0f : beta;
    mcudnn::convolution(handle_, type, sub, alpha, a_ptr, b_ptr, micro_beta,
                        out_ptr, micro.algo, ws, ws_bytes);
    offset += micro.batch;
    first = false;
  }
}

// --- cuDNN-shaped Status API ------------------------------------------------

Status mcudnnGetConvolutionWorkspaceSize(UcudnnHandle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes) {
  UCUDNN_API_BODY({
    check_param(bytes != nullptr, "null output pointer");
    *bytes = handle.workspace_size(
        type, mcudnn::make_problem(type, in, w, conv, out), algo);
  });
}

Status mcudnnGetConvolutionAlgorithm(UcudnnHandle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     mcudnn::AlgoPreference preference,
                                     std::size_t ws_limit, int* algo) {
  UCUDNN_API_BODY({
    check_param(algo != nullptr, "null output pointer");
    *algo = handle.get_algorithm(
        type, mcudnn::make_problem(type, in, w, conv, out), preference,
        ws_limit);
  });
}

Status mcudnnConvolutionForward(UcudnnHandle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kForward,
                       mcudnn::make_problem(ConvKernelType::kForward, x_desc,
                                            w_desc, conv, y_desc),
                       alpha, x, w, beta, y);
  });
}

Status mcudnnConvolutionBackwardData(UcudnnHandle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardData,
                       mcudnn::make_problem(ConvKernelType::kBackwardData,
                                            dy_desc, w_desc, conv, dx_desc),
                       alpha, dy, w, beta, dx);
  });
}

Status mcudnnConvolutionBackwardFilter(UcudnnHandle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardFilter,
                       mcudnn::make_problem(ConvKernelType::kBackwardFilter,
                                            x_desc, dw_desc, conv, dy_desc),
                       alpha, x, dy, beta, dw);
  });
}

}  // namespace ucudnn::core
