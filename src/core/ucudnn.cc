#include "core/ucudnn.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/workspace_audit.h"
#include "common/logging.h"
#include "kernels/registry.h"
#include "telemetry/metrics.h"

namespace ucudnn::core {

namespace {

std::vector<mcudnn::Handle> make_bench_handles(
    const std::shared_ptr<device::Device>& primary) {
  return {mcudnn::Handle(primary)};
}

std::vector<mcudnn::Handle> make_bench_handles(const device::Node& node,
                                               int count) {
  std::vector<mcudnn::Handle> handles;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(count), node.device_count());
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.emplace_back(node.device(i));
  }
  return handles;
}

// Member-initializer-list validation: `node.device(0)` on an empty node
// would die with a bare std::out_of_range before any constructor body runs.
const std::shared_ptr<device::Device>& primary_device(
    const device::Node& node) {
  check(node.device_count() > 0, Status::kBadParam,
        "UcudnnHandle requires a node with at least one device");
  return node.device(0);
}

Options validated(Options options) {
  check(options.benchmark_devices >= 1, Status::kBadParam,
        "Options::benchmark_devices must be >= 1 (got " +
            std::to_string(options.benchmark_devices) + ")");
  check(options.max_retries >= 0, Status::kBadParam,
        "Options::max_retries must be >= 0 (got " +
            std::to_string(options.max_retries) + ")");
  check(options.ilp_max_nodes >= 0, Status::kBadParam,
        "Options::ilp_max_nodes must be >= 0 (got " +
            std::to_string(options.ilp_max_nodes) + ")");
  return options;
}

}  // namespace

UcudnnHandle::UcudnnHandle()
    : UcudnnHandle(std::make_shared<device::Device>(device::host_cpu_spec()),
                   Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev)
    : UcudnnHandle(std::move(dev), Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev, Options options)
    : handle_(dev),
      options_(validated(std::move(options))),
      planner_(handle_, options_,
               Benchmarker(make_bench_handles(dev),
                           std::make_shared<BenchmarkCache>()),
               stats_),
      executor_(handle_, options_, stats_) {
  init_cache_from_file();
}

UcudnnHandle::UcudnnHandle(const device::Node& node, Options options)
    : handle_(primary_device(node)),
      options_(validated(std::move(options))),
      planner_(handle_, options_,
               Benchmarker(make_bench_handles(node, options_.benchmark_devices),
                           std::make_shared<BenchmarkCache>()),
               stats_),
      executor_(handle_, options_, stats_) {
  init_cache_from_file();
}

void UcudnnHandle::init_cache_from_file() {
  if (options_.cache_path.empty()) return;
  // Loading happens here (not in a free helper) so a quarantined file is
  // visible in the handle's degradation stats.
  const CacheLoadResult result =
      planner_.benchmarker().cache()->load_file(options_.cache_path);
  if (result == CacheLoadResult::kQuarantined) stats_.count_cache_quarantine();
}

UcudnnHandle::~UcudnnHandle() {
  if (const std::string& report_path = telemetry::report_file_path();
      !report_path.empty()) {
    try {
      telemetry::write_report_file(execution_report(), report_path);
    } catch (const std::exception& e) {
      UCUDNN_LOG_WARN << "failed to write execution report: " << e.what();
    }
  }
  if (analysis::workspace_audit_enabled()) analysis::log_audit_report();
  if (stats_.any()) {
    UCUDNN_LOG_WARN << "degradation stats: " << stats_.to_string();
  }
  if (telemetry::telemetry_enabled()) {
    // One source of truth: the process-wide registry every per-handle
    // counter mirrors into (docs/observability.md).
    UCUDNN_LOG_INFO << "telemetry metrics snapshot:\n"
                    << telemetry::MetricsRegistry::instance().to_text();
  }
  if (!options_.cache_path.empty()) {
    try {
      planner_.benchmarker().cache()->save_file(options_.cache_path);
    } catch (const std::exception& e) {
      UCUDNN_LOG_WARN << "failed to persist benchmark cache: " << e.what();
    }
  }
}

void UcudnnHandle::set_next_kernel_label(std::string label) {
  next_label_ = std::move(label);
}

std::string UcudnnHandle::label_for(ConvKernelType type,
                                    const kernels::ConvProblem& problem) const {
  if (!next_label_.empty()) {
    return next_label_ + "(" + std::string(to_string(type)) + ")";
  }
  std::ostringstream os;
  os << "kernel" << requests_.size() << "(" << to_string(type) << ")";
  (void)problem;
  return os.str();
}

void UcudnnHandle::record_kernel(ConvKernelType type,
                                 const kernels::ConvProblem& problem) {
  const bool seen = std::any_of(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  if (!seen) {
    requests_.push_back(KernelRequest{type, problem, label_for(type, problem)});
  }
  next_label_.clear();
}

std::size_t UcudnnHandle::workspace_size(ConvKernelType type,
                                         const kernels::ConvProblem& problem,
                                         int algo) {
  (void)type;
  (void)problem;
  (void)algo;
  return 0;  // μ-cuDNN manages workspace internally.
}

int UcudnnHandle::get_algorithm(ConvKernelType type,
                                const kernels::ConvProblem& problem,
                                mcudnn::AlgoPreference preference,
                                std::size_t ws_limit) {
  // After WD finalization further queries are ignored (§III-E).
  if (wd_finalized()) return kVirtualAlgo;

  const std::size_t limit =
      preference == mcudnn::AlgoPreference::kNoWorkspace ? 0
      : preference == mcudnn::AlgoPreference::kPreferFastest
          ? std::numeric_limits<std::size_t>::max()
          : ws_limit;
  // Remember the framework-provided limit keyed by kernel identity.
  planner_.record_limit(type, problem, limit);
  // Record unique kernels for WD.
  record_kernel(type, problem);
  return kVirtualAlgo;
}

MicroBenchmark UcudnnHandle::benchmark(ConvKernelType type,
                                       const kernels::ConvProblem& problem,
                                       BatchSizePolicy policy) {
  return planner_.benchmarker().run(type, problem, policy);
}

void UcudnnHandle::finalize_wd() { planner_.finalize_wd(requests_); }

const Configuration* UcudnnHandle::configuration_for(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  return planner_.configuration_for(type, problem, requests_);
}

UcudnnHandle::KernelExecRecord& UcudnnHandle::exec_record(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  // The request always exists here: convolution() records the kernel first.
  const auto req = std::find_if(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  check(req != requests_.end(), Status::kInternalError,
        "exec_record called for an unrecorded kernel");
  for (auto& [label, record] : exec_records_) {
    if (label == req->label) return record;
  }
  auto& entry = exec_records_.emplace_back(req->label, KernelExecRecord{});
  entry.second.type = type;
  entry.second.problem = problem;
  return entry.second;
}

void UcudnnHandle::convolution(ConvKernelType type,
                               const kernels::ConvProblem& problem, float alpha,
                               const float* a, const float* b, float beta,
                               float* out) {
  planner_.apply_pending_invalidations(requests_);
  record_kernel(type, problem);
  const PlannedConvolution planned = planner_.plan(type, problem, requests_);

  // Execution-report bookkeeping: refresh the record when the plan changed
  // (first call, re-optimization, or epoch bump), which resets segment stats.
  KernelExecRecord& record = exec_record(type, problem);
  if (record.plan != planned.plan) {
    record.plan = planned.plan;
    record.provenance = planner_.provenance_for(type, problem, requests_);
    record.ws_limit = planned.plan->binding.kind == WorkspaceKind::kWdArena
                          ? options_.total_workspace_size
                          : planner_.effective_limit(type, problem);
    record.segments.clear();
    record.segments.reserve(planned.plan->segments.size());
    for (const PlanSegment& seg : planned.plan->segments) {
      SegmentStat s;
      s.batch = seg.batch;
      s.algo = seg.algo;
      s.accumulate = seg.accumulate;
      s.workspace = seg.workspace;
      s.estimated_ms = seg.time_ms;
      record.segments.push_back(s);
    }
  }
  ++record.executions;
  const std::uint64_t replans_before = record.replans;
  std::size_t executed = 0;

  executor_.run(
      *planned.plan, alpha, a, b, beta, out, planned.workspace,
      planned.workspace_bytes,
      [&](int algo, std::int64_t done, int replans) {
        ++record.replans;
        return planner_.replan_tail(type, problem, algo, done,
                                    planned.workspace_bytes, replans);
      },
      [&](std::size_t idx, const PlanSegment& seg, double measured_ms) {
        if (idx >= record.segments.size()) record.segments.resize(idx + 1);
        SegmentStat& s = record.segments[idx];
        if (s.batch != seg.batch || s.algo != seg.algo) {
          // A tail re-plan replaced the schedule at this index; restart its
          // stats from the replacement segment's estimate.
          s = SegmentStat{};
          s.batch = seg.batch;
          s.algo = seg.algo;
          s.accumulate = seg.accumulate;
          s.workspace = seg.workspace;
          s.estimated_ms = seg.time_ms;
        }
        s.measured_ms_total += measured_ms;
        ++s.runs;
        executed = std::max(executed, idx + 1);
      });

  if (record.replans != replans_before && record.segments.size() > executed) {
    // The re-planned schedule is shorter than the recorded one; the stale
    // tail slots were never run under the new plan.
    record.segments.resize(executed);
  }
}

telemetry::ExecutionReport UcudnnHandle::execution_report() const {
  telemetry::ExecutionReport report;
  report.device = handle_.device().spec().name;
  report.policy = std::string(to_string(options_.workspace_policy));
  report.batch_size_policy =
      std::string(to_string(options_.batch_size_policy));
  const PlanCache& cache = planner_.plan_cache();
  report.plan_cache_hits = cache.hits();
  report.plan_cache_misses = cache.misses();
  report.plan_cache_epoch = cache.epoch();
  if (stats_.any()) report.degradation = stats_.to_string();

  report.kernels.reserve(exec_records_.size());
  for (const auto& [label, record] : exec_records_) {
    telemetry::KernelReport kr;
    kr.label = label;
    kr.kernel_type = std::string(to_string(record.type));
    kr.problem = record.problem.to_string();
    if (record.plan) {
      kr.plan = record.plan->to_string();
      kr.policy =
          record.plan->binding.kind == WorkspaceKind::kWdArena ? "WD" : "WR";
      kr.workspace_kind = std::string(to_string(record.plan->binding.kind));
      kr.workspace_declared = record.plan->workspace;
    }
    kr.provenance = record.provenance;
    kr.workspace_limit = record.ws_limit;
    kr.executions = record.executions;
    kr.replans = record.replans;
    kr.segments.reserve(record.segments.size());
    for (const SegmentStat& s : record.segments) {
      telemetry::SegmentReport sr;
      sr.batch = s.batch;
      sr.algo = s.algo;
      sr.algo_name = s.algo < 0 ? "?"
                                : std::string(kernels::algo_name(
                                      record.type, s.algo));
      sr.accumulate = s.accumulate;
      sr.workspace_bytes = s.workspace;
      sr.estimated_ms = s.estimated_ms;
      sr.measured_ms_total = s.measured_ms_total;
      sr.runs = s.runs;
      kr.segments.push_back(std::move(sr));
    }
    report.kernels.push_back(std::move(kr));
  }

  for (const auto& [kernel, stats] : analysis::audit_report()) {
    telemetry::WorkspaceAuditReport ar;
    ar.kernel = kernel;
    ar.declared_bytes = stats.declared_bytes;
    ar.touched_bytes = stats.max_touched;
    ar.runs = stats.runs;
    report.audit.push_back(std::move(ar));
  }
  return report;
}

// --- cuDNN-shaped Status API ------------------------------------------------

Status mcudnnGetConvolutionWorkspaceSize(UcudnnHandle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes) {
  UCUDNN_API_BODY({
    check_param(bytes != nullptr, "null output pointer");
    *bytes = handle.workspace_size(
        type, mcudnn::make_problem(type, in, w, conv, out), algo);
  });
}

Status mcudnnGetConvolutionAlgorithm(UcudnnHandle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     mcudnn::AlgoPreference preference,
                                     std::size_t ws_limit, int* algo) {
  UCUDNN_API_BODY({
    check_param(algo != nullptr, "null output pointer");
    *algo = handle.get_algorithm(
        type, mcudnn::make_problem(type, in, w, conv, out), preference,
        ws_limit);
  });
}

Status mcudnnConvolutionForward(UcudnnHandle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kForward,
                       mcudnn::make_problem(ConvKernelType::kForward, x_desc,
                                            w_desc, conv, y_desc),
                       alpha, x, w, beta, y);
  });
}

Status mcudnnConvolutionBackwardData(UcudnnHandle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardData,
                       mcudnn::make_problem(ConvKernelType::kBackwardData,
                                            dy_desc, w_desc, conv, dx_desc),
                       alpha, dy, w, beta, dx);
  });
}

Status mcudnnConvolutionBackwardFilter(UcudnnHandle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardFilter,
                       mcudnn::make_problem(ConvKernelType::kBackwardFilter,
                                            x_desc, dw_desc, conv, dy_desc),
                       alpha, x, dy, beta, dw);
  });
}

}  // namespace ucudnn::core
