#include "core/ucudnn.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/alias_check.h"
#include "analysis/workspace_audit.h"
#include "common/logging.h"
#include "common/timer.h"

namespace ucudnn::core {

namespace {

std::vector<mcudnn::Handle> make_bench_handles(
    const std::shared_ptr<device::Device>& primary) {
  return {mcudnn::Handle(primary)};
}

std::vector<mcudnn::Handle> make_bench_handles(const device::Node& node,
                                               int count) {
  std::vector<mcudnn::Handle> handles;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(count), node.device_count());
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.emplace_back(node.device(i));
  }
  return handles;
}

// Member-initializer-list validation: `node.device(0)` on an empty node
// would die with a bare std::out_of_range before any constructor body runs.
const std::shared_ptr<device::Device>& primary_device(
    const device::Node& node) {
  check(node.device_count() > 0, Status::kBadParam,
        "UcudnnHandle requires a node with at least one device");
  return node.device(0);
}

Options validated(Options options) {
  check(options.benchmark_devices >= 1, Status::kBadParam,
        "Options::benchmark_devices must be >= 1 (got " +
            std::to_string(options.benchmark_devices) + ")");
  check(options.max_retries >= 0, Status::kBadParam,
        "Options::max_retries must be >= 0 (got " +
            std::to_string(options.max_retries) + ")");
  check(options.ilp_max_nodes >= 0, Status::kBadParam,
        "Options::ilp_max_nodes must be >= 0 (got " +
            std::to_string(options.ilp_max_nodes) + ")");
  return options;
}

}  // namespace

std::string DegradationStats::to_string() const {
  std::ostringstream os;
  os << "retries=" << retries
     << " degraded_allocations=" << degraded_allocations
     << " blacklisted_algorithms=" << blacklisted_algorithms
     << " solver_fallbacks=" << solver_fallbacks
     << " cache_quarantines=" << cache_quarantines;
  return os.str();
}

DeviceBuffer::DeviceBuffer(std::shared_ptr<device::Device> dev,
                           std::size_t bytes, const std::string& tag)
    : dev_(std::move(dev)), bytes_(bytes) {
  if (bytes_ > 0) ptr_ = dev_->allocate(bytes_, tag);
}

DeviceBuffer::~DeviceBuffer() {
  if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : dev_(std::move(other.dev_)),
      ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
    dev_ = std::move(other.dev_);
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

UcudnnHandle::UcudnnHandle()
    : UcudnnHandle(std::make_shared<device::Device>(device::host_cpu_spec()),
                   Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev)
    : UcudnnHandle(std::move(dev), Options::from_env()) {}

UcudnnHandle::UcudnnHandle(std::shared_ptr<device::Device> dev, Options options)
    : handle_(dev),
      options_(validated(std::move(options))),
      benchmarker_(make_bench_handles(dev),
                   std::make_shared<BenchmarkCache>()) {
  init_cache_from_file();
}

UcudnnHandle::UcudnnHandle(const device::Node& node, Options options)
    : handle_(primary_device(node)),
      options_(validated(std::move(options))),
      benchmarker_(make_bench_handles(node, options_.benchmark_devices),
                   std::make_shared<BenchmarkCache>()) {
  init_cache_from_file();
}

void UcudnnHandle::init_cache_from_file() {
  if (options_.cache_path.empty()) return;
  // Loading happens here (not in a free helper) so a quarantined file is
  // visible in the handle's degradation stats.
  const CacheLoadResult result =
      benchmarker_.cache()->load_file(options_.cache_path);
  if (result == CacheLoadResult::kQuarantined) ++stats_.cache_quarantines;
}

UcudnnHandle::~UcudnnHandle() {
  if (analysis::workspace_audit_enabled()) analysis::log_audit_report();
  if (stats_.any()) {
    UCUDNN_LOG_WARN << "degradation stats: " << stats_.to_string();
  }
  if (!options_.cache_path.empty()) {
    try {
      benchmarker_.cache()->save_file(options_.cache_path);
    } catch (const std::exception& e) {
      UCUDNN_LOG_WARN << "failed to persist benchmark cache: " << e.what();
    }
  }
}

void UcudnnHandle::set_next_kernel_label(std::string label) {
  next_label_ = std::move(label);
}

std::string UcudnnHandle::label_for(ConvKernelType type,
                                    const kernels::ConvProblem& problem) const {
  if (!next_label_.empty()) {
    return next_label_ + "(" + std::string(to_string(type)) + ")";
  }
  std::ostringstream os;
  os << "kernel" << requests_.size() << "(" << to_string(type) << ")";
  (void)problem;
  return os.str();
}

std::size_t UcudnnHandle::workspace_size(ConvKernelType type,
                                         const kernels::ConvProblem& problem,
                                         int algo) {
  (void)type;
  (void)problem;
  (void)algo;
  return 0;  // μ-cuDNN manages workspace internally.
}

std::string UcudnnHandle::wr_key(ConvKernelType type,
                                 const kernels::ConvProblem& problem,
                                 std::size_t limit) const {
  std::ostringstream os;
  os << to_string(type) << "|" << std::hex << problem.hash() << "|" << limit
     << "|" << to_string(options_.batch_size_policy);
  return os.str();
}

std::size_t UcudnnHandle::effective_limit(
    ConvKernelType type, const kernels::ConvProblem& problem) const {
  if (options_.workspace_limit) return *options_.workspace_limit;
  const auto it = request_limits_.find(wr_key(type, problem, 0));
  if (it != request_limits_.end()) return it->second;
  return kDefaultPerKernelLimit;
}

int UcudnnHandle::get_algorithm(ConvKernelType type,
                                const kernels::ConvProblem& problem,
                                mcudnn::AlgoPreference preference,
                                std::size_t ws_limit) {
  // After WD finalization further queries are ignored (§III-E).
  if (wd_finalized()) return kVirtualAlgo;

  const std::size_t limit =
      preference == mcudnn::AlgoPreference::kNoWorkspace ? 0
      : preference == mcudnn::AlgoPreference::kPreferFastest
          ? std::numeric_limits<std::size_t>::max()
          : ws_limit;
  // Remember the framework-provided limit keyed by kernel identity.
  request_limits_[wr_key(type, problem, 0)] = limit;

  // Record unique kernels for WD.
  const bool seen = std::any_of(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  if (!seen) {
    requests_.push_back(KernelRequest{type, problem, label_for(type, problem)});
  }
  next_label_.clear();
  return kVirtualAlgo;
}

MicroBenchmark UcudnnHandle::benchmark(ConvKernelType type,
                                       const kernels::ConvProblem& problem,
                                       BatchSizePolicy policy) {
  return benchmarker_.run(type, problem, policy);
}

UcudnnHandle::WrEntry& UcudnnHandle::wr_entry(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  // Frameworks that never call GetConvolution*Algorithm (the TensorFlow
  // integration style, §IV-B2) are recorded on first execution instead.
  const bool seen = std::any_of(
      requests_.begin(), requests_.end(),
      [&](const KernelRequest& r) { return r.matches(type, problem); });
  if (!seen) {
    requests_.push_back(KernelRequest{type, problem, label_for(type, problem)});
    next_label_.clear();
  }
  const std::size_t limit = effective_limit(type, problem);
  const std::string key = wr_key(type, problem, limit);
  auto it = wr_entries_.find(key);
  if (it != wr_entries_.end()) return it->second;

  const MicroBenchmark bench =
      benchmarker_.run(type, problem, options_.batch_size_policy);
  Timer timer;
  Configuration config = optimize_wr(bench, problem.batch(), limit);
  total_optimize_ms_ += timer.elapsed_ms();
  UCUDNN_LOG_INFO << "WR " << to_string(type) << " " << problem.to_string()
                  << " limit=" << limit << " -> " << config.to_string(type)
                  << " time=" << config.time_ms
                  << "ms ws=" << config.workspace;

  // Tag workspace memory with the layer label when we know it.
  std::string tag = "workspace";
  for (const auto& request : requests_) {
    if (request.matches(type, problem)) {
      tag = request.label + ":ws";
      break;
    }
  }
  DeviceBuffer ws;
  for (;;) {
    try {
      if (options_.share_wr_workspace) {
        // Sequential execution: one shared buffer, grown to the largest need.
        if (config.workspace > shared_ws_.size()) {
          shared_ws_ = DeviceBuffer(handle_.device_ptr(), config.workspace,
                                    "shared:ws");
        }
      } else {
        ws = DeviceBuffer(handle_.device_ptr(), config.workspace, tag);
      }
      break;
    } catch (const Error& e) {
      if (e.status() != Status::kAllocFailed || options_.fail_fast ||
          config.workspace == 0) {
        throw;
      }
      // Graceful degradation (§I: a resource shortfall must not abort the
      // run): re-optimize under a geometrically halved limit. Terminates
      // because the front always contains the zero-workspace configuration.
      const std::size_t degraded_limit = config.workspace / 2;
      ++stats_.degraded_allocations;
      UCUDNN_LOG_WARN << "workspace allocation of " << config.workspace
                      << " bytes failed for " << tag << " (" << e.what()
                      << "); re-optimizing with limit " << degraded_limit;
      Timer degrade_timer;
      config = optimize_wr(bench, problem.batch(), degraded_limit);
      total_optimize_ms_ += degrade_timer.elapsed_ms();
    }
  }
  auto [inserted, ok] =
      wr_entries_.emplace(key, WrEntry{std::move(config), std::move(ws)});
  (void)ok;
  return inserted->second;
}

void UcudnnHandle::finalize_wd() {
  if (wd_finalized() || wd_degraded_to_wr_) return;
  check(options_.workspace_policy == WorkspacePolicy::kWD,
        Status::kBadParam, "finalize_wd requires UCUDNN_WORKSPACE_POLICY=wd");
  Timer timer;
  WdPlan plan;
  std::size_t limit = options_.total_workspace_size;
  for (;;) {
    try {
      plan = optimize_wd(benchmarker_, requests_, limit,
                         options_.batch_size_policy, options_.wd_solver,
                         options_.ilp_max_nodes);
    } catch (const Error& e) {
      total_optimize_ms_ += timer.elapsed_ms();
      if (e.status() != Status::kNotSupported || options_.fail_fast) throw;
      // No feasible division at all: degrade to per-kernel WR, which plans
      // each kernel independently (and can itself degrade further).
      ++stats_.solver_fallbacks;
      wd_degraded_to_wr_ = true;
      UCUDNN_LOG_WARN << "WD plan infeasible (" << e.what()
                      << "); degrading to per-kernel WR";
      return;
    }
    try {
      wd_arena_ = DeviceBuffer(handle_.device_ptr(), plan.total_workspace,
                               "wd_arena");
      break;
    } catch (const Error& e) {
      if (e.status() != Status::kAllocFailed || options_.fail_fast ||
          plan.total_workspace == 0) {
        throw;
      }
      // The optimizer's limit was infeasible on the actual device: halve
      // what the plan really used and re-solve, down to the zero-workspace
      // division.
      ++stats_.degraded_allocations;
      limit = plan.total_workspace / 2;
      UCUDNN_LOG_WARN << "WD arena allocation of " << plan.total_workspace
                      << " bytes failed (" << e.what()
                      << "); re-optimizing with total limit " << limit;
    }
  }
  if (plan.solver_fell_back) ++stats_.solver_fallbacks;
  total_optimize_ms_ += timer.elapsed_ms();
  UCUDNN_LOG_INFO << "WD finalized: " << requests_.size() << " kernels, "
                  << plan.num_variables << " ILP variables, arena "
                  << plan.total_workspace << " bytes, solve "
                  << plan.solve_ms << " ms";
  wd_plan_ = std::move(plan);
}

const WdAssignment* UcudnnHandle::wd_assignment(
    ConvKernelType type, const kernels::ConvProblem& problem) const {
  if (!wd_plan_) return nullptr;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    if (requests_[i].matches(type, problem)) {
      return &wd_plan_->assignments[i];
    }
  }
  return nullptr;
}

const Configuration* UcudnnHandle::configuration_for(
    ConvKernelType type, const kernels::ConvProblem& problem) {
  if (options_.workspace_policy == WorkspacePolicy::kWD &&
      !wd_degraded_to_wr_) {
    const WdAssignment* assignment = wd_assignment(type, problem);
    return assignment ? &assignment->config : nullptr;
  }
  const std::size_t limit = effective_limit(type, problem);
  const auto it = wr_entries_.find(wr_key(type, problem, limit));
  return it != wr_entries_.end() ? &it->second.config : nullptr;
}

void UcudnnHandle::apply_pending_invalidations() {
  if (pending_invalidations_.empty()) return;
  for (const auto& [type, algo] : pending_invalidations_) {
    const std::string prefix = std::string(to_string(type)) + "|";
    for (auto it = wr_entries_.begin(); it != wr_entries_.end();) {
      const bool uses =
          it->first.compare(0, prefix.size(), prefix) == 0 &&
          std::any_of(it->second.config.micro.begin(),
                      it->second.config.micro.end(),
                      [&](const MicroConfig& m) { return m.algo == algo; });
      it = uses ? wr_entries_.erase(it) : std::next(it);
    }
    if (wd_plan_) {
      for (std::size_t i = 0; i < requests_.size(); ++i) {
        const auto& micro = wd_plan_->assignments[i].config.micro;
        if (requests_[i].type == type &&
            std::any_of(micro.begin(), micro.end(),
                        [&](const MicroConfig& m) { return m.algo == algo; })) {
          // The whole arena layout depends on every assignment; re-plan from
          // scratch at the next finalize (the blacklist filter makes the new
          // plan avoid the algorithm).
          wd_plan_.reset();
          wd_arena_ = DeviceBuffer();
          break;
        }
      }
    }
  }
  pending_invalidations_.clear();
}

void UcudnnHandle::convolution(ConvKernelType type,
                               const kernels::ConvProblem& problem, float alpha,
                               const float* a, const float* b, float beta,
                               float* out) {
  apply_pending_invalidations();
  if (options_.workspace_policy == WorkspacePolicy::kWD &&
      !wd_degraded_to_wr_) {
    if (!wd_finalized()) finalize_wd();
    if (const WdAssignment* assignment = wd_assignment(type, problem)) {
      char* arena = static_cast<char*>(wd_arena_.data());
      execute_configuration(type, problem, assignment->config, alpha, a, b,
                            beta, out,
                            arena == nullptr ? nullptr
                                             : arena + assignment->offset,
                            assignment->config.workspace);
      return;
    }
    if (wd_finalized()) {
      UCUDNN_LOG_WARN << "WD: unrecorded kernel " << problem.to_string()
                      << ", falling back to WR";
    }
  }
  WrEntry& entry = wr_entry(type, problem);
  if (options_.share_wr_workspace) {
    execute_configuration(type, problem, entry.config, alpha, a, b, beta, out,
                          shared_ws_.data(), shared_ws_.size());
  } else {
    execute_configuration(type, problem, entry.config, alpha, a, b, beta, out,
                          entry.workspace.data(), entry.workspace.size());
  }
}

void UcudnnHandle::execute_configuration(ConvKernelType type,
                                         const kernels::ConvProblem& problem,
                                         const Configuration& config,
                                         float alpha, const float* a,
                                         const float* b, float beta, float* out,
                                         void* ws, std::size_t ws_bytes) {
  check(config.batch == problem.batch(), Status::kInternalError,
        "configuration does not cover the mini-batch");

  const analysis::ScopedAuditContext audit_context(
      options_.workspace_policy == WorkspacePolicy::kWD ? "WD" : "WR");
  if (analysis::workspace_audit_enabled()) {
    // BackwardFilter beta-accumulates dw across micro-batches, so workspace
    // aliasing any operand (or the operands aliasing the accumulator)
    // silently corrupts gradients. All live spans must be disjoint.
    const std::size_t a_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kBackwardData ? problem.y.bytes()
                                              : problem.x.bytes());
    const std::size_t b_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kBackwardFilter ? problem.y.bytes()
                                                : problem.w.bytes());
    const std::size_t out_bytes = static_cast<std::size_t>(
        type == ConvKernelType::kForward        ? problem.y.bytes()
        : type == ConvKernelType::kBackwardData ? problem.x.bytes()
                                                : problem.w.bytes());
    analysis::check_disjoint({{ws, ws_bytes, "workspace"},
                              {a, a_bytes, "operand a"},
                              {b, b_bytes, "operand b"},
                              {out, out_bytes, "output"}});
  }

  const std::int64_t image_x = problem.x.c * problem.x.h * problem.x.w;
  const std::int64_t image_y = problem.y.c * problem.y.h * problem.y.w;

  // Per-micro-batch strides of the sliced operands (0 = operand not sliced).
  std::int64_t a_stride = 0, out_stride = 0;
  switch (type) {
    case ConvKernelType::kForward:
      a_stride = image_x;
      out_stride = image_y;
      break;
    case ConvKernelType::kBackwardData:
      a_stride = image_y;
      out_stride = image_x;
      break;
    case ConvKernelType::kBackwardFilter:
      a_stride = image_x;  // x slices; dy (operand b) slices via b_stride
      out_stride = 0;      // dw accumulates in place
      break;
  }
  const std::int64_t b_stride =
      type == ConvKernelType::kBackwardFilter ? image_y : 0;

  // The division is mutable: when an algorithm keeps failing past the retry
  // budget, the not-yet-executed tail is re-planned in place. A failed
  // mcudnn::convolution throws before touching any operand byte, so retrying
  // (or switching algorithms for the remaining micro-batches) cannot change
  // the values already produced.
  std::vector<MicroConfig> micros = config.micro;
  std::int64_t offset = 0;
  bool first = true;
  int replans = 0;
  std::size_t idx = 0;
  while (idx < micros.size()) {
    const MicroConfig micro = micros[idx];
    const kernels::ConvProblem sub = problem.with_batch(micro.batch);
    const float* a_ptr = a == nullptr ? nullptr : a + offset * a_stride;
    const float* b_ptr = b == nullptr ? nullptr : b + offset * b_stride;
    float* out_ptr = out == nullptr ? nullptr : out + offset * out_stride;
    // BackwardFilter accumulates across micro-batches (output scale trick).
    const float micro_beta =
        type == ConvKernelType::kBackwardFilter && !first ? 1.0f : beta;
    int failures = 0;
    bool replanned = false;
    for (;;) {
      try {
        mcudnn::convolution(handle_, type, sub, alpha, a_ptr, b_ptr, micro_beta,
                            out_ptr, micro.algo, ws, ws_bytes);
        break;
      } catch (const Error& e) {
        if (e.status() != Status::kExecutionFailed || options_.fail_fast) {
          throw;
        }
        ++failures;
        if (failures <= options_.max_retries) {
          ++stats_.retries;
          UCUDNN_LOG_WARN << "transient kernel failure ("
                          << kernels::algo_name(type, micro.algo) << " on "
                          << sub.to_string() << "): " << e.what() << "; retry "
                          << failures << "/" << options_.max_retries;
          continue;
        }
        replan_remaining(type, problem, micro.algo, offset, ws_bytes, micros,
                         idx, replans);
        replanned = true;
        break;
      }
    }
    if (replanned) continue;  // micros[idx] was replaced; run the new plan
    offset += micro.batch;
    first = false;
    ++idx;
  }
}

void UcudnnHandle::replan_remaining(ConvKernelType type,
                                    const kernels::ConvProblem& problem,
                                    int algo, std::int64_t done,
                                    std::size_t ws_bytes,
                                    std::vector<MicroConfig>& micros,
                                    std::size_t idx, int& replans) {
  const std::string& device_name = handle_.device().spec().name;
  benchmarker_.cache()->blacklist(device_name, type, algo);
  ++stats_.blacklisted_algorithms;
  // Cached WR/WD plans referencing the algorithm are stale now, but their
  // workspace is live in the current call chain — invalidate them at the
  // next convolution() entry instead of here.
  pending_invalidations_.emplace_back(type, algo);
  // Each re-plan retires one algorithm, so the algorithm count bounds the
  // recursion; past that the failure is systemic, not algorithmic.
  ++replans;
  check(replans <= kernels::algo_count(type), Status::kExecutionFailed,
        "kernel keeps failing after blacklisting " +
            std::to_string(replans - 1) + " algorithms for " +
            problem.to_string());
  UCUDNN_LOG_WARN << "blacklisting " << kernels::algo_name(type, algo)
                  << " on " << device_name << " after repeated failures; "
                  << "re-planning the remaining "
                  << (problem.batch() - done) << " samples";
  // Re-plan only the unexecuted tail: outputs already written (and, for
  // BackwardFilter, partial accumulations) stay untouched. The existing
  // workspace bounds the new plan, so no reallocation is needed.
  const kernels::ConvProblem rest = problem.with_batch(problem.batch() - done);
  const MicroBenchmark bench =
      benchmarker_.run(type, rest, options_.batch_size_policy);
  Timer timer;
  const Configuration replacement = optimize_wr(bench, rest.batch(), ws_bytes);
  total_optimize_ms_ += timer.elapsed_ms();
  micros.resize(idx);
  micros.insert(micros.end(), replacement.micro.begin(),
                replacement.micro.end());
}

// --- cuDNN-shaped Status API ------------------------------------------------

Status mcudnnGetConvolutionWorkspaceSize(UcudnnHandle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes) {
  UCUDNN_API_BODY({
    check_param(bytes != nullptr, "null output pointer");
    *bytes = handle.workspace_size(
        type, mcudnn::make_problem(type, in, w, conv, out), algo);
  });
}

Status mcudnnGetConvolutionAlgorithm(UcudnnHandle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     mcudnn::AlgoPreference preference,
                                     std::size_t ws_limit, int* algo) {
  UCUDNN_API_BODY({
    check_param(algo != nullptr, "null output pointer");
    *algo = handle.get_algorithm(
        type, mcudnn::make_problem(type, in, w, conv, out), preference,
        ws_limit);
  });
}

Status mcudnnConvolutionForward(UcudnnHandle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kForward,
                       mcudnn::make_problem(ConvKernelType::kForward, x_desc,
                                            w_desc, conv, y_desc),
                       alpha, x, w, beta, y);
  });
}

Status mcudnnConvolutionBackwardData(UcudnnHandle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardData,
                       mcudnn::make_problem(ConvKernelType::kBackwardData,
                                            dy_desc, w_desc, conv, dx_desc),
                       alpha, dy, w, beta, dx);
  });
}

Status mcudnnConvolutionBackwardFilter(UcudnnHandle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw) {
  (void)algo;
  (void)workspace;
  (void)workspace_bytes;
  UCUDNN_API_BODY({
    handle.convolution(ConvKernelType::kBackwardFilter,
                       mcudnn::make_problem(ConvKernelType::kBackwardFilter,
                                            x_desc, dw_desc, conv, dy_desc),
                       alpha, x, dy, beta, dw);
  });
}

}  // namespace ucudnn::core
