#include "core/benchmarker.h"

#include <algorithm>
#include <thread>

#include "analysis/workspace_audit.h"
#include "common/status.h"
#include "common/timer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ucudnn::core {

namespace {

telemetry::DoubleCounter& benchmark_total_ms_metric() {
  static telemetry::DoubleCounter c =
      telemetry::MetricsRegistry::instance().double_counter(
          "ucudnn.benchmark.total_ms");
  return c;
}

telemetry::Counter& benchmark_runs_metric() {
  static telemetry::Counter c =
      telemetry::MetricsRegistry::instance().counter("ucudnn.benchmark.runs");
  return c;
}

telemetry::Histogram& benchmark_ms_histogram() {
  static telemetry::Histogram h =
      telemetry::MetricsRegistry::instance().histogram("ucudnn.benchmark.ms");
  return h;
}

}  // namespace

Benchmarker::Benchmarker(std::vector<mcudnn::Handle> handles,
                         std::shared_ptr<BenchmarkCache> cache)
    : handles_(std::move(handles)), cache_(std::move(cache)) {
  check_param(!handles_.empty(), "benchmarker needs at least one handle");
  if (cache_ == nullptr) cache_ = std::make_shared<BenchmarkCache>();
}

MicroBenchmark Benchmarker::run(ConvKernelType type,
                                const kernels::ConvProblem& problem,
                                BatchSizePolicy policy) {
  const telemetry::ScopedSpan span(
      "benchmark", [&] { return std::string(to_string(type)); });
  Timer timer;
  MicroBenchmark result;
  result.sizes = candidate_micro_sizes(policy, problem.batch());
  result.perfs.resize(result.sizes.size());

  // Every candidate size is assigned round-robin to the handle that will
  // measure it, and its cache lookup, blacklist filter, and store are all
  // keyed by that handle's device name. Keying everything by device 0 (as an
  // earlier revision did) silently cross-pollutes the cache on heterogeneous
  // nodes: results measured on device w land under device 0's name.
  std::vector<std::vector<std::size_t>> assigned(handles_.size());
  for (std::size_t i = 0; i < result.sizes.size(); ++i) {
    const std::size_t w = i % handles_.size();
    const std::string& device_name = handles_[w].device().spec().name;
    if (auto hit =
            cache_->lookup(device_name, type, problem, result.sizes[i])) {
      result.perfs[i] = std::move(*hit);
    } else {
      assigned[w].push_back(i);
    }
  }

  // Evaluate misses, one worker thread per handle with work (§III-D).
  const bool any_miss = std::any_of(
      assigned.begin(), assigned.end(),
      [](const std::vector<std::size_t>& a) { return !a.empty(); });
  if (any_miss) {
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(handles_.size());
    std::vector<char> done(result.sizes.size(), 0);
    threads.reserve(handles_.size());
    for (std::size_t w = 0; w < handles_.size(); ++w) {
      if (assigned[w].empty()) continue;
      threads.emplace_back([&, w] {
        try {
          // Workspace-audit violations during benchmarking are attributed to
          // the benchmarker, not the WR/WD execution path.
          const analysis::ScopedAuditContext audit_context(
              "benchmark:dev" + std::to_string(w));
          const std::string& device_name = handles_[w].device().spec().name;
          for (const std::size_t i : assigned[w]) {
            auto perfs = mcudnn::find_algorithms(
                handles_[w], type, problem.with_batch(result.sizes[i]));
            // Keep only successful, non-blacklisted entries; they arrive
            // time-sorted.
            perfs.erase(std::remove_if(perfs.begin(), perfs.end(),
                                       [&](const mcudnn::AlgoPerf& p) {
                                         return p.status != Status::kSuccess ||
                                                cache_->is_blacklisted(
                                                    device_name, type, p.algo);
                                       }),
                        perfs.end());
            result.perfs[i] = std::move(perfs);
            done[i] = 1;
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    // Store whatever the workers finished before surfacing any error, so a
    // single failing device does not discard the benchmarking the others
    // already paid for — the retried call resolves those as cache hits.
    for (std::size_t w = 0; w < handles_.size(); ++w) {
      const std::string& device_name = handles_[w].device().spec().name;
      for (const std::size_t i : assigned[w]) {
        if (!done[i]) continue;
        cache_->store(device_name, type, problem, result.sizes[i],
                      result.perfs[i]);
      }
    }
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  const double elapsed_ms = timer.elapsed_ms();
  total_benchmark_ms_.fetch_add(elapsed_ms, std::memory_order_relaxed);
  benchmark_total_ms_metric().add(elapsed_ms);
  benchmark_runs_metric().add(1);
  benchmark_ms_histogram().observe_ms(elapsed_ms);
  return result;
}

}  // namespace ucudnn::core
