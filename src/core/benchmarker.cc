#include "core/benchmarker.h"

#include <algorithm>
#include <thread>

#include "analysis/workspace_audit.h"
#include "common/status.h"
#include "common/timer.h"

namespace ucudnn::core {

Benchmarker::Benchmarker(std::vector<mcudnn::Handle> handles,
                         std::shared_ptr<BenchmarkCache> cache)
    : handles_(std::move(handles)), cache_(std::move(cache)) {
  check_param(!handles_.empty(), "benchmarker needs at least one handle");
  if (cache_ == nullptr) cache_ = std::make_shared<BenchmarkCache>();
}

MicroBenchmark Benchmarker::run(ConvKernelType type,
                                const kernels::ConvProblem& problem,
                                BatchSizePolicy policy) {
  Timer timer;
  MicroBenchmark result;
  result.sizes = candidate_micro_sizes(policy, problem.batch());
  result.perfs.resize(result.sizes.size());

  const std::string& device_name = handles_[0].device().spec().name;

  // Resolve cache hits first; collect misses.
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < result.sizes.size(); ++i) {
    if (auto hit = cache_->lookup(device_name, type, problem, result.sizes[i])) {
      result.perfs[i] = std::move(*hit);
    } else {
      misses.push_back(i);
    }
  }

  // Evaluate misses, striped round-robin across the node's devices
  // (one worker thread per handle, as in §III-D).
  if (!misses.empty()) {
    const std::size_t workers = std::min(handles_.size(), misses.size());
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(workers);
    std::vector<char> done(misses.size(), 0);
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          // Workspace-audit violations during benchmarking are attributed to
          // the benchmarker, not the WR/WD execution path.
          const analysis::ScopedAuditContext audit_context(
              "benchmark:dev" + std::to_string(w));
          for (std::size_t m = w; m < misses.size(); m += workers) {
            const std::size_t i = misses[m];
            auto perfs = mcudnn::find_algorithms(
                handles_[w], type, problem.with_batch(result.sizes[i]));
            // Keep only successful, non-blacklisted entries; they arrive
            // time-sorted.
            perfs.erase(std::remove_if(perfs.begin(), perfs.end(),
                                       [&](const mcudnn::AlgoPerf& p) {
                                         return p.status != Status::kSuccess ||
                                                cache_->is_blacklisted(
                                                    device_name, type, p.algo);
                                       }),
                        perfs.end());
            result.perfs[i] = std::move(perfs);
            done[m] = 1;
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    // Store whatever the workers finished before surfacing any error, so a
    // single failing device does not discard the benchmarking the others
    // already paid for — the retried call resolves those as cache hits.
    for (std::size_t m = 0; m < misses.size(); ++m) {
      if (!done[m]) continue;
      const std::size_t i = misses[m];
      cache_->store(device_name, type, problem, result.sizes[i],
                    result.perfs[i]);
    }
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  total_benchmark_ms_ += timer.elapsed_ms();
  return result;
}

}  // namespace ucudnn::core
