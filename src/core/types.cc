#include "core/types.h"

#include <sstream>

#include "common/mathutil.h"
#include "kernels/registry.h"
#include "telemetry/metrics.h"

namespace ucudnn::core {

namespace {

telemetry::Counter degradation_metric(const char* event) {
  return telemetry::MetricsRegistry::instance().counter(
      std::string("ucudnn.degradation.") + event);
}

}  // namespace

void DegradationStats::count_retry() {
  ++retries;
  static telemetry::Counter c = degradation_metric("retries");
  c.add(1);
}

void DegradationStats::count_degraded_allocation() {
  ++degraded_allocations;
  static telemetry::Counter c = degradation_metric("degraded_allocations");
  c.add(1);
}

void DegradationStats::count_blacklisted_algorithm() {
  ++blacklisted_algorithms;
  static telemetry::Counter c = degradation_metric("blacklisted_algorithms");
  c.add(1);
}

void DegradationStats::count_solver_fallback() {
  ++solver_fallbacks;
  static telemetry::Counter c = degradation_metric("solver_fallbacks");
  c.add(1);
}

void DegradationStats::count_cache_quarantine() {
  ++cache_quarantines;
  static telemetry::Counter c = degradation_metric("cache_quarantines");
  c.add(1);
}

void DegradationStats::count_wd_unrecorded_fallback() {
  ++wd_unrecorded_fallbacks;
  static telemetry::Counter c = degradation_metric("wd_unrecorded_fallbacks");
  c.add(1);
}

std::string DegradationStats::to_string() const {
  std::ostringstream os;
  os << "retries=" << retries
     << " degraded_allocations=" << degraded_allocations
     << " blacklisted_algorithms=" << blacklisted_algorithms
     << " solver_fallbacks=" << solver_fallbacks
     << " cache_quarantines=" << cache_quarantines
     << " wd_unrecorded_fallbacks=" << wd_unrecorded_fallbacks;
  return os.str();
}

std::string Configuration::to_string(ConvKernelType type) const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    if (i > 0) os << ", ";
    os << micro[i].batch << ":" << kernels::algo_name(type, micro[i].algo);
  }
  os << "]";
  return os.str();
}

BatchSizePolicy parse_batch_size_policy(const std::string& text) {
  if (text == "all") return BatchSizePolicy::kAll;
  if (text == "powerOfTwo") return BatchSizePolicy::kPowerOfTwo;
  if (text == "undivided") return BatchSizePolicy::kUndivided;
  throw Error(Status::kInvalidValue, "unknown batch size policy: " + text);
}

WorkspacePolicy parse_workspace_policy(const std::string& text) {
  if (text == "wr" || text == "WR") return WorkspacePolicy::kWR;
  if (text == "wd" || text == "WD") return WorkspacePolicy::kWD;
  throw Error(Status::kInvalidValue, "unknown workspace policy: " + text);
}

std::vector<std::int64_t> candidate_micro_sizes(BatchSizePolicy policy,
                                                std::int64_t batch) {
  check_param(batch >= 1, "batch must be >= 1");
  std::vector<std::int64_t> sizes;
  switch (policy) {
    case BatchSizePolicy::kAll:
      sizes.reserve(static_cast<std::size_t>(batch));
      for (std::int64_t b = 1; b <= batch; ++b) sizes.push_back(b);
      break;
    case BatchSizePolicy::kPowerOfTwo:
      for (std::int64_t b = 1; b <= batch; b <<= 1) sizes.push_back(b);
      if (!is_pow2(static_cast<std::size_t>(batch))) sizes.push_back(batch);
      break;
    case BatchSizePolicy::kUndivided:
      sizes.push_back(batch);
      break;
  }
  return sizes;
}

}  // namespace ucudnn::core
