// μ-cuDNN: the transparent wrapper (§III-D, §III-E).
//
// Integration mirrors the paper: replace the cuDNN handle type with
// UcudnnHandle. The wrapper
//  * answers GetConvolution*Algorithm with a virtual algorithm ID and
//    GetConvolution*WorkspaceSize with zero, so the framework neither picks
//    an algorithm nor allocates workspace itself;
//  * records every kernel the framework asks about (the WD pipeline needs
//    all layer parameters before the first real convolution, §III-E);
//  * on Convolution* calls, fetches an ExecutionPlan from the Planner
//    (optimizing lazily on the first call, from the PlanCache afterwards)
//    and hands it to the Executor — using beta-accumulation for
//    BackwardFilter so semantics are unchanged;
//  * delegates everything else to mcudnn via a cast operator to the wrapped
//    handle, the same trick the paper uses.
//
// The handle itself is a thin facade; policy lives in core/planner.h and
// mechanics in core/executor.h, with core/plan.h as the IR between them.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/benchmarker.h"
#include "core/executor.h"
#include "core/options.h"
#include "core/plan.h"
#include "core/planner.h"
#include "core/types.h"
#include "core/wd_optimizer.h"
#include "mcudnn/mcudnn.h"
#include "telemetry/report.h"

namespace ucudnn::core {

/// The algorithm ID μ-cuDNN hands back to frameworks; any value the
/// framework echoes into Convolution* is ignored there.
inline constexpr int kVirtualAlgo = 0;

/// UcudnnHandle_t equivalent.
class UcudnnHandle {
 public:
  /// Host-CPU device, options from the environment.
  UcudnnHandle();
  explicit UcudnnHandle(std::shared_ptr<device::Device> dev);
  UcudnnHandle(std::shared_ptr<device::Device> dev, Options options);
  /// Multi-device node: device 0 executes; up to options.benchmark_devices
  /// devices evaluate micro-benchmarks in parallel (§III-D).
  UcudnnHandle(const device::Node& node, Options options);
  ~UcudnnHandle();

  UcudnnHandle(const UcudnnHandle&) = delete;
  UcudnnHandle& operator=(const UcudnnHandle&) = delete;

  /// The cast-operator integration trick: any API expecting the plain cuDNN
  /// handle receives the wrapped one.
  operator mcudnn::Handle&() noexcept { return handle_; }
  mcudnn::Handle& base() noexcept { return handle_; }
  const mcudnn::Handle& base() const noexcept { return handle_; }

  device::Device& device() const noexcept { return handle_.device(); }
  Options& options() noexcept { return options_; }
  const Options& options() const noexcept { return options_; }

  /// Optional label attached to the NEXT recorded kernel (layer name in
  /// reports and memory tags).
  void set_next_kernel_label(std::string label);

  // --- wrapper API (problem level) -------------------------------------

  /// Always 0: μ-cuDNN manages workspace internally.
  std::size_t workspace_size(ConvKernelType type,
                             const kernels::ConvProblem& problem, int algo);

  /// Records the kernel (and the framework's workspace limit) and returns
  /// the virtual algorithm ID.
  int get_algorithm(ConvKernelType type, const kernels::ConvProblem& problem,
                    mcudnn::AlgoPreference preference, std::size_t ws_limit);

  /// Runs the optimized micro-batched convolution: plan (or PlanCache hit),
  /// then execute — with the planner's tail-re-plan policy wired into the
  /// executor's failure handling.
  void convolution(ConvKernelType type, const kernels::ConvProblem& problem,
                   float alpha, const float* a, const float* b, float beta,
                   float* out);

  // --- WD control (§III-E) ---------------------------------------------

  /// Freezes the recorded kernel list and runs WD optimization now
  /// (otherwise it runs at the first Convolution* call). Subsequent
  /// GetConvolution*Algorithm calls are ignored, as in the paper's Caffe
  /// integration.
  void finalize_wd();
  bool wd_finalized() const noexcept { return planner_.wd_finalized(); }
  const WdPlan* wd_plan() const noexcept { return planner_.wd_plan(); }

  // --- introspection (benches, tests) ----------------------------------

  /// The configuration that will run / ran for this kernel (null before
  /// optimization).
  const Configuration* configuration_for(ConvKernelType type,
                                         const kernels::ConvProblem& problem);

  /// Recorded kernel requests, in registration order.
  const std::vector<KernelRequest>& recorded_kernels() const noexcept {
    return requests_;
  }

  /// Direct benchmark access (e.g. to plot a Fig. 8 Pareto front).
  MicroBenchmark benchmark(ConvKernelType type,
                           const kernels::ConvProblem& problem,
                           BatchSizePolicy policy);

  /// Wall time spent benchmarking micro-configurations so far.
  double total_benchmark_ms() const noexcept {
    return planner_.benchmarker().total_benchmark_ms();
  }
  /// Wall time spent in DP/ILP optimization so far (excludes benchmarking).
  double total_optimize_ms() const noexcept {
    return planner_.total_optimize_ms();
  }
  /// Wall time spent re-benchmarking during tail re-plans (degraded path).
  double total_replan_benchmark_ms() const noexcept {
    return planner_.total_replan_benchmark_ms();
  }

  const std::shared_ptr<BenchmarkCache>& cache() const noexcept {
    return planner_.benchmarker().cache();
  }

  /// The steady-state plan cache (hit/miss counters, blacklist epoch).
  const PlanCache& plan_cache() const noexcept { return planner_.plan_cache(); }

  /// Degradation events accumulated over the handle's lifetime.
  const DegradationStats& degradation_stats() const noexcept { return stats_; }

  /// Execution report ("plan explain"): per-kernel micro-batch division and
  /// per-segment algorithm, estimated vs measured segment times, workspace
  /// declared vs audit-touched bytes, plan-cache/degradation context, and
  /// WR/WD policy metadata. Assembled on demand from planner provenance and
  /// executor measurements; the destructor dumps it to UCUDNN_REPORT_FILE
  /// when set (JSON when the path ends in ".json", pretty text otherwise).
  telemetry::ExecutionReport execution_report() const;

 private:
  // Per-kernel execution bookkeeping backing execution_report(): the plan
  // actually run, the planner's provenance for it, and per-segment measured
  // times accumulated by the executor's MeasureFn callback. Stats reset
  // whenever the kernel's plan changes (re-optimization, epoch bump).
  struct SegmentStat {
    std::int64_t batch = 0;
    int algo = -1;
    bool accumulate = false;
    std::size_t workspace = 0;
    double estimated_ms = 0.0;
    double measured_ms_total = 0.0;
    std::uint64_t runs = 0;
  };
  struct KernelExecRecord {
    ConvKernelType type = ConvKernelType::kForward;
    kernels::ConvProblem problem;
    std::shared_ptr<const ExecutionPlan> plan;
    std::string provenance;
    std::size_t ws_limit = 0;
    std::uint64_t executions = 0;
    std::uint64_t replans = 0;
    std::vector<SegmentStat> segments;
  };

  std::string label_for(ConvKernelType type,
                        const kernels::ConvProblem& problem) const;
  /// The execution record for this kernel, created on first execution and
  /// keyed by the recorded request's label (execution order preserved).
  KernelExecRecord& exec_record(ConvKernelType type,
                                const kernels::ConvProblem& problem);
  /// Appends the kernel to the recorded list if unseen (frameworks that
  /// never call GetConvolution*Algorithm — the TensorFlow integration style,
  /// §IV-B2 — are recorded on first execution) and consumes the pending
  /// label either way.
  void record_kernel(ConvKernelType type, const kernels::ConvProblem& problem);
  void init_cache_from_file();

  mcudnn::Handle handle_;
  Options options_;
  DegradationStats stats_;  // shared by reference with planner_/executor_
  Planner planner_;
  Executor executor_;
  std::vector<KernelRequest> requests_;  // unique kernels
  std::string next_label_;
  // Execution records in first-execution order, keyed by request label.
  std::vector<std::pair<std::string, KernelExecRecord>> exec_records_;
};

// --- free-function overloads mirroring the mcudnn problem-level API -------
// (a framework written generically against `get_algorithm(handle, ...)`
// works with either handle type).

inline std::size_t workspace_size(UcudnnHandle& handle, ConvKernelType type,
                                  const kernels::ConvProblem& p, int algo) {
  return handle.workspace_size(type, p, algo);
}

inline int get_algorithm(
    UcudnnHandle& handle, ConvKernelType type, const kernels::ConvProblem& p,
    mcudnn::AlgoPreference preference,
    std::size_t ws_limit = std::numeric_limits<std::size_t>::max()) {
  return handle.get_algorithm(type, p, preference, ws_limit);
}

inline void convolution(UcudnnHandle& handle, ConvKernelType type,
                        const kernels::ConvProblem& p, float alpha,
                        const float* a, const float* b, float beta, float* out,
                        int /*algo*/, void* /*workspace*/,
                        std::size_t /*workspace_bytes*/) {
  handle.convolution(type, p, alpha, a, b, beta, out);
}

// --- cuDNN-shaped Status API for UcudnnHandle ------------------------------

[[nodiscard]] Status mcudnnGetConvolutionWorkspaceSize(UcudnnHandle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes);

[[nodiscard]] Status mcudnnGetConvolutionAlgorithm(UcudnnHandle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     mcudnn::AlgoPreference preference,
                                     std::size_t ws_limit, int* algo);

[[nodiscard]] Status mcudnnConvolutionForward(UcudnnHandle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y);

[[nodiscard]] Status mcudnnConvolutionBackwardData(UcudnnHandle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx);

[[nodiscard]] Status mcudnnConvolutionBackwardFilter(UcudnnHandle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw);

}  // namespace ucudnn::core
