// μ-cuDNN: the transparent wrapper (§III-D, §III-E).
//
// Integration mirrors the paper: replace the cuDNN handle type with
// UcudnnHandle. The wrapper
//  * answers GetConvolution*Algorithm with a virtual algorithm ID and
//    GetConvolution*WorkspaceSize with zero, so the framework neither picks
//    an algorithm nor allocates workspace itself;
//  * records every kernel the framework asks about (the WD pipeline needs
//    all layer parameters before the first real convolution, §III-E);
//  * on Convolution* calls, lazily optimizes (WR: per-kernel DP; WD: global
//    Pareto + ILP over all recorded kernels), allocates workspace internally
//    (per-kernel buffers for WR, one segmented arena for WD), and executes
//    the mini-batch as the optimized sequence of micro-batches — using
//    beta-accumulation for BackwardFilter so semantics are unchanged;
//  * delegates everything else to mcudnn via a cast operator to the wrapped
//    handle, the same trick the paper uses.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/benchmarker.h"
#include "core/options.h"
#include "core/types.h"
#include "core/wd_optimizer.h"
#include "core/wr_optimizer.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::core {

/// The algorithm ID μ-cuDNN hands back to frameworks; any value the
/// framework echoes into Convolution* is ignored there.
inline constexpr int kVirtualAlgo = 0;

/// Default per-kernel workspace limit when neither the framework nor
/// UCUDNN_WORKSPACE_LIMIT provides one (Caffe's 8 MiB default).
inline constexpr std::size_t kDefaultPerKernelLimit = std::size_t{8} << 20;

/// RAII buffer of tracked device memory.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::shared_ptr<device::Device> dev, std::size_t bytes,
               const std::string& tag);
  ~DeviceBuffer();
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  void* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return bytes_; }

 private:
  std::shared_ptr<device::Device> dev_;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Counters for every graceful-degradation event the handle performed
/// (ROADMAP robustness north-star: a recoverable resource condition must
/// never abort a training run). Logged at teardown next to the audit report.
struct DegradationStats {
  std::uint64_t retries = 0;                 // transient kernel failures retried
  std::uint64_t degraded_allocations = 0;    // workspace limits halved on OOM
  std::uint64_t blacklisted_algorithms = 0;  // algos retired after retries
  std::uint64_t solver_fallbacks = 0;        // ILP->DP and WD->WR fallbacks
  std::uint64_t cache_quarantines = 0;       // corrupt cache files quarantined

  bool any() const noexcept {
    return retries != 0 || degraded_allocations != 0 ||
           blacklisted_algorithms != 0 || solver_fallbacks != 0 ||
           cache_quarantines != 0;
  }
  std::string to_string() const;
};

/// UcudnnHandle_t equivalent.
class UcudnnHandle {
 public:
  /// Host-CPU device, options from the environment.
  UcudnnHandle();
  explicit UcudnnHandle(std::shared_ptr<device::Device> dev);
  UcudnnHandle(std::shared_ptr<device::Device> dev, Options options);
  /// Multi-device node: device 0 executes; up to options.benchmark_devices
  /// devices evaluate micro-benchmarks in parallel (§III-D).
  UcudnnHandle(const device::Node& node, Options options);
  ~UcudnnHandle();

  UcudnnHandle(const UcudnnHandle&) = delete;
  UcudnnHandle& operator=(const UcudnnHandle&) = delete;

  /// The cast-operator integration trick: any API expecting the plain cuDNN
  /// handle receives the wrapped one.
  operator mcudnn::Handle&() noexcept { return handle_; }
  mcudnn::Handle& base() noexcept { return handle_; }
  const mcudnn::Handle& base() const noexcept { return handle_; }

  device::Device& device() const noexcept { return handle_.device(); }
  Options& options() noexcept { return options_; }
  const Options& options() const noexcept { return options_; }

  /// Optional label attached to the NEXT recorded kernel (layer name in
  /// reports and memory tags).
  void set_next_kernel_label(std::string label);

  // --- wrapper API (problem level) -------------------------------------

  /// Always 0: μ-cuDNN manages workspace internally.
  std::size_t workspace_size(ConvKernelType type,
                             const kernels::ConvProblem& problem, int algo);

  /// Records the kernel (and the framework's workspace limit) and returns
  /// the virtual algorithm ID.
  int get_algorithm(ConvKernelType type, const kernels::ConvProblem& problem,
                    mcudnn::AlgoPreference preference, std::size_t ws_limit);

  /// Runs the optimized micro-batched convolution.
  void convolution(ConvKernelType type, const kernels::ConvProblem& problem,
                   float alpha, const float* a, const float* b, float beta,
                   float* out);

  // --- WD control (§III-E) ---------------------------------------------

  /// Freezes the recorded kernel list and runs WD optimization now
  /// (otherwise it runs at the first Convolution* call). Subsequent
  /// GetConvolution*Algorithm calls are ignored, as in the paper's Caffe
  /// integration.
  void finalize_wd();
  bool wd_finalized() const noexcept { return wd_plan_.has_value(); }
  const WdPlan* wd_plan() const noexcept {
    return wd_plan_ ? &*wd_plan_ : nullptr;
  }

  // --- introspection (benches, tests) ----------------------------------

  /// The configuration that will run / ran for this kernel (null before
  /// optimization).
  const Configuration* configuration_for(ConvKernelType type,
                                         const kernels::ConvProblem& problem);

  /// Recorded kernel requests, in registration order.
  const std::vector<KernelRequest>& recorded_kernels() const noexcept {
    return requests_;
  }

  /// Direct benchmark access (e.g. to plot a Fig. 8 Pareto front).
  MicroBenchmark benchmark(ConvKernelType type,
                           const kernels::ConvProblem& problem,
                           BatchSizePolicy policy);

  /// Wall time spent benchmarking micro-configurations so far.
  double total_benchmark_ms() const noexcept {
    return benchmarker_.total_benchmark_ms();
  }
  /// Wall time spent in DP/ILP optimization so far (excludes benchmarking).
  double total_optimize_ms() const noexcept { return total_optimize_ms_; }

  const std::shared_ptr<BenchmarkCache>& cache() const noexcept {
    return benchmarker_.cache();
  }

  /// Degradation events accumulated over the handle's lifetime.
  const DegradationStats& degradation_stats() const noexcept { return stats_; }

 private:
  struct WrEntry {
    Configuration config;
    DeviceBuffer workspace;
  };

  std::string wr_key(ConvKernelType type, const kernels::ConvProblem& problem,
                     std::size_t limit) const;
  std::size_t effective_limit(ConvKernelType type,
                              const kernels::ConvProblem& problem) const;
  WrEntry& wr_entry(ConvKernelType type, const kernels::ConvProblem& problem);
  const WdAssignment* wd_assignment(ConvKernelType type,
                                    const kernels::ConvProblem& problem) const;
  void execute_configuration(ConvKernelType type,
                             const kernels::ConvProblem& problem,
                             const Configuration& config, float alpha,
                             const float* a, const float* b, float beta,
                             float* out, void* ws, std::size_t ws_bytes);
  std::string label_for(ConvKernelType type,
                        const kernels::ConvProblem& problem) const;
  void init_cache_from_file();
  /// Blacklists `algo`, re-plans the not-yet-executed tail of the mini-batch
  /// within the workspace already held, and splices the replacement division
  /// into `micros` at `idx`.
  void replan_remaining(ConvKernelType type,
                        const kernels::ConvProblem& problem, int algo,
                        std::int64_t done, std::size_t ws_bytes,
                        std::vector<MicroConfig>& micros, std::size_t idx,
                        int& replans);
  /// Drops cached plans that reference blacklisted algorithms. Deferred to
  /// the next convolution() entry because the invalidating event happens
  /// mid-execution, while the plan's workspace pointer is still in use.
  void apply_pending_invalidations();

  mcudnn::Handle handle_;
  Options options_;
  Benchmarker benchmarker_;
  std::vector<KernelRequest> requests_;             // unique kernels
  std::map<std::string, std::size_t> request_limits_;  // wr_key -> limit
  std::map<std::string, WrEntry> wr_entries_;
  DeviceBuffer shared_ws_;  // used when options_.share_wr_workspace
  std::optional<WdPlan> wd_plan_;
  DeviceBuffer wd_arena_;
  std::string next_label_;
  double total_optimize_ms_ = 0.0;
  DegradationStats stats_;
  bool wd_degraded_to_wr_ = false;  // infeasible WD plan -> per-kernel WR
  std::vector<std::pair<ConvKernelType, int>> pending_invalidations_;
};

// --- free-function overloads mirroring the mcudnn problem-level API -------
// (a framework written generically against `get_algorithm(handle, ...)`
// works with either handle type).

inline std::size_t workspace_size(UcudnnHandle& handle, ConvKernelType type,
                                  const kernels::ConvProblem& p, int algo) {
  return handle.workspace_size(type, p, algo);
}

inline int get_algorithm(
    UcudnnHandle& handle, ConvKernelType type, const kernels::ConvProblem& p,
    mcudnn::AlgoPreference preference,
    std::size_t ws_limit = std::numeric_limits<std::size_t>::max()) {
  return handle.get_algorithm(type, p, preference, ws_limit);
}

inline void convolution(UcudnnHandle& handle, ConvKernelType type,
                        const kernels::ConvProblem& p, float alpha,
                        const float* a, const float* b, float beta, float* out,
                        int /*algo*/, void* /*workspace*/,
                        std::size_t /*workspace_bytes*/) {
  handle.convolution(type, p, alpha, a, b, beta, out);
}

// --- cuDNN-shaped Status API for UcudnnHandle ------------------------------

[[nodiscard]] Status mcudnnGetConvolutionWorkspaceSize(UcudnnHandle& handle,
                                         ConvKernelType type,
                                         const TensorDesc& in,
                                         const FilterDesc& w,
                                         const ConvGeometry& conv,
                                         const TensorDesc& out, int algo,
                                         std::size_t* bytes);

[[nodiscard]] Status mcudnnGetConvolutionAlgorithm(UcudnnHandle& handle, ConvKernelType type,
                                     const TensorDesc& in, const FilterDesc& w,
                                     const ConvGeometry& conv,
                                     const TensorDesc& out,
                                     mcudnn::AlgoPreference preference,
                                     std::size_t ws_limit, int* algo);

[[nodiscard]] Status mcudnnConvolutionForward(UcudnnHandle& handle, float alpha,
                                const TensorDesc& x_desc, const float* x,
                                const FilterDesc& w_desc, const float* w,
                                const ConvGeometry& conv, int algo,
                                void* workspace, std::size_t workspace_bytes,
                                float beta, const TensorDesc& y_desc, float* y);

[[nodiscard]] Status mcudnnConvolutionBackwardData(UcudnnHandle& handle, float alpha,
                                     const FilterDesc& w_desc, const float* w,
                                     const TensorDesc& dy_desc, const float* dy,
                                     const ConvGeometry& conv, int algo,
                                     void* workspace,
                                     std::size_t workspace_bytes, float beta,
                                     const TensorDesc& dx_desc, float* dx);

[[nodiscard]] Status mcudnnConvolutionBackwardFilter(UcudnnHandle& handle, float alpha,
                                       const TensorDesc& x_desc, const float* x,
                                       const TensorDesc& dy_desc,
                                       const float* dy, const ConvGeometry& conv,
                                       int algo, void* workspace,
                                       std::size_t workspace_bytes, float beta,
                                       const FilterDesc& dw_desc, float* dw);

}  // namespace ucudnn::core
