#include "core/wd_optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/wr_optimizer.h"
#include "ilp/ilp.h"

namespace ucudnn::core {

WdPlan optimize_wd(Benchmarker& benchmarker,
                   const std::vector<KernelRequest>& requests,
                   std::size_t total_limit, BatchSizePolicy policy,
                   WdSolver solver, std::int64_t ilp_max_nodes) {
  WdPlan plan;
  if (requests.empty()) return plan;

  // Per-kernel desirable sets (identical kernels share benchmark results via
  // the cache, e.g. ResNet's replicated layers).
  std::vector<std::vector<Configuration>> fronts;
  fronts.reserve(requests.size());
  for (const auto& request : requests) {
    const MicroBenchmark bench =
        benchmarker.run(request.type, request.problem, policy);
    auto front = desirable_configurations(bench, request.problem.batch(),
                                          total_limit);
    check(!front.empty(), Status::kNotSupported,
          "no feasible configuration for kernel " + request.label);
    // Estimate of the unpruned candidate count for the ablation report:
    // algorithms-per-size ^ divisions is astronomical; we report the sum of
    // benchmarked micro-configs as a conservative proxy instead.
    std::size_t micro_count = 0;
    for (const auto& perfs : bench.perfs) micro_count += perfs.size();
    plan.num_variables_unpruned += micro_count;
    plan.num_variables += front.size();
    fronts.push_back(std::move(front));
  }

  // Assemble the multiple-choice knapsack. Weights are segment-aligned so
  // that the arena layout never overruns the limit.
  ilp::MckpProblem mckp;
  mckp.capacity = static_cast<std::int64_t>(total_limit);
  mckp.groups.reserve(fronts.size());
  for (const auto& front : fronts) {
    std::vector<ilp::MckpItem> group;
    group.reserve(front.size());
    for (const auto& config : front) {
      group.push_back(ilp::MckpItem{
          config.time_ms,
          static_cast<std::int64_t>(round_up(config.workspace, kWdAlignment))});
    }
    mckp.groups.push_back(std::move(group));
  }

  Timer timer;
  std::vector<int> selection;
  bool use_dp = solver == WdSolver::kMckpDp;
  if (!use_dp) {
    ilp::IlpOptions ilp_options;
    ilp_options.max_nodes = ilp_max_nodes;
    const ilp::IlpResult result =
        ilp::solve_binary_ilp(ilp::mckp_to_ilp(mckp), ilp_options);
    if (result.feasible) {
      // Decode flattened 0-1 variables back to per-group choices.
      selection.assign(mckp.groups.size(), -1);
      std::size_t offset = 0;
      for (std::size_t g = 0; g < mckp.groups.size(); ++g) {
        for (std::size_t i = 0; i < mckp.groups[g].size(); ++i) {
          if (result.x[offset + i] == 1) selection[g] = static_cast<int>(i);
        }
        offset += mckp.groups[g].size();
      }
    } else {
      // Node budget exhausted without an incumbent (or genuinely
      // infeasible): the exact DP finds the same optimum in pseudo-
      // polynomial time, so degrade to it rather than failing the plan.
      UCUDNN_LOG_WARN << "WD ILP found no solution within " << ilp_max_nodes
                      << " nodes (" << result.nodes_explored
                      << " explored); falling back to MCKP-DP";
      plan.solver_fell_back = true;
      use_dp = true;
    }
  }
  if (use_dp) {
    const ilp::MckpResult result = ilp::solve_mckp(mckp);
    check(result.feasible, Status::kNotSupported,
          "WD ILP infeasible for total workspace limit " +
              std::to_string(total_limit));
    selection = result.selection;
  }
  plan.solve_ms = timer.elapsed_ms();

  // Lay out arena segments in request order.
  std::size_t cursor = 0;
  plan.assignments.reserve(requests.size());
  for (std::size_t g = 0; g < fronts.size(); ++g) {
    check(selection[g] >= 0, Status::kInternalError, "WD selection incomplete");
    WdAssignment assignment;
    assignment.config = fronts[g][static_cast<std::size_t>(selection[g])];
    assignment.offset = cursor;
    cursor += round_up(assignment.config.workspace, kWdAlignment);
    plan.total_time_ms += assignment.config.time_ms;
    plan.assignments.push_back(std::move(assignment));
  }
  plan.total_workspace = cursor;
  check(plan.total_workspace <= total_limit, Status::kInternalError,
        "WD arena layout exceeds the limit");
  return plan;
}

}  // namespace ucudnn::core
