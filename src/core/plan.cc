#include "core/plan.h"

#include <sstream>

namespace ucudnn::core {

OperandStrides operand_strides(ConvKernelType type,
                               const kernels::ConvProblem& problem) noexcept {
  const std::int64_t image_x = problem.x.c * problem.x.h * problem.x.w;
  const std::int64_t image_y = problem.y.c * problem.y.h * problem.y.w;
  switch (type) {
    case ConvKernelType::kForward:
      return {image_x, 0, image_y};
    case ConvKernelType::kBackwardData:
      return {image_y, 0, image_x};
    case ConvKernelType::kBackwardFilter:
      // x slices with operand a, dy slices with operand b; dw accumulates
      // in place, so the output never moves.
      return {image_x, image_y, 0};
  }
  return {};
}

namespace {

std::vector<PlanSegment> lower_division(ConvKernelType type,
                                        const kernels::ConvProblem& problem,
                                        const std::vector<MicroConfig>& micros,
                                        std::int64_t done) {
  const OperandStrides strides = operand_strides(type, problem);
  std::vector<PlanSegment> segments;
  segments.reserve(micros.size());
  std::int64_t cursor = done;
  for (const MicroConfig& micro : micros) {
    PlanSegment segment;
    segment.batch = micro.batch;
    segment.algo = micro.algo;
    segment.a_offset = cursor * strides.a;
    segment.b_offset = cursor * strides.b;
    segment.out_offset = cursor * strides.out;
    segment.accumulate =
        type == ConvKernelType::kBackwardFilter && cursor != 0;
    segment.time_ms = micro.time_ms;
    segment.workspace = micro.workspace;
    segments.push_back(segment);
    cursor += micro.batch;
  }
  check(cursor == problem.batch(), Status::kInternalError,
        "plan does not cover the mini-batch: " + std::to_string(cursor) +
            " of " + std::to_string(problem.batch()) + " samples");
  return segments;
}

}  // namespace

ExecutionPlan build_plan(ConvKernelType type,
                         const kernels::ConvProblem& problem,
                         const Configuration& config,
                         const WorkspaceBinding& binding) {
  check(config.batch == problem.batch(), Status::kInternalError,
        "configuration does not cover the mini-batch");
  ExecutionPlan plan;
  plan.type = type;
  plan.problem = problem;
  plan.segments = lower_division(type, problem, config.micro, 0);
  plan.binding = binding;
  plan.workspace = config.workspace;
  plan.time_ms = config.time_ms;
  return plan;
}

std::vector<PlanSegment> build_tail_segments(
    ConvKernelType type, const kernels::ConvProblem& problem,
    const Configuration& tail, std::int64_t done) {
  check(tail.batch == problem.batch() - done, Status::kInternalError,
        "tail re-plan does not cover the remaining batch");
  return lower_division(type, problem, tail.micro, done);
}

std::string ExecutionPlan::to_string() const {
  std::ostringstream os;
  os << ucudnn::to_string(type) << " " << problem.to_string() << " [";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PlanSegment& s = segments[i];
    if (i != 0) os << ", ";
    os << s.batch << ":algo" << s.algo << "@" << s.out_offset;
    if (s.accumulate) os << "(acc)";
  }
  os << "] ws=" << workspace << " " << core::to_string(binding.kind);
  if (binding.kind == WorkspaceKind::kWdArena) {
    os << "+" << binding.offset;
  }
  return os.str();
}

}  // namespace ucudnn::core
