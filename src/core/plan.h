// ExecutionPlan — the fully-resolved micro-batch schedule IR.
//
// The paper's pipeline is two-phase: optimize micro-batch divisions (WR DP
// §III-B/D, WD Pareto + ILP §III-C/E), then execute the resulting schedule.
// This header is the boundary object between those phases: a plan is a
// sequence of segments, each carrying its sub-batch, algorithm, precomputed
// operand offsets and beta-accumulation flag, plus a workspace binding
// describing which buffer the segments share. Everything execution needs is
// resolved here at plan-build time, so the steady-state hot path neither
// re-derives strides nor consults the optimizer.
//
// Layering contract (enforced by tools/check_layering.py): this translation
// unit depends only on the core data model — it includes neither the
// planner nor the executor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace ucudnn::core {

/// Where a plan's workspace lives. The planner owns the buffers; the binding
/// names one of them so a cached plan stays valid across buffer growth (the
/// pointer is resolved at fetch time, not stored in the plan).
enum class WorkspaceKind {
  kNone,       ///< zero-workspace plan; nothing is bound
  kPerKernel,  ///< the kernel's private WR buffer (§III-A per-layer workspace)
  kSharedWr,   ///< the single shared WR buffer (sequential execution)
  kWdArena,    ///< a slice of the WD arena (§III-C one arena per network)
};

constexpr std::string_view to_string(WorkspaceKind k) noexcept {
  switch (k) {
    case WorkspaceKind::kNone: return "none";
    case WorkspaceKind::kPerKernel: return "perKernel";
    case WorkspaceKind::kSharedWr: return "sharedWR";
    case WorkspaceKind::kWdArena: return "wdArena";
  }
  return "unknown";
}

struct WorkspaceBinding {
  WorkspaceKind kind = WorkspaceKind::kNone;
  std::size_t offset = 0;  ///< byte offset into the WD arena (kWdArena only)
  std::size_t bytes = 0;   ///< bytes the plan may use from the bound buffer

  bool operator==(const WorkspaceBinding&) const = default;
};

/// Per-micro-batch element strides of the three operands (0 = the operand is
/// not sliced along the batch dimension). This is THE stride computation for
/// the whole library; kForward slices x and y, kBackwardData slices dy and
/// dx, kBackwardFilter slices x and dy while dw accumulates in place.
struct OperandStrides {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t out = 0;
};

OperandStrides operand_strides(ConvKernelType type,
                               const kernels::ConvProblem& problem) noexcept;

/// One executable unit: run `algo` on `batch` samples at precomputed operand
/// offsets. Offsets are in elements from the start of each full operand
/// (cumulative batch x stride), so execution is pure pointer arithmetic.
struct PlanSegment {
  std::int64_t batch = 0;
  int algo = -1;
  std::int64_t a_offset = 0;
  std::int64_t b_offset = 0;
  std::int64_t out_offset = 0;
  /// BackwardFilter accumulates dw across micro-batches with beta = 1 (the
  /// output-scale trick, §III-A); true for every BackwardFilter segment
  /// after the first. False segments receive the caller's beta.
  bool accumulate = false;
  double time_ms = 0.0;       ///< modeled/measured cost of this segment
  std::size_t workspace = 0;  ///< declared workspace need of this segment

  bool operator==(const PlanSegment&) const = default;
};

/// A fully-resolved micro-batched convolution: the unit handed from the
/// planner to the executor, and the value type of the PlanCache.
struct ExecutionPlan {
  ConvKernelType type = ConvKernelType::kForward;
  kernels::ConvProblem problem;       ///< the full mini-batch problem
  std::vector<PlanSegment> segments;  ///< covers problem.batch() exactly
  WorkspaceBinding binding;
  std::size_t workspace = 0;  ///< max over segment workspaces (shared buffer)
  double time_ms = 0.0;       ///< sum over segment times

  std::int64_t batch() const noexcept { return problem.batch(); }

  /// Human-readable dump, e.g.
  /// "Forward x(8,6,10,10) [4:GEMM@0, 4:GEMM@384(acc)] ws=12288 perKernel".
  std::string to_string() const;
};

/// Lowers an optimizer Configuration into an ExecutionPlan: computes operand
/// strides once, walks the division accumulating offsets, and marks
/// BackwardFilter accumulation segments. Throws Error(kInternalError) when
/// the configuration does not cover the mini-batch.
ExecutionPlan build_plan(ConvKernelType type,
                         const kernels::ConvProblem& problem,
                         const Configuration& config,
                         const WorkspaceBinding& binding);

/// Lowers a tail re-plan (the division replacing the not-yet-executed rest
/// of a mini-batch after `done` samples) into splice-ready segments: offsets
/// continue from `done`, and for BackwardFilter every segment after the
/// global first (done > 0, or any non-leading segment) keeps accumulating —
/// preserving the partial dw bitwise across the splice. Throws
/// Error(kInternalError) when the tail does not cover the remaining batch.
std::vector<PlanSegment> build_tail_segments(
    ConvKernelType type, const kernels::ConvProblem& problem,
    const Configuration& tail, std::int64_t done);

}  // namespace ucudnn::core
