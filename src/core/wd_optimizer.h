// WD (Workspace Division) optimization, §III-C of the paper: one workspace
// arena per network, divided among all convolution kernels. Per-kernel
// desirable-configuration sets (Pareto fronts) feed a 0-1 ILP
//
//   min  Σ_k Σ_{c ∈ D_k} t_{k,c} · x_{k,c}
//   s.t. Σ_k Σ_c m_{k,c} · x_{k,c} ≤ W_total,   Σ_c x_{k,c} = 1  ∀k,
//
// solved either by the exact multiple-choice-knapsack DP (default; the
// GLPK-replacement path) or by branch-and-bound over simplex relaxations.
#pragma once

#include <vector>

#include "core/benchmarker.h"
#include "core/options.h"
#include "core/types.h"

namespace ucudnn::core {

/// One kernel's outcome: its chosen configuration and the byte range
/// [offset, offset + config.workspace) it owns inside the shared arena.
struct WdAssignment {
  Configuration config;
  std::size_t offset = 0;
};

struct WdPlan {
  std::vector<WdAssignment> assignments;  // parallel to the request list
  std::size_t total_workspace = 0;        // arena bytes actually used
  double total_time_ms = 0.0;             // Σ configured kernel times
  std::size_t num_variables = 0;          // ILP size after Pareto pruning
  std::size_t num_variables_unpruned = 0; // |A|-per-division upper bound proxy
  double solve_ms = 0.0;                  // ILP/DP solve wall time
  bool solver_fell_back = false;          // ILP budget exhausted -> MCKP-DP
};

/// Runs the full WD pipeline: benchmark -> desirable sets -> ILP -> segment
/// assignment. Throws Error(kNotSupported) if no feasible division exists
/// (cannot happen when zero-workspace algorithms are available).
/// The branch-and-bound ILP solver explores at most `ilp_max_nodes` nodes;
/// on exhaustion (or an infeasible ILP result) it falls back to the exact
/// MCKP-DP solver and sets WdPlan::solver_fell_back.
WdPlan optimize_wd(Benchmarker& benchmarker,
                   const std::vector<KernelRequest>& requests,
                   std::size_t total_limit, BatchSizePolicy policy,
                   WdSolver solver, std::int64_t ilp_max_nodes = 1'000'000);

/// Workspace segment alignment inside the WD arena.
inline constexpr std::size_t kWdAlignment = 256;

}  // namespace ucudnn::core
