// WR (Workspace Reuse) optimization, §III-B of the paper: dynamic
// programming over micro-batch divisions,
//
//   T(0) = 0,
//   T(b) = min( t*(b), min_{0 < b' < b} ( T(b - b') + t*(b') ) ),
//
// where t*(b') is the fastest benchmarked micro-configuration of size b'
// whose workspace fits the per-kernel limit. Micro-batches run sequentially
// and share one workspace, so a configuration's footprint is the max of its
// micro workspaces.
//
// This header also provides the set-valued variant of the same DP that emits
// a desirable-configuration set — the Pareto front in (time x workspace)
// space (§III-C1) — consumed by the WD ILP.
#pragma once

#include <vector>

#include "core/benchmarker.h"
#include "core/types.h"

namespace ucudnn::core {

/// Fastest configuration for the full mini-batch under `ws_limit`.
/// Throws Error(kNotSupported) when no algorithm fits the limit at any
/// candidate size (e.g. limit 0 with only workspace-requiring algorithms —
/// cannot happen here since zero-workspace algorithms always exist).
Configuration optimize_wr(const MicroBenchmark& bench, std::int64_t batch,
                          std::size_t ws_limit);

/// Removes Pareto-dominated entries in-place: afterwards, configurations are
/// sorted by workspace ascending with strictly decreasing execution time.
void pareto_prune(std::vector<Configuration>& configs);

/// Desirable configuration set D(batch): every Pareto-optimal division of
/// the mini-batch with workspace at most `ws_cap` (the WD total limit).
/// Contains the WR optimum as one of its elements.
std::vector<Configuration> desirable_configurations(const MicroBenchmark& bench,
                                                    std::int64_t batch,
                                                    std::size_t ws_cap);

}  // namespace ucudnn::core
