#include "core/wr_optimizer.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace ucudnn::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fastest micro-configuration of each candidate size within ws_limit.
// Returns one entry per bench.sizes index; batch 0 marks "none fits".
std::vector<MicroConfig> best_micro_configs(const MicroBenchmark& bench,
                                            std::size_t ws_limit) {
  std::vector<MicroConfig> best(bench.sizes.size());
  for (std::size_t i = 0; i < bench.sizes.size(); ++i) {
    for (const auto& perf : bench.perfs[i]) {  // ascending time
      if (perf.memory <= ws_limit) {
        best[i] = MicroConfig{perf.algo, bench.sizes[i], perf.time_ms,
                              perf.memory};
        break;
      }
    }
  }
  return best;
}

}  // namespace

Configuration optimize_wr(const MicroBenchmark& bench, std::int64_t batch,
                          std::size_t ws_limit) {
  check_param(batch >= 1, "batch must be >= 1");
  check_param(bench.sizes.size() == bench.perfs.size(),
              "benchmark table shape mismatch");
  const auto best = best_micro_configs(bench, ws_limit);

  // dp[b]: best total time to cover exactly b samples.
  std::vector<double> dp(static_cast<std::size_t>(batch) + 1, kInf);
  // parent[b] = (previous b, size index used).
  std::vector<std::pair<std::int64_t, std::size_t>> parent(
      static_cast<std::size_t>(batch) + 1, {-1, 0});
  dp[0] = 0.0;

  for (std::int64_t b = 1; b <= batch; ++b) {
    for (std::size_t i = 0; i < bench.sizes.size(); ++i) {
      const std::int64_t size = bench.sizes[i];
      if (size > b || best[i].batch == 0) continue;
      const double candidate =
          dp[static_cast<std::size_t>(b - size)] + best[i].time_ms;
      if (candidate < dp[static_cast<std::size_t>(b)]) {
        dp[static_cast<std::size_t>(b)] = candidate;
        parent[static_cast<std::size_t>(b)] = {b - size, i};
      }
    }
  }

  check(dp[static_cast<std::size_t>(batch)] < kInf, Status::kNotSupported,
        "no micro-batch division covers batch " + std::to_string(batch) +
            " within workspace limit " + std::to_string(ws_limit));

  // Reconstruct (micro-batches emitted largest-position-first; order is
  // semantically irrelevant, they run sequentially).
  Configuration config;
  std::int64_t b = batch;
  while (b > 0) {
    const auto [prev, index] = parent[static_cast<std::size_t>(b)];
    config.append(best[index]);
    b = prev;
  }
  return config;
}

void pareto_prune(std::vector<Configuration>& configs) {
  if (configs.empty()) return;
  std::sort(configs.begin(), configs.end(),
            [](const Configuration& l, const Configuration& r) {
              if (l.workspace != r.workspace) return l.workspace < r.workspace;
              return l.time_ms < r.time_ms;
            });
  std::vector<Configuration> front;
  double best_time = kInf;
  for (auto& config : configs) {
    if (config.time_ms < best_time) {
      best_time = config.time_ms;
      front.push_back(std::move(config));
    }
  }
  configs = std::move(front);
}

std::vector<Configuration> desirable_configurations(const MicroBenchmark& bench,
                                                    std::int64_t batch,
                                                    std::size_t ws_cap) {
  check_param(batch >= 1, "batch must be >= 1");

  // M(b'): micro-configurations of size b' within the cap, themselves
  // Pareto-pruned (dominated micro-configs can never help).
  std::vector<std::vector<MicroConfig>> micro_sets(bench.sizes.size());
  for (std::size_t i = 0; i < bench.sizes.size(); ++i) {
    std::vector<Configuration> as_configs;
    for (const auto& perf : bench.perfs[i]) {
      if (perf.memory > ws_cap) continue;
      Configuration c;
      c.append(MicroConfig{perf.algo, bench.sizes[i], perf.time_ms, perf.memory});
      as_configs.push_back(std::move(c));
    }
    pareto_prune(as_configs);
    for (const auto& c : as_configs) micro_sets[i].push_back(c.micro[0]);
  }

  // D(0) = { empty }; D(b) = P( U_{b'} D(b - b') ++ M(b') ).
  std::vector<std::vector<Configuration>> d(static_cast<std::size_t>(batch) + 1);
  d[0].push_back(Configuration{});
  for (std::int64_t b = 1; b <= batch; ++b) {
    std::vector<Configuration> candidates;
    for (std::size_t i = 0; i < bench.sizes.size(); ++i) {
      const std::int64_t size = bench.sizes[i];
      if (size > b || micro_sets[i].empty()) continue;
      for (const auto& base : d[static_cast<std::size_t>(b - size)]) {
        for (const auto& micro : micro_sets[i]) {
          Configuration extended = base;
          extended.append(micro);
          candidates.push_back(std::move(extended));
        }
      }
    }
    pareto_prune(candidates);
    d[static_cast<std::size_t>(b)] = std::move(candidates);
  }
  return d[static_cast<std::size_t>(batch)];
}

}  // namespace ucudnn::core
