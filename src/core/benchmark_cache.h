// Benchmark-result cache (§III-D): μ-cuDNN memoizes per-(device, kernel,
// problem, micro-batch) algorithm benchmarks in memory, and optionally in a
// file-based database so results survive across processes and can be shared
// over a network filesystem by a homogeneous cluster (offline benchmarking).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "kernels/conv_problem.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::core {

enum class CacheLoadResult {
  kMissing,      // no file at the path; nothing loaded
  kLoaded,       // entries merged successfully
  kQuarantined,  // file was corrupt; renamed to <path>.corrupt, nothing loaded
};

class BenchmarkCache {
 public:
  /// Entries are returned with blacklisted algorithms filtered out, so a
  /// blacklist decision immediately affects every later plan.
  std::optional<std::vector<mcudnn::AlgoPerf>> lookup(
      const std::string& device, ConvKernelType type,
      const kernels::ConvProblem& problem, std::int64_t micro_batch) const;

  void store(const std::string& device, ConvKernelType type,
             const kernels::ConvProblem& problem, std::int64_t micro_batch,
             const std::vector<mcudnn::AlgoPerf>& perfs);

  std::size_t size() const;
  void clear();

  /// Marks an algorithm as persistently failing on a device; lookups filter
  /// it from their results until the process exits. Blacklisting is kept in
  /// memory only — the on-disk database stays untouched so one bad run does
  /// not poison the shared cluster cache (§III-D).
  void blacklist(const std::string& device, ConvKernelType type, int algo);
  bool is_blacklisted(const std::string& device, ConvKernelType type,
                      int algo) const;
  std::size_t blacklisted_count() const;

  /// Merges entries from a database file. A missing file is fine
  /// (kMissing); a malformed file is quarantined — renamed to
  /// `<path>.corrupt` and logged — instead of throwing, so stale or
  /// damaged caches can never abort a run (kQuarantined). The cache is
  /// left unchanged unless the whole file parses (kLoaded).
  [[nodiscard]] CacheLoadResult load_file(const std::string& path);

  /// Writes the full cache to a database file atomically: the data goes to
  /// `<path>.tmp` in the same directory first and is renamed over `path`
  /// only once fully flushed, so a crash mid-save cannot corrupt a shared
  /// offline-benchmark database (§III-D NFS use case).
  void save_file(const std::string& path) const;

  /// Serialization helpers (exposed for tests).
  static std::string encode_perfs(const std::vector<mcudnn::AlgoPerf>& perfs);
  static std::vector<mcudnn::AlgoPerf> decode_perfs(const std::string& text);

 private:
  static std::string make_key(const std::string& device, ConvKernelType type,
                              const kernels::ConvProblem& problem,
                              std::int64_t micro_batch);
  static std::string blacklist_key(const std::string& device,
                                   ConvKernelType type, int algo);

  mutable Mutex mutex_{"BenchmarkCache"};
  std::map<std::string, std::vector<mcudnn::AlgoPerf>> entries_
      GUARDED_BY(mutex_);
  std::set<std::string> blacklist_ GUARDED_BY(mutex_);
};

}  // namespace ucudnn::core
