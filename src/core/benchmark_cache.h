// Benchmark-result cache (§III-D): μ-cuDNN memoizes per-(device, kernel,
// problem, micro-batch) algorithm benchmarks in memory, and optionally in a
// file-based database so results survive across processes and can be shared
// over a network filesystem by a homogeneous cluster (offline benchmarking).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kernels/conv_problem.h"
#include "mcudnn/mcudnn.h"

namespace ucudnn::core {

class BenchmarkCache {
 public:
  std::optional<std::vector<mcudnn::AlgoPerf>> lookup(
      const std::string& device, ConvKernelType type,
      const kernels::ConvProblem& problem, std::int64_t micro_batch) const;

  void store(const std::string& device, ConvKernelType type,
             const kernels::ConvProblem& problem, std::int64_t micro_batch,
             const std::vector<mcudnn::AlgoPerf>& perfs);

  std::size_t size() const;
  void clear();

  /// Merges entries from a database file; silently ignores a missing file,
  /// throws Error(kInternalError) on a malformed one.
  void load_file(const std::string& path);

  /// Writes the full cache to a database file (atomic enough for the
  /// single-writer offline-benchmark workflow).
  void save_file(const std::string& path) const;

  /// Serialization helpers (exposed for tests).
  static std::string encode_perfs(const std::vector<mcudnn::AlgoPerf>& perfs);
  static std::vector<mcudnn::AlgoPerf> decode_perfs(const std::string& text);

 private:
  static std::string make_key(const std::string& device, ConvKernelType type,
                              const kernels::ConvProblem& problem,
                              std::int64_t micro_batch);

  mutable std::mutex mutex_;
  std::map<std::string, std::vector<mcudnn::AlgoPerf>> entries_;
};

}  // namespace ucudnn::core
