#include "core/options.h"

#include "common/env.h"

namespace ucudnn::core {

Options Options::from_env() {
  Options opts;
  opts.batch_size_policy = parse_batch_size_policy(
      env_string("UCUDNN_BATCH_SIZE_POLICY", "powerOfTwo"));
  opts.workspace_policy =
      parse_workspace_policy(env_string("UCUDNN_WORKSPACE_POLICY", "wr"));
  if (const auto raw = env_raw("UCUDNN_WORKSPACE_LIMIT")) {
    opts.workspace_limit = parse_bytes(*raw);
  }
  opts.total_workspace_size =
      env_bytes("UCUDNN_TOTAL_WORKSPACE_SIZE", std::size_t{64} << 20);
  const std::string solver = env_string("UCUDNN_WD_SOLVER", "dp");
  if (solver == "dp") {
    opts.wd_solver = WdSolver::kMckpDp;
  } else if (solver == "ilp") {
    opts.wd_solver = WdSolver::kBranchBoundIlp;
  } else {
    throw Error(Status::kInvalidValue, "unknown UCUDNN_WD_SOLVER: " + solver);
  }
  opts.share_wr_workspace = env_bool("UCUDNN_SHARED_WORKSPACE", false);
  opts.cache_path = env_string("UCUDNN_CACHE_PATH", "");
  opts.benchmark_devices =
      static_cast<int>(env_int("UCUDNN_BENCHMARK_DEVICES", 1));
  check(opts.benchmark_devices >= 1, Status::kInvalidValue,
        "UCUDNN_BENCHMARK_DEVICES must be >= 1");
  opts.max_retries = static_cast<int>(env_int("UCUDNN_MAX_RETRIES", 3));
  check(opts.max_retries >= 0, Status::kInvalidValue,
        "UCUDNN_MAX_RETRIES must be >= 0");
  opts.fail_fast = env_bool("UCUDNN_FAIL_FAST", false);
  opts.ilp_max_nodes = env_int("UCUDNN_ILP_MAX_NODES", 1'000'000);
  check(opts.ilp_max_nodes >= 0, Status::kInvalidValue,
        "UCUDNN_ILP_MAX_NODES must be >= 0");
  return opts;
}

}  // namespace ucudnn::core
