#include "core/planner.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/wr_optimizer.h"
#include "kernels/registry.h"
#include "mcudnn/mcudnn.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ucudnn::core {

namespace {

telemetry::Counter& plan_cache_hits_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.plan_cache.hits");
  return c;
}

telemetry::Counter& plan_cache_misses_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.plan_cache.misses");
  return c;
}

telemetry::Gauge& plan_cache_epoch_metric() {
  static telemetry::Gauge g = telemetry::MetricsRegistry::instance().gauge(
      "ucudnn.plan_cache.epoch");
  return g;
}

telemetry::DoubleCounter& optimize_ms_metric() {
  static telemetry::DoubleCounter c =
      telemetry::MetricsRegistry::instance().double_counter(
          "ucudnn.planner.optimize_ms");
  return c;
}

telemetry::DoubleCounter& replan_benchmark_ms_metric() {
  static telemetry::DoubleCounter c =
      telemetry::MetricsRegistry::instance().double_counter(
          "ucudnn.planner.replan_benchmark_ms");
  return c;
}

telemetry::Counter& replans_metric() {
  static telemetry::Counter c = telemetry::MetricsRegistry::instance().counter(
      "ucudnn.planner.replans");
  return c;
}

}  // namespace

DeviceBuffer::DeviceBuffer(std::shared_ptr<device::Device> dev,
                           std::size_t bytes, const std::string& tag)
    : dev_(std::move(dev)), bytes_(bytes) {
  if (bytes_ > 0) ptr_ = dev_->allocate(bytes_, tag);
}

DeviceBuffer::~DeviceBuffer() {
  if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : dev_(std::move(other.dev_)),
      ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    if (dev_ && ptr_ != nullptr) dev_->deallocate(ptr_);
    dev_ = std::move(other.dev_);
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

std::shared_ptr<const ExecutionPlan> PlanCache::lookup(const std::string& key) {
  std::shared_ptr<const ExecutionPlan> found;
  {
    MutexLock lock(mutex_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) found = it->second;
  }
  if (found == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    plan_cache_misses_metric().add(1);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  plan_cache_hits_metric().add(1);
  return found;
}

void PlanCache::insert(const std::string& key,
                       std::shared_ptr<const ExecutionPlan> plan) {
  MutexLock lock(mutex_);
  plans_[key] = std::move(plan);
}

void PlanCache::bump_epoch() {
  {
    // Entries under the old epoch are unreachable anyway (the epoch is part
    // of every key); dropping them just releases the memory eagerly. The
    // clear happens before the epoch store so a concurrent lookup under the
    // new epoch can never fetch a stale plan.
    MutexLock lock(mutex_);
    plans_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_release);
  // Process-wide mirror: total epoch bumps across every handle.
  plan_cache_epoch_metric().add(1);
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return plans_.size();
}

Planner::Planner(mcudnn::Handle& handle, Options& options,
                 Benchmarker benchmarker, DegradationStats& stats)
    : handle_(handle),
      options_(options),
      stats_(stats),
      benchmarker_(std::move(benchmarker)) {}

void Planner::charge_optimize_ms(double ms) {
  total_optimize_ms_.fetch_add(ms, std::memory_order_relaxed);
  optimize_ms_metric().add(ms);
}

void Planner::charge_replan_benchmark_ms(double ms) {
  total_replan_benchmark_ms_.fetch_add(ms, std::memory_order_relaxed);
  replan_benchmark_ms_metric().add(ms);
}

std::string Planner::wr_key(ConvKernelType type,
                            const kernels::ConvProblem& problem,
                            std::size_t limit) const {
  std::ostringstream os;
  os << to_string(type) << "|" << std::hex << problem.hash() << "|" << limit
     << "|" << to_string(options_.batch_size_policy);
  return os.str();
}

std::string Planner::plan_key(ConvKernelType type,
                              const kernels::ConvProblem& problem,
                              std::size_t limit) const {
  // WR plans are keyed by the full WR identity (type x problem x limit x
  // batch-size policy) plus the device, the blacklist epoch, and the
  // workspace-sharing mode; WD plans by the arena identity instead of the
  // per-kernel limit. Changing any component makes old plans unreachable.
  std::ostringstream os;
  const bool wd = options_.workspace_policy == WorkspacePolicy::kWD &&
                  !wd_degraded_to_wr_;
  if (wd) {
    os << "WD|" << to_string(type) << "|" << std::hex << problem.hash()
       << std::dec << "|" << options_.total_workspace_size << "|"
       << to_string(options_.batch_size_policy);
  } else {
    os << "WR|" << wr_key(type, problem, limit) << "|"
       << (options_.share_wr_workspace ? "shared" : "perKernel");
  }
  os << "|" << handle_.device().spec().name << "|e" << plan_cache_.epoch();
  return os.str();
}

void Planner::record_limit(ConvKernelType type,
                           const kernels::ConvProblem& problem,
                           std::size_t limit) {
  request_limits_[wr_key(type, problem, 0)] = limit;
}

std::size_t Planner::effective_limit(ConvKernelType type,
                                     const kernels::ConvProblem& problem) const {
  if (options_.workspace_limit) return *options_.workspace_limit;
  const auto it = request_limits_.find(wr_key(type, problem, 0));
  if (it != request_limits_.end()) return it->second;
  return kDefaultPerKernelLimit;
}

Planner::WrEntry& Planner::wr_entry(ConvKernelType type,
                                    const kernels::ConvProblem& problem,
                                    const std::vector<KernelRequest>& requests) {
  const std::size_t limit = effective_limit(type, problem);
  const std::string key = wr_key(type, problem, limit);
  auto it = wr_entries_.find(key);
  if (it != wr_entries_.end()) return it->second;

  const MicroBenchmark bench =
      benchmarker_.run(type, problem, options_.batch_size_policy);
  const telemetry::ScopedSpan span("wr_dp", [&] { return key; });
  Timer timer;
  Configuration config = optimize_wr(bench, problem.batch(), limit);
  charge_optimize_ms(timer.elapsed_ms());
  bool degraded = false;
  UCUDNN_LOG_INFO << "WR " << to_string(type) << " " << problem.to_string()
                  << " limit=" << limit << " -> " << config.to_string(type)
                  << " time=" << config.time_ms
                  << "ms ws=" << config.workspace;

  // Tag workspace memory with the layer label when we know it.
  std::string tag = "workspace";
  for (const auto& request : requests) {
    if (request.matches(type, problem)) {
      tag = request.label + ":ws";
      break;
    }
  }
  DeviceBuffer ws;
  for (;;) {
    try {
      if (options_.share_wr_workspace) {
        // Sequential execution: one shared buffer, grown to the largest need.
        if (config.workspace > shared_ws_.size()) {
          shared_ws_ = DeviceBuffer(handle_.device_ptr(), config.workspace,
                                    "shared:ws");
        }
      } else {
        ws = DeviceBuffer(handle_.device_ptr(), config.workspace, tag);
      }
      break;
    } catch (const Error& e) {
      if (e.status() != Status::kAllocFailed || options_.fail_fast ||
          config.workspace == 0) {
        throw;
      }
      // Graceful degradation (§I: a resource shortfall must not abort the
      // run): re-optimize under a geometrically halved limit. Terminates
      // because the front always contains the zero-workspace configuration.
      const std::size_t degraded_limit = config.workspace / 2;
      degraded = true;
      stats_.count_degraded_allocation();
      UCUDNN_LOG_WARN << "workspace allocation of " << config.workspace
                      << " bytes failed for " << tag << " (" << e.what()
                      << "); re-optimizing with limit " << degraded_limit;
      Timer degrade_timer;
      config = optimize_wr(bench, problem.batch(), degraded_limit);
      charge_optimize_ms(degrade_timer.elapsed_ms());
    }
  }
  auto [inserted, ok] = wr_entries_.emplace(
      key, WrEntry{std::move(config), std::move(ws),
                   degraded ? "wr_dp(degraded)" : "wr_dp"});
  (void)ok;
  return inserted->second;
}

void Planner::finalize_wd(const std::vector<KernelRequest>& requests) {
  if (wd_finalized() || wd_degraded_to_wr_) return;
  check(options_.workspace_policy == WorkspacePolicy::kWD,
        Status::kBadParam, "finalize_wd requires UCUDNN_WORKSPACE_POLICY=wd");
  const telemetry::ScopedSpan span("wd_ilp", [&] {
    return std::to_string(requests.size()) + " kernels";
  });
  Timer timer;
  WdPlan plan;
  std::size_t limit = options_.total_workspace_size;
  for (;;) {
    try {
      plan = optimize_wd(benchmarker_, requests, limit,
                         options_.batch_size_policy, options_.wd_solver,
                         options_.ilp_max_nodes);
    } catch (const Error& e) {
      charge_optimize_ms(timer.elapsed_ms());
      if (e.status() != Status::kNotSupported || options_.fail_fast) throw;
      // No feasible division at all: degrade to per-kernel WR, which plans
      // each kernel independently (and can itself degrade further).
      stats_.count_solver_fallback();
      wd_degraded_to_wr_ = true;
      UCUDNN_LOG_WARN << "WD plan infeasible (" << e.what()
                      << "); degrading to per-kernel WR";
      return;
    }
    try {
      wd_arena_ = DeviceBuffer(handle_.device_ptr(), plan.total_workspace,
                               "wd_arena");
      break;
    } catch (const Error& e) {
      if (e.status() != Status::kAllocFailed || options_.fail_fast ||
          plan.total_workspace == 0) {
        throw;
      }
      // The optimizer's limit was infeasible on the actual device: halve
      // what the plan really used and re-solve, down to the zero-workspace
      // division.
      stats_.count_degraded_allocation();
      limit = plan.total_workspace / 2;
      UCUDNN_LOG_WARN << "WD arena allocation of " << plan.total_workspace
                      << " bytes failed (" << e.what()
                      << "); re-optimizing with total limit " << limit;
    }
  }
  if (plan.solver_fell_back) stats_.count_solver_fallback();
  charge_optimize_ms(timer.elapsed_ms());
  UCUDNN_LOG_INFO << "WD finalized: " << requests.size() << " kernels, "
                  << plan.num_variables << " ILP variables, arena "
                  << plan.total_workspace << " bytes, solve "
                  << plan.solve_ms << " ms";
  wd_plan_ = std::move(plan);
}

const WdAssignment* Planner::wd_assignment(
    ConvKernelType type, const kernels::ConvProblem& problem,
    const std::vector<KernelRequest>& requests) const {
  if (!wd_plan_) return nullptr;
  // Kernels recorded after finalization (the unrecorded-fallback path) make
  // `requests` longer than the frozen assignment list — they have no slot.
  const std::size_t n =
      std::min(requests.size(), wd_plan_->assignments.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (requests[i].matches(type, problem)) {
      return &wd_plan_->assignments[i];
    }
  }
  return nullptr;
}

const Configuration* Planner::configuration_for(
    ConvKernelType type, const kernels::ConvProblem& problem,
    const std::vector<KernelRequest>& requests) const {
  if (options_.workspace_policy == WorkspacePolicy::kWD &&
      !wd_degraded_to_wr_) {
    const WdAssignment* assignment = wd_assignment(type, problem, requests);
    return assignment ? &assignment->config : nullptr;
  }
  const std::size_t limit = effective_limit(type, problem);
  const auto it = wr_entries_.find(wr_key(type, problem, limit));
  return it != wr_entries_.end() ? &it->second.config : nullptr;
}

std::string Planner::provenance_for(
    ConvKernelType type, const kernels::ConvProblem& problem,
    const std::vector<KernelRequest>& requests) const {
  std::string prefix;
  if (options_.workspace_policy == WorkspacePolicy::kWD) {
    if (!wd_degraded_to_wr_ && wd_assignment(type, problem, requests)) {
      if (wd_plan_ && wd_plan_->solver_fell_back) return "wd_ilp->mckp_dp";
      return options_.wd_solver == WdSolver::kBranchBoundIlp ? "wd_ilp"
                                                             : "wd_mckp_dp";
    }
    // WD was requested but this kernel runs WR: either the whole plan was
    // infeasible or the kernel was not recorded before finalization.
    prefix = wd_degraded_to_wr_ ? "wd_infeasible->" : "wd_unrecorded->";
  }
  const auto it =
      wr_entries_.find(wr_key(type, problem, effective_limit(type, problem)));
  const std::string wr = it != wr_entries_.end() &&
                                 !it->second.provenance.empty()
                             ? it->second.provenance
                             : std::string("wr_dp");
  return prefix + wr;
}

void Planner::apply_pending_invalidations(
    const std::vector<KernelRequest>& requests) {
  if (pending_invalidations_.empty()) return;
  for (const auto& [type, algo] : pending_invalidations_) {
    const std::string prefix = std::string(to_string(type)) + "|";
    for (auto it = wr_entries_.begin(); it != wr_entries_.end();) {
      const bool uses =
          it->first.compare(0, prefix.size(), prefix) == 0 &&
          std::any_of(it->second.config.micro.begin(),
                      it->second.config.micro.end(),
                      [&](const MicroConfig& m) { return m.algo == algo; });
      it = uses ? wr_entries_.erase(it) : std::next(it);
    }
    if (wd_plan_) {
      const std::size_t n =
          std::min(requests.size(), wd_plan_->assignments.size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto& micro = wd_plan_->assignments[i].config.micro;
        if (requests[i].type == type &&
            std::any_of(micro.begin(), micro.end(),
                        [&](const MicroConfig& m) { return m.algo == algo; })) {
          // The whole arena layout depends on every assignment; re-plan from
          // scratch at the next finalize (the blacklist filter makes the new
          // plan avoid the algorithm).
          wd_plan_.reset();
          wd_arena_ = DeviceBuffer();
          break;
        }
      }
    }
  }
  pending_invalidations_.clear();
}

void Planner::note_wd_fallback(ConvKernelType type,
                               const kernels::ConvProblem& problem) {
  stats_.count_wd_unrecorded_fallback();
  const auto [it, first] =
      wd_fallbacks_.try_emplace(wr_key(type, problem, 0), 0);
  ++it->second;
  if (first) {
    UCUDNN_LOG_WARN << "WD: unrecorded kernel " << problem.to_string()
                    << ", falling back to WR (further occurrences counted "
                       "silently; see degradation stats)";
  }
}

PlannedConvolution Planner::resolve(std::shared_ptr<const ExecutionPlan> plan,
                                    std::size_t limit) {
  PlannedConvolution planned;
  switch (plan->binding.kind) {
    case WorkspaceKind::kNone:
      break;
    case WorkspaceKind::kPerKernel: {
      const auto it =
          wr_entries_.find(wr_key(plan->type, plan->problem, limit));
      // Epoch bumps always precede WR-entry erasure, so a cached plan can
      // only be fetched while its entry is still alive.
      check(it != wr_entries_.end(), Status::kInternalError,
            "cached plan without a live WR entry");
      planned.workspace = it->second.workspace.data();
      planned.workspace_bytes = it->second.workspace.size();
      break;
    }
    case WorkspaceKind::kSharedWr:
      // The shared buffer only grows; resolve against its live extent.
      planned.workspace = shared_ws_.data();
      planned.workspace_bytes = shared_ws_.size();
      break;
    case WorkspaceKind::kWdArena: {
      char* arena = static_cast<char*>(wd_arena_.data());
      planned.workspace =
          arena == nullptr ? nullptr : arena + plan->binding.offset;
      planned.workspace_bytes = plan->binding.bytes;
      break;
    }
  }
  planned.plan = std::move(plan);
  return planned;
}

PlannedConvolution Planner::plan(ConvKernelType type,
                                 const kernels::ConvProblem& problem,
                                 const std::vector<KernelRequest>& requests) {
  if (options_.workspace_policy == WorkspacePolicy::kWD &&
      !wd_degraded_to_wr_) {
    if (!wd_finalized()) finalize_wd(requests);
    if (!wd_degraded_to_wr_) {
      if (const WdAssignment* assignment =
              wd_assignment(type, problem, requests)) {
        const std::string key = plan_key(type, problem, 0);
        if (auto cached = plan_cache_.lookup(key)) {
          return resolve(std::move(cached), 0);
        }
        std::shared_ptr<const ExecutionPlan> built;
        {
          const telemetry::ScopedSpan span("plan_build",
                                           [&] { return key; });
          built = std::make_shared<const ExecutionPlan>(build_plan(
              type, problem, assignment->config,
              WorkspaceBinding{WorkspaceKind::kWdArena, assignment->offset,
                               assignment->config.workspace}));
        }
        plan_cache_.insert(key, built);
        return resolve(std::move(built), 0);
      }
      if (wd_finalized()) note_wd_fallback(type, problem);
    }
  }

  const std::size_t limit = effective_limit(type, problem);
  const std::string key = plan_key(type, problem, limit);
  if (auto cached = plan_cache_.lookup(key)) {
    return resolve(std::move(cached), limit);
  }
  WrEntry& entry = wr_entry(type, problem, requests);
  const WorkspaceBinding binding =
      options_.share_wr_workspace
          ? WorkspaceBinding{WorkspaceKind::kSharedWr, 0, shared_ws_.size()}
          : WorkspaceBinding{WorkspaceKind::kPerKernel, 0,
                             entry.workspace.size()};
  std::shared_ptr<const ExecutionPlan> built;
  {
    const telemetry::ScopedSpan span("plan_build", [&] { return key; });
    built = std::make_shared<const ExecutionPlan>(
        build_plan(type, problem, entry.config, binding));
  }
  plan_cache_.insert(key, built);
  return resolve(std::move(built), limit);
}

std::vector<PlanSegment> Planner::replan_tail(
    ConvKernelType type, const kernels::ConvProblem& problem, int algo,
    std::int64_t done, std::size_t ws_bytes, int replans) {
  const telemetry::ScopedSpan span("replan", [&] {
    return problem.to_string() + " algo=" + std::to_string(algo);
  });
  replans_metric().add(1);
  const std::string& device_name = handle_.device().spec().name;
  benchmarker_.cache()->blacklist(device_name, type, algo);
  stats_.count_blacklisted_algorithm();
  // Cached WR/WD plans referencing the algorithm are stale now, but their
  // workspace is live in the current call chain — the epoch bump makes them
  // unreachable immediately; the buffers themselves are reclaimed at the
  // next plan() entry via apply_pending_invalidations().
  plan_cache_.bump_epoch();
  pending_invalidations_.emplace_back(type, algo);
  // Each re-plan retires one algorithm, so the algorithm count bounds the
  // recursion; past that the failure is systemic, not algorithmic.
  check(replans <= kernels::algo_count(type), Status::kExecutionFailed,
        "kernel keeps failing after blacklisting " +
            std::to_string(replans - 1) + " algorithms for " +
            problem.to_string());
  UCUDNN_LOG_WARN << "blacklisting " << kernels::algo_name(type, algo)
                  << " on " << device_name << " after repeated failures; "
                  << "re-planning the remaining "
                  << (problem.batch() - done) << " samples";
  // Re-plan only the unexecuted tail: outputs already written (and, for
  // BackwardFilter, partial accumulations) stay untouched. The existing
  // workspace bounds the new plan, so no reallocation is needed.
  const kernels::ConvProblem rest = problem.with_batch(problem.batch() - done);
  Timer bench_timer;
  const MicroBenchmark bench =
      benchmarker_.run(type, rest, options_.batch_size_policy);
  charge_replan_benchmark_ms(bench_timer.elapsed_ms());
  const telemetry::ScopedSpan wr_span("wr_dp");
  Timer timer;
  const Configuration replacement = optimize_wr(bench, rest.batch(), ws_bytes);
  charge_optimize_ms(timer.elapsed_ms());
  return build_tail_segments(type, problem, replacement, done);
}

}  // namespace ucudnn::core
