// tfmini model builders for the §IV-B2 evaluation: AlexNet, ResNet-50 and
// DenseNet-40 expressed in the deferred-graph style of the TensorFlow
// benchmarks repository (tf_cnn_benchmarks; like it, AlexNet omits LRN).
#pragma once

#include "frameworks/tfmini/tfmini.h"

namespace ucudnn::tfmini {

/// Returns the loss op index.
int build_alexnet(Graph& graph, std::int64_t batch, std::int64_t classes = 1000);
int build_resnet50(Graph& graph, std::int64_t batch, std::int64_t classes = 1000);
int build_densenet40(Graph& graph, std::int64_t batch, std::int64_t growth = 40,
                     std::int64_t classes = 10);

}  // namespace ucudnn::tfmini
