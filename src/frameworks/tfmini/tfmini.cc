#include "frameworks/tfmini/tfmini.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <random>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "gemm/gemm.h"
#include "telemetry/trace.h"

namespace ucudnn::tfmini {

namespace {

std::int64_t pool_out(std::int64_t in, std::int64_t window, std::int64_t stride,
                      std::int64_t pad) {
  return (in + 2 * pad - window) / stride + 1;
}

}  // namespace

std::int64_t Graph::same_pad(std::int64_t in, std::int64_t window,
                             std::int64_t stride) {
  const std::int64_t out = (in + stride - 1) / stride;  // ceil
  const std::int64_t total =
      std::max<std::int64_t>(0, (out - 1) * stride + window - in);
  return (total + 1) / 2;  // round asymmetric TF padding up to symmetric
}

int Graph::add_op(Op op) {
  check_param(by_name_.find(op.name) == by_name_.end(),
              "duplicate op name: " + op.name);
  for (int input : op.inputs) {
    check_param(input >= 0 && input < static_cast<int>(ops_.size()),
                "bad input index for op " + op.name);
  }
  const int index = static_cast<int>(ops_.size());
  by_name_.emplace(op.name, index);
  ops_.push_back(std::move(op));
  return index;
}

int Graph::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  check(it != by_name_.end(), Status::kBadParam, "unknown op: " + name);
  return it->second;
}

namespace {

// Aggregate helper: value-initializes every field, then the caller fills in
// what it needs (avoids -Wmissing-field-initializers on designated inits).
Op make_op(OpType type, std::string name, std::vector<int> inputs,
           const TensorShape& shape) {
  Op op{};
  op.type = type;
  op.name = std::move(name);
  op.inputs = std::move(inputs);
  op.shape = shape;
  return op;
}

}  // namespace

int Graph::placeholder(const std::string& name, const TensorShape& shape) {
  return add_op(make_op(OpType::kPlaceholder, name, {}, shape));
}

int Graph::variable(const std::string& name, const TensorShape& shape) {
  return add_op(make_op(OpType::kVariable, name, {}, shape));
}

int Graph::conv2d(const std::string& name, int input, int filters,
                  std::int64_t stride, Padding padding) {
  const Op& in = op(input);
  const Op& w = op(filters);
  check_param(w.type == OpType::kVariable, "conv2d filters must be a variable");
  const FilterDesc filter{w.shape.n, w.shape.c, w.shape.h, w.shape.w};
  ConvGeometry geom;
  geom.stride_h = geom.stride_w = stride;
  if (padding == Padding::kSame) {
    geom.pad_h = same_pad(in.shape.h, filter.r, stride);
    geom.pad_w = same_pad(in.shape.w, filter.s, stride);
  }
  Op result = make_op(OpType::kConv2d, name, {input, filters},
                      geom.output_shape(in.shape, filter));
  result.filter = filter;
  result.geom = geom;
  return add_op(std::move(result));
}

int Graph::relu(const std::string& name, int input) {
  return add_op(make_op(OpType::kRelu, name, {input}, op(input).shape));
}

int Graph::max_pool(const std::string& name, int input, std::int64_t window,
                    std::int64_t stride, Padding padding) {
  const Op& in = op(input);
  const std::int64_t pad =
      padding == Padding::kSame ? same_pad(in.shape.h, window, stride) : 0;
  Op result = make_op(OpType::kMaxPool, name, {input},
                      {in.shape.n, in.shape.c,
                       pool_out(in.shape.h, window, stride, pad),
                       pool_out(in.shape.w, window, stride, pad)});
  result.window = window;
  result.stride = stride;
  result.pad = pad;
  return add_op(std::move(result));
}

int Graph::avg_pool(const std::string& name, int input, std::int64_t window,
                    std::int64_t stride, Padding padding) {
  Op result = op(max_pool(name + "__tmp", input, window, stride, padding));
  ops_.pop_back();
  by_name_.erase(name + "__tmp");
  result.type = OpType::kAvgPool;
  result.name = name;
  return add_op(std::move(result));
}

int Graph::matmul(const std::string& name, int input, int weights) {
  const Op& in = op(input);
  const Op& w = op(weights);
  check_param(w.type == OpType::kVariable, "matmul weights must be a variable");
  const std::int64_t in_features = in.shape.count() / in.shape.n;
  check_param(w.shape.c == in_features,
              "matmul weight shape mismatch for " + name);
  Op result = make_op(OpType::kMatMul, name, {input, weights},
                      {in.shape.n, w.shape.n, 1, 1});
  result.units = w.shape.n;
  return add_op(std::move(result));
}

int Graph::batch_norm(const std::string& name, int input) {
  return add_op(make_op(OpType::kBatchNorm, name, {input}, op(input).shape));
}

int Graph::add(const std::string& name, int a, int b) {
  check_param(op(a).shape == op(b).shape, "add shape mismatch for " + name);
  return add_op(make_op(OpType::kAdd, name, {a, b}, op(a).shape));
}

int Graph::concat(const std::string& name, const std::vector<int>& inputs) {
  check_param(!inputs.empty(), "concat needs inputs");
  TensorShape shape = op(inputs[0]).shape;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const TensorShape& s = op(inputs[i]).shape;
    check_param(s.n == shape.n && s.h == shape.h && s.w == shape.w,
                "concat spatial mismatch for " + name);
    shape.c += s.c;
  }
  return add_op(make_op(OpType::kConcat, name, inputs, shape));
}

int Graph::softmax_xent(const std::string& name, int logits) {
  return add_op(make_op(OpType::kSoftmaxXent, name, {logits}, {1, 1, 1, 1}));
}

// ----------------------------------------------------------------- Session

Session::Session(Graph& graph, core::UcudnnHandle& handle)
    : graph_(graph),
      handle_(handle),
      dev_(handle.base().device_ptr()),
      virtual_mode_(handle.base().exec_mode() == mcudnn::ExecMode::kVirtual) {
  buffers_.resize(graph_.ops().size());
  // Virtual mode never touches tensor contents, so intermediate buffers of
  // equal size can share storage — modeling TensorFlow's reusing (BFC)
  // allocator. Numeric mode allocates one buffer per op (activations are
  // needed by the tape).
  std::map<std::size_t, float*> pool;
  for (std::size_t i = 0; i < graph_.ops().size(); ++i) {
    const Op& op = graph_.ops()[i];
    OpBuffers& b = buffers_[i];
    b.count = op.shape.count();
    const std::size_t bytes = static_cast<std::size_t>(b.count) * sizeof(float);
    if (virtual_mode_ && op.type != OpType::kPlaceholder &&
        op.type != OpType::kVariable) {
      auto [it, inserted] = pool.try_emplace(bytes, nullptr);
      if (inserted) {
        it->second = static_cast<float*>(dev_->allocate(bytes, "pooled:data"));
        owned_.push_back(it->second);
      }
      b.data = it->second;
    } else {
      b.data = static_cast<float*>(dev_->allocate(bytes, op.name + ":data"));
      owned_.push_back(b.data);
    }
    std::size_t aux_bytes = 0;
    switch (op.type) {
      case OpType::kMaxPool: aux_bytes = bytes; break;               // argmax
      case OpType::kBatchNorm:
        aux_bytes = static_cast<std::size_t>(2 * op.shape.c) * sizeof(float);
        break;                                                       // stats
      case OpType::kSoftmaxXent:
        aux_bytes = graph_.op(op.inputs[0]).shape.bytes();           // probs
        break;
      default: break;
    }
    if (aux_bytes > 0 && !virtual_mode_) {
      b.aux = static_cast<float*>(dev_->allocate(aux_bytes, op.name + ":aux"));
      owned_.push_back(b.aux);
    }
  }
}

Session::~Session() {
  for (auto& b : buffers_) dev_->deallocate(b.grad);
  for (void* ptr : owned_) dev_->deallocate(ptr);
}

float* Session::grad(int op) {
  OpBuffers& b = buffers_.at(static_cast<std::size_t>(op));
  if (b.grad == nullptr) {
    b.grad = static_cast<float*>(dev_->allocate(
        static_cast<std::size_t>(b.count) * sizeof(float),
        graph_.op(op).name + ":grad"));
  }
  return b.grad;
}

void Session::initialize(std::uint64_t seed) {
  initialized_ = true;
  if (virtual_mode_) return;
  std::mt19937 rng(static_cast<unsigned>(seed));
  for (std::size_t i = 0; i < graph_.ops().size(); ++i) {
    const Op& op = graph_.ops()[i];
    if (op.type == OpType::kPlaceholder) {
      fill_random(buffers_[i].data, buffers_[i].count, seed ^ (i * 7919));
    } else if (op.type == OpType::kVariable) {
      const std::int64_t fan_in = op.shape.c * op.shape.h * op.shape.w;
      std::normal_distribution<float> dist(
          0.0f, std::sqrt(2.0f / static_cast<float>(std::max<std::int64_t>(
                                     1, fan_in))));
      for (std::int64_t j = 0; j < buffers_[i].count; ++j) {
        buffers_[i].data[j] = dist(rng);
      }
    }
  }
}

void Session::model_memory_op(double bytes) const {
  const auto& spec = dev_->spec();
  dev_->advance_clock_ms(spec.kernel_overhead_us * 1e-3 +
                         bytes / (spec.mem_bandwidth_gbs * 1e9) * 1e3);
}

void Session::forward_op(int index) {
  const Op& op = graph_.op(index);
  OpBuffers& out = buffers_[static_cast<std::size_t>(index)];
  const auto in = [&](int slot) -> OpBuffers& {
    return buffers_[static_cast<std::size_t>(op.inputs[static_cast<std::size_t>(slot)])];
  };
  const auto in_op = [&](int slot) -> const Op& {
    return graph_.op(op.inputs[static_cast<std::size_t>(slot)]);
  };

  switch (op.type) {
    case OpType::kPlaceholder:
    case OpType::kVariable:
      return;
    case OpType::kConv2d: {
      const kernels::ConvProblem problem(in_op(0).shape, op.filter, op.geom);
      handle_.set_next_kernel_label(op.name);
      handle_.convolution(ConvKernelType::kForward, problem, 1.0f, in(0).data,
                          in(1).data, 0.0f, out.data);
      return;
    }
    case OpType::kRelu: {
      if (virtual_mode_) return model_memory_op(2.0 * op.shape.bytes());
      const float* x = in(0).data;
      float* y = out.data;
      parallel_for_each(
          out.count, [&](std::int64_t i) { y[i] = std::max(0.0f, x[i]); },
          1 << 14);
      return;
    }
    case OpType::kMaxPool:
    case OpType::kAvgPool: {
      if (virtual_mode_) {
        return model_memory_op(in_op(0).shape.bytes() + op.shape.bytes());
      }
      const TensorShape& is = in_op(0).shape;
      const float* x = in(0).data;
      float* y = out.data;
      auto* argmax = reinterpret_cast<std::int32_t*>(out.aux);
      const bool is_max = op.type == OpType::kMaxPool;
      parallel_for_each(op.shape.n * op.shape.c, [&](std::int64_t nc) {
        const float* xp = x + nc * is.h * is.w;
        float* yp = y + nc * op.shape.h * op.shape.w;
        for (std::int64_t i = 0; i < op.shape.h; ++i) {
          for (std::int64_t j = 0; j < op.shape.w; ++j) {
            const std::int64_t h0 = std::max<std::int64_t>(0, i * op.stride - op.pad);
            const std::int64_t w0 = std::max<std::int64_t>(0, j * op.stride - op.pad);
            const std::int64_t h1 = std::min(is.h, i * op.stride - op.pad + op.window);
            const std::int64_t w1 = std::min(is.w, j * op.stride - op.pad + op.window);
            if (is_max) {
              float best = -std::numeric_limits<float>::infinity();
              std::int32_t best_idx = 0;
              for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) {
                  if (xp[h * is.w + w] > best) {
                    best = xp[h * is.w + w];
                    best_idx = static_cast<std::int32_t>(h * is.w + w);
                  }
                }
              }
              yp[i * op.shape.w + j] = best;
              argmax[nc * op.shape.h * op.shape.w + i * op.shape.w + j] = best_idx;
            } else {
              double acc = 0.0;
              for (std::int64_t h = h0; h < h1; ++h) {
                for (std::int64_t w = w0; w < w1; ++w) acc += xp[h * is.w + w];
              }
              // TF-style: divide by the number of valid elements.
              const double area = static_cast<double>((h1 - h0) * (w1 - w0));
              yp[i * op.shape.w + j] = static_cast<float>(acc / area);
            }
          }
        }
      });
      return;
    }
    case OpType::kMatMul: {
      const std::int64_t n = op.shape.n;
      const std::int64_t in_features = in_op(0).shape.count() / n;
      if (virtual_mode_) {
        return model_memory_op(in_op(0).shape.bytes() +
                               in_op(1).shape.bytes() + op.shape.bytes() +
                               2.0 * n * in_features * op.units / 4.0);
      }
      gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, n, op.units, in_features,
                  1.0f, in(0).data, in_features, in(1).data, in_features, 0.0f,
                  out.data, op.units);
      return;
    }
    case OpType::kBatchNorm: {
      if (virtual_mode_) return model_memory_op(4.0 * op.shape.bytes());
      const TensorShape& s = op.shape;
      const std::int64_t plane = s.h * s.w;
      const std::int64_t m = s.n * plane;
      float* mean = out.aux;
      float* inv_std = out.aux + s.c;
      parallel_for_each(s.c, [&](std::int64_t c) {
        double sum = 0.0, sq = 0.0;
        for (std::int64_t n = 0; n < s.n; ++n) {
          const float* x = in(0).data + (n * s.c + c) * plane;
          for (std::int64_t p = 0; p < plane; ++p) {
            sum += x[p];
            sq += static_cast<double>(x[p]) * x[p];
          }
        }
        const double mu = sum / static_cast<double>(m);
        const double var = sq / static_cast<double>(m) - mu * mu;
        mean[c] = static_cast<float>(mu);
        inv_std[c] = static_cast<float>(1.0 / std::sqrt(var + op.eps));
        for (std::int64_t n = 0; n < s.n; ++n) {
          const float* x = in(0).data + (n * s.c + c) * plane;
          float* y = out.data + (n * s.c + c) * plane;
          for (std::int64_t p = 0; p < plane; ++p) {
            y[p] = (x[p] - mean[c]) * inv_std[c];
          }
        }
      });
      return;
    }
    case OpType::kAdd: {
      if (virtual_mode_) return model_memory_op(3.0 * op.shape.bytes());
      const float* a = in(0).data;
      const float* b = in(1).data;
      float* y = out.data;
      parallel_for_each(
          out.count, [&](std::int64_t i) { y[i] = a[i] + b[i]; }, 1 << 14);
      return;
    }
    case OpType::kConcat: {
      if (virtual_mode_) return model_memory_op(2.0 * op.shape.bytes());
      const std::int64_t plane = op.shape.h * op.shape.w;
      std::int64_t c_offset = 0;
      for (std::size_t slot = 0; slot < op.inputs.size(); ++slot) {
        const TensorShape& s = graph_.op(op.inputs[slot]).shape;
        const float* src = buffers_[static_cast<std::size_t>(op.inputs[slot])].data;
        for (std::int64_t n = 0; n < op.shape.n; ++n) {
          std::copy(src + n * s.c * plane, src + (n + 1) * s.c * plane,
                    out.data + (n * op.shape.c + c_offset) * plane);
        }
        c_offset += s.c;
      }
      return;
    }
    case OpType::kSoftmaxXent: {
      if (virtual_mode_) return model_memory_op(3.0 * in_op(0).shape.bytes());
      const std::int64_t n = in_op(0).shape.n;
      const std::int64_t classes = in_op(0).shape.count() / n;
      double loss = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* x = in(0).data + i * classes;
        float* p = out.aux + i * classes;
        const float max_v = *std::max_element(x, x + classes);
        double sum = 0.0;
        for (std::int64_t c = 0; c < classes; ++c) {
          p[c] = std::exp(x[c] - max_v);
          sum += p[c];
        }
        for (std::int64_t c = 0; c < classes; ++c) {
          p[c] = static_cast<float>(p[c] / sum);
        }
        loss -= std::log(std::max(1e-12, static_cast<double>(p[i % classes])));
      }
      out.data[0] = static_cast<float>(loss / static_cast<double>(n));
      return;
    }
  }
}

void Session::backward_op(int index) {
  const Op& op = graph_.op(index);
  OpBuffers& out = buffers_[static_cast<std::size_t>(index)];
  const auto in = [&](int slot) -> OpBuffers& {
    return buffers_[static_cast<std::size_t>(op.inputs[static_cast<std::size_t>(slot)])];
  };
  const auto in_op = [&](int slot) -> const Op& {
    return graph_.op(op.inputs[static_cast<std::size_t>(slot)]);
  };

  switch (op.type) {
    case OpType::kPlaceholder:
    case OpType::kVariable:
      return;
    case OpType::kConv2d: {
      const kernels::ConvProblem problem(in_op(0).shape, op.filter, op.geom);
      const bool v = virtual_mode_;
      handle_.convolution(ConvKernelType::kBackwardFilter, problem, 1.0f,
                          v ? nullptr : in(0).data,
                          v ? nullptr : grad(index),
                          1.0f, v ? nullptr : grad(op.inputs[1]));
      handle_.convolution(ConvKernelType::kBackwardData, problem, 1.0f,
                          v ? nullptr : grad(index),
                          v ? nullptr : in(1).data, 1.0f,
                          v ? nullptr : grad(op.inputs[0]));
      return;
    }
    case OpType::kRelu: {
      if (virtual_mode_) return model_memory_op(3.0 * op.shape.bytes());
      const float* y = out.data;
      const float* dy = grad(index);
      float* dx = grad(op.inputs[0]);
      parallel_for_each(
          out.count,
          [&](std::int64_t i) { dx[i] += y[i] > 0.0f ? dy[i] : 0.0f; },
          1 << 14);
      return;
    }
    case OpType::kMaxPool: {
      if (virtual_mode_) {
        return model_memory_op(in_op(0).shape.bytes() + op.shape.bytes());
      }
      const TensorShape& is = in_op(0).shape;
      const auto* argmax = reinterpret_cast<const std::int32_t*>(out.aux);
      float* dx_base = grad(op.inputs[0]);
      const float* dy_base = grad(index);
      parallel_for_each(op.shape.n * op.shape.c, [&](std::int64_t nc) {
        float* dx = dx_base + nc * is.h * is.w;
        const float* dy = dy_base + nc * op.shape.h * op.shape.w;
        const std::int32_t* am = argmax + nc * op.shape.h * op.shape.w;
        for (std::int64_t p = 0; p < op.shape.h * op.shape.w; ++p) {
          dx[am[p]] += dy[p];
        }
      });
      return;
    }
    case OpType::kAvgPool: {
      if (virtual_mode_) {
        return model_memory_op(in_op(0).shape.bytes() + op.shape.bytes());
      }
      const TensorShape& is = in_op(0).shape;
      float* dx_base = grad(op.inputs[0]);
      const float* dy_base = grad(index);
      parallel_for_each(op.shape.n * op.shape.c, [&](std::int64_t nc) {
        float* dx = dx_base + nc * is.h * is.w;
        const float* dy = dy_base + nc * op.shape.h * op.shape.w;
        for (std::int64_t i = 0; i < op.shape.h; ++i) {
          for (std::int64_t j = 0; j < op.shape.w; ++j) {
            const std::int64_t h0 = std::max<std::int64_t>(0, i * op.stride - op.pad);
            const std::int64_t w0 = std::max<std::int64_t>(0, j * op.stride - op.pad);
            const std::int64_t h1 = std::min(is.h, i * op.stride - op.pad + op.window);
            const std::int64_t w1 = std::min(is.w, j * op.stride - op.pad + op.window);
            const float g = dy[i * op.shape.w + j] /
                            static_cast<float>((h1 - h0) * (w1 - w0));
            for (std::int64_t h = h0; h < h1; ++h) {
              for (std::int64_t w = w0; w < w1; ++w) dx[h * is.w + w] += g;
            }
          }
        }
      });
      return;
    }
    case OpType::kMatMul: {
      const std::int64_t n = op.shape.n;
      const std::int64_t in_features = in_op(0).shape.count() / n;
      if (virtual_mode_) {
        return model_memory_op(2.0 * (in_op(0).shape.bytes() +
                                      in_op(1).shape.bytes() +
                                      op.shape.bytes()));
      }
      // dW += dyᵀ x;  dx += dy W.
      gemm::sgemm(gemm::Trans::kYes, gemm::Trans::kNo, op.units, in_features, n,
                  1.0f, grad(index), op.units, in(0).data, in_features, 1.0f,
                  grad(op.inputs[1]), in_features);
      gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, n, in_features, op.units,
                  1.0f, grad(index), op.units, in(1).data, in_features, 1.0f,
                  grad(op.inputs[0]), in_features);
      return;
    }
    case OpType::kBatchNorm: {
      if (virtual_mode_) return model_memory_op(6.0 * op.shape.bytes());
      const TensorShape& s = op.shape;
      const std::int64_t plane = s.h * s.w;
      const std::int64_t m = s.n * plane;
      const float* mean = out.aux;
      const float* inv_std = out.aux + s.c;
      parallel_for_each(s.c, [&](std::int64_t c) {
        double dxhat_sum = 0.0, dxhat_xhat_sum = 0.0;
        for (std::int64_t n = 0; n < s.n; ++n) {
          const float* x = in(0).data + (n * s.c + c) * plane;
          const float* dy = grad(index) + (n * s.c + c) * plane;
          for (std::int64_t p = 0; p < plane; ++p) {
            const float xhat = (x[p] - mean[c]) * inv_std[c];
            dxhat_sum += dy[p];
            dxhat_xhat_sum += static_cast<double>(dy[p]) * xhat;
          }
        }
        const float scale = inv_std[c] / static_cast<float>(m);
        for (std::int64_t n = 0; n < s.n; ++n) {
          const float* x = in(0).data + (n * s.c + c) * plane;
          const float* dy = grad(index) + (n * s.c + c) * plane;
          float* dx = grad(op.inputs[0]) + (n * s.c + c) * plane;
          for (std::int64_t p = 0; p < plane; ++p) {
            const float xhat = (x[p] - mean[c]) * inv_std[c];
            dx[p] += scale * (static_cast<float>(m) * dy[p] -
                              static_cast<float>(dxhat_sum) -
                              xhat * static_cast<float>(dxhat_xhat_sum));
          }
        }
      });
      return;
    }
    case OpType::kAdd: {
      if (virtual_mode_) return model_memory_op(3.0 * op.shape.bytes());
      const float* dy = grad(index);
      float* da = grad(op.inputs[0]);
      float* db = grad(op.inputs[1]);
      parallel_for_each(
          out.count,
          [&](std::int64_t i) {
            da[i] += dy[i];
            db[i] += dy[i];
          },
          1 << 14);
      return;
    }
    case OpType::kConcat: {
      if (virtual_mode_) return model_memory_op(2.0 * op.shape.bytes());
      const std::int64_t plane = op.shape.h * op.shape.w;
      std::int64_t c_offset = 0;
      for (std::size_t slot = 0; slot < op.inputs.size(); ++slot) {
        const TensorShape& s = graph_.op(op.inputs[slot]).shape;
        float* dst = grad(op.inputs[slot]);
        const float* out_grad = grad(index);
        for (std::int64_t n = 0; n < op.shape.n; ++n) {
          const float* src = out_grad + (n * op.shape.c + c_offset) * plane;
          for (std::int64_t i = 0; i < s.c * plane; ++i) {
            dst[n * s.c * plane + i] += src[i];
          }
        }
        c_offset += s.c;
      }
      return;
    }
    case OpType::kSoftmaxXent: {
      if (virtual_mode_) return model_memory_op(2.0 * in_op(0).shape.bytes());
      const std::int64_t n = in_op(0).shape.n;
      const std::int64_t classes = in_op(0).shape.count() / n;
      const float seed = grad(index)[0] / static_cast<float>(n);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = out.aux + i * classes;
        float* dx = grad(op.inputs[0]) + i * classes;
        const std::int64_t label = i % classes;
        for (std::int64_t c = 0; c < classes; ++c) {
          dx[c] += seed * (p[c] - (c == label ? 1.0f : 0.0f));
        }
      }
      return;
    }
  }
}

void Session::register_conv_kernels() {
  constexpr ConvKernelType kPasses[] = {ConvKernelType::kForward,
                                        ConvKernelType::kBackwardFilter,
                                        ConvKernelType::kBackwardData};
  for (const Op& op : graph_.ops()) {
    if (op.type != OpType::kConv2d) continue;
    const kernels::ConvProblem problem(graph_.op(op.inputs[0]).shape,
                                       op.filter, op.geom);
    for (const ConvKernelType type : kPasses) {
      handle_.set_next_kernel_label(op.name);
      handle_.get_algorithm(type, problem,
                            mcudnn::AlgoPreference::kSpecifyWorkspaceLimit,
                            core::kDefaultPerKernelLimit);
    }
  }
}

void Session::run_forward() {
  if (!initialized_) initialize();
  if (!registered_kernels_) {
    // The graph already contains the gradient tape, so all three kernel
    // types are known now — announce them before the first execution (and
    // thus before any WD finalization).
    register_conv_kernels();
    registered_kernels_ = true;
  }
  const telemetry::ScopedSpan span("session.run_forward");
  for (int i = 0; i < static_cast<int>(graph_.ops().size()); ++i) {
    const telemetry::ScopedSpan op_span("op.forward", [&] {
      return graph_.ops()[static_cast<std::size_t>(i)].name;
    });
    forward_op(i);
  }
}

void Session::run_backward() {
  if (!virtual_mode_) {
    for (int i = 0; i < static_cast<int>(buffers_.size()); ++i) {
      fill_constant(grad(i), buffers_[static_cast<std::size_t>(i)].count, 0.0f);
    }
    const int last = static_cast<int>(buffers_.size()) - 1;
    fill_constant(grad(last), buffers_.back().count,
                  1.0f / static_cast<float>(buffers_.back().count));
  }
  const telemetry::ScopedSpan span("session.run_backward");
  for (int i = static_cast<int>(graph_.ops().size()); i-- > 0;) {
    const telemetry::ScopedSpan op_span("op.backward", [&] {
      return graph_.ops()[static_cast<std::size_t>(i)].name;
    });
    backward_op(i);
  }
}

std::vector<Session::OpTime> Session::time(int iterations) {
  check_param(iterations >= 1, "need at least one timing iteration");
  run_forward();
  run_backward();

  std::vector<OpTime> result(graph_.ops().size());
  for (std::size_t i = 0; i < graph_.ops().size(); ++i) {
    result[i].name = graph_.ops()[i].name;
  }
  double total = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    for (int i = 0; i < static_cast<int>(graph_.ops().size()); ++i) {
      const double clock0 = dev_->clock_ms();
      Timer timer;
      forward_op(i);
      result[static_cast<std::size_t>(i)].forward_ms +=
          virtual_mode_ ? dev_->clock_ms() - clock0 : timer.elapsed_ms();
    }
    if (!virtual_mode_) {
      for (int i = 0; i < static_cast<int>(buffers_.size()); ++i) {
        fill_constant(grad(i), buffers_[static_cast<std::size_t>(i)].count,
                      0.0f);
      }
      const int last = static_cast<int>(buffers_.size()) - 1;
      fill_constant(grad(last), buffers_.back().count,
                    1.0f / static_cast<float>(buffers_.back().count));
    }
    for (int i = static_cast<int>(graph_.ops().size()); i-- > 0;) {
      const double clock0 = dev_->clock_ms();
      Timer timer;
      backward_op(i);
      result[static_cast<std::size_t>(i)].backward_ms +=
          virtual_mode_ ? dev_->clock_ms() - clock0 : timer.elapsed_ms();
    }
  }
  for (auto& ot : result) {
    ot.forward_ms /= iterations;
    ot.backward_ms /= iterations;
    total += ot.forward_ms + ot.backward_ms;
  }
  last_iteration_ms_ = total;
  return result;
}

}  // namespace ucudnn::tfmini
