#include "frameworks/tfmini/models.h"

#include <string>

namespace ucudnn::tfmini {

namespace {

// conv2d with its filter variable, then batch norm + relu.
int conv_bn_relu(Graph& g, const std::string& name, int input,
                 std::int64_t out_channels, std::int64_t kernel,
                 std::int64_t stride, bool with_relu = true) {
  const std::int64_t in_channels = g.op(input).shape.c;
  const int w = g.variable(name + "/weights",
                           {out_channels, in_channels, kernel, kernel});
  int top = g.conv2d(name, input, w, stride, Padding::kSame);
  top = g.batch_norm(name + "/bn", top);
  if (with_relu) top = g.relu(name + "/relu", top);
  return top;
}

int bottleneck(Graph& g, const std::string& name, int input,
               std::int64_t channels, std::int64_t stride) {
  int branch = conv_bn_relu(g, name + "/conv1", input, channels, 1, 1);
  branch = conv_bn_relu(g, name + "/conv2", branch, channels, 3, stride);
  branch = conv_bn_relu(g, name + "/conv3", branch, channels * 4, 1, 1,
                        /*with_relu=*/false);
  int shortcut = input;
  if (stride != 1 || g.op(input).shape.c != channels * 4) {
    shortcut = conv_bn_relu(g, name + "/down", input, channels * 4, 1, stride,
                            /*with_relu=*/false);
  }
  const int sum = g.add(name + "/add", branch, shortcut);
  return g.relu(name + "/out", sum);
}

}  // namespace

int build_alexnet(Graph& g, std::int64_t batch, std::int64_t classes) {
  int top = g.placeholder("input", {batch, 3, 227, 227});
  // tf_cnn_benchmarks AlexNet: conv-relu-pool x2, conv-relu x3, pool, 3 FC.
  int w = g.variable("conv1/weights", {96, 3, 11, 11});
  top = g.conv2d("conv1", top, w, 4, Padding::kValid);
  top = g.relu("conv1/relu", top);
  top = g.max_pool("pool1", top, 3, 2, Padding::kValid);
  w = g.variable("conv2/weights", {256, 96, 5, 5});
  top = g.conv2d("conv2", top, w, 1, Padding::kSame);
  top = g.relu("conv2/relu", top);
  top = g.max_pool("pool2", top, 3, 2, Padding::kValid);
  w = g.variable("conv3/weights", {384, 256, 3, 3});
  top = g.conv2d("conv3", top, w, 1, Padding::kSame);
  top = g.relu("conv3/relu", top);
  w = g.variable("conv4/weights", {384, 384, 3, 3});
  top = g.conv2d("conv4", top, w, 1, Padding::kSame);
  top = g.relu("conv4/relu", top);
  w = g.variable("conv5/weights", {256, 384, 3, 3});
  top = g.conv2d("conv5", top, w, 1, Padding::kSame);
  top = g.relu("conv5/relu", top);
  top = g.max_pool("pool5", top, 3, 2, Padding::kValid);
  const std::int64_t features = g.op(top).shape.count() / batch;
  top = g.matmul("fc6", top, g.variable("fc6/weights", {4096, features, 1, 1}));
  top = g.relu("fc6/relu", top);
  top = g.matmul("fc7", top, g.variable("fc7/weights", {4096, 4096, 1, 1}));
  top = g.relu("fc7/relu", top);
  top = g.matmul("fc8", top, g.variable("fc8/weights", {classes, 4096, 1, 1}));
  return g.softmax_xent("loss", top);
}

int build_resnet50(Graph& g, std::int64_t batch, std::int64_t classes) {
  int top = g.placeholder("input", {batch, 3, 224, 224});
  top = conv_bn_relu(g, "conv1", top, 64, 7, 2);
  top = g.max_pool("pool1", top, 3, 2, Padding::kSame);
  static constexpr std::int64_t kChannels[] = {64, 128, 256, 512};
  static constexpr int kBlocks[] = {3, 4, 6, 3};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < kBlocks[stage]; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      top = bottleneck(g,
                       "res" + std::to_string(stage + 2) + "_" +
                           std::to_string(block + 1),
                       top, kChannels[stage], stride);
    }
  }
  top = g.avg_pool("pool5", top, 7, 1, Padding::kValid);
  top = g.matmul("fc", top, g.variable("fc/weights", {classes, 2048, 1, 1}));
  return g.softmax_xent("loss", top);
}

int build_densenet40(Graph& g, std::int64_t batch, std::int64_t growth,
                     std::int64_t classes) {
  int top = g.placeholder("input", {batch, 3, 32, 32});
  top = g.conv2d("conv0", top,
                 g.variable("conv0/weights", {2 * growth, 3, 3, 3}), 1,
                 Padding::kSame);
  for (int block = 0; block < 3; ++block) {
    for (int layer = 0; layer < 12; ++layer) {
      const std::string name = "dense" + std::to_string(block + 1) + "_" +
                               std::to_string(layer + 1);
      int branch = g.batch_norm(name + "/bn", top);
      branch = g.relu(name + "/relu", branch);
      const std::int64_t in_channels = g.op(branch).shape.c;
      branch = g.conv2d(name + "/conv", branch,
                        g.variable(name + "/weights",
                                   {growth, in_channels, 3, 3}),
                        1, Padding::kSame);
      top = g.concat(name + "/concat", {top, branch});
    }
    if (block < 2) {
      const std::string name = "trans" + std::to_string(block + 1);
      int t = g.batch_norm(name + "/bn", top);
      t = g.relu(name + "/relu", t);
      const std::int64_t channels = g.op(t).shape.c;
      t = g.conv2d(name + "/conv", t,
                   g.variable(name + "/weights", {channels, channels, 1, 1}),
                   1, Padding::kSame);
      top = g.avg_pool(name + "/pool", t, 2, 2, Padding::kValid);
    }
  }
  int t = g.batch_norm("final/bn", top);
  t = g.relu("final/relu", t);
  t = g.avg_pool("global_pool", t, g.op(t).shape.h, 1, Padding::kValid);
  const std::int64_t features = g.op(t).shape.c;
  t = g.matmul("fc", t, g.variable("fc/weights", {classes, features, 1, 1}));
  return g.softmax_xent("loss", t);
}

}  // namespace ucudnn::tfmini
