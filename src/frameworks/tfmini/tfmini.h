// tfmini: a TensorFlow-1.x-style mini framework — deferred graph
// construction, session-based execution, tape autodiff.
//
// Its integration style with μ-cuDNN intentionally differs from caffepp's
// and mirrors TensorFlow 1.4.1 as described in §IV-B2 of the paper: the
// framework never calls GetConvolution*Algorithm with a workspace limit
// before running — convolutions are issued directly, so μ-cuDNN derives the
// per-kernel limit from UCUDNN_WORKSPACE_LIMIT / Options::workspace_limit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ucudnn.h"
#include "tensor/tensor.h"

namespace ucudnn::tfmini {

enum class OpType {
  kPlaceholder,
  kVariable,
  kConv2d,
  kRelu,
  kMaxPool,
  kAvgPool,
  kMatMul,
  kBatchNorm,
  kAdd,
  kConcat,
  kSoftmaxXent,
};

enum class Padding { kSame, kValid };

/// One node of the deferred graph. Outputs are identified by op index.
struct Op {
  OpType type;
  std::string name;
  std::vector<int> inputs;  // op indices (conv/matmul: [data, weights])
  TensorShape shape;        // output shape

  // conv2d
  FilterDesc filter;
  ConvGeometry geom;
  // pool
  std::int64_t window = 0, stride = 0, pad = 0;
  // matmul
  std::int64_t units = 0;
  // batch norm
  float eps = 1e-5f;
};

/// Deferred computation graph. Building it performs shape inference only —
/// no allocation, no μ-cuDNN queries (that is the point of the tfmini
/// integration style).
class Graph {
 public:
  int placeholder(const std::string& name, const TensorShape& shape);
  int variable(const std::string& name, const TensorShape& shape);
  /// stride/padding applied to both spatial dims; `filters` is a variable op
  /// holding (K, C, R, S).
  int conv2d(const std::string& name, int input, int filters,
             std::int64_t stride, Padding padding);
  int relu(const std::string& name, int input);
  int max_pool(const std::string& name, int input, std::int64_t window,
               std::int64_t stride, Padding padding);
  int avg_pool(const std::string& name, int input, std::int64_t window,
               std::int64_t stride, Padding padding);
  /// y[N, units] = flatten(x) * Wᵀ; `weights` holds (units, in, 1, 1).
  int matmul(const std::string& name, int input, int weights);
  int batch_norm(const std::string& name, int input);
  int add(const std::string& name, int a, int b);
  int concat(const std::string& name, const std::vector<int>& inputs);
  int softmax_xent(const std::string& name, int logits);

  const std::vector<Op>& ops() const noexcept { return ops_; }
  const Op& op(int index) const { return ops_.at(static_cast<std::size_t>(index)); }
  int find(const std::string& name) const;

  /// Symmetric SAME/VALID pad for one spatial dim (TF semantics, rounding
  /// the asymmetric TF pad up to symmetric).
  static std::int64_t same_pad(std::int64_t in, std::int64_t window,
                               std::int64_t stride);

 private:
  int add_op(Op op);
  std::vector<Op> ops_;
  std::map<std::string, int> by_name_;
};

/// Executes a Graph: allocates all tensors on the handle's device (tracked),
/// initializes variables deterministically, runs forward and tape-reversed
/// backward passes, and times per-op like the TF benchmark scripts.
class Session {
 public:
  Session(Graph& graph, core::UcudnnHandle& handle);
  ~Session();

  void initialize(std::uint64_t seed = 1);
  void run_forward();
  void run_backward();

  struct OpTime {
    std::string name;
    double forward_ms = 0.0;
    double backward_ms = 0.0;
  };
  /// One warmup iteration, then `iterations` timed fwd+bwd passes.
  std::vector<OpTime> time(int iterations);
  double last_iteration_ms() const noexcept { return last_iteration_ms_; }

  float* data(int op) { return buffers_.at(static_cast<std::size_t>(op)).data; }
  /// Gradient storage is allocated on first use (never in Virtual mode), so
  /// the tracked footprint of timing runs matches forward-pass memory.
  float* grad(int op);

 private:
  struct OpBuffers {
    float* data = nullptr;
    float* grad = nullptr;
    float* aux = nullptr;   // argmax / saved stats / probabilities
    std::int64_t count = 0;
  };

  void forward_op(int index);
  void backward_op(int index);
  void model_memory_op(double bytes) const;
  /// Announces every Conv2d kernel (forward + both backward passes) to
  /// μ-cuDNN with its op label and the default workspace limit, mirroring
  /// TensorFlow's GetConvolution*Algorithm phase. Runs before the first
  /// execution so the WD kernel list is complete at finalization and
  /// backward kernels never hit the unrecorded-fallback path.
  void register_conv_kernels();

  bool registered_kernels_ = false;

  Graph& graph_;
  core::UcudnnHandle& handle_;
  std::shared_ptr<device::Device> dev_;
  bool virtual_mode_;
  std::vector<OpBuffers> buffers_;
  std::vector<void*> owned_;  // allocations to release (pooled virtual mode)
  bool initialized_ = false;
  double last_iteration_ms_ = 0.0;
};

}  // namespace ucudnn::tfmini
