#include "frameworks/caffepp/model_zoo.h"

#include <string>

namespace ucudnn::caffepp {

namespace {

// conv -> batchnorm -> relu, the ResNet/DenseNet building unit.
std::string conv_bn_relu(Net& net, const std::string& prefix,
                         const std::string& bottom, std::int64_t channels,
                         std::int64_t kernel, std::int64_t stride,
                         std::int64_t pad, bool with_relu = true) {
  std::string top =
      net.conv(prefix, bottom, channels, kernel, stride, pad, /*bias=*/false);
  top = net.batch_norm(prefix + "_bn", top);
  if (with_relu) top = net.relu(prefix + "_relu", top);
  return top;
}

// Basic (two 3x3) residual block, ResNet-18/34 style.
std::string basic_block(Net& net, const std::string& prefix,
                        const std::string& bottom, std::int64_t channels,
                        std::int64_t stride) {
  std::string branch =
      conv_bn_relu(net, prefix + "_conv1", bottom, channels, 3, stride, 1);
  branch = conv_bn_relu(net, prefix + "_conv2", branch, channels, 3, 1, 1,
                        /*with_relu=*/false);
  std::string shortcut = bottom;
  if (stride != 1 || net.blob(bottom)->shape().c != channels) {
    shortcut = conv_bn_relu(net, prefix + "_down", bottom, channels, 1, stride,
                            0, /*with_relu=*/false);
  }
  std::string top = net.eltwise_sum(prefix + "_sum", branch, shortcut);
  return net.relu(prefix + "_out", top);
}

// Bottleneck (1x1 -> 3x3 -> 1x1) residual block, ResNet-50 style.
std::string bottleneck_block(Net& net, const std::string& prefix,
                             const std::string& bottom, std::int64_t channels,
                             std::int64_t stride) {
  std::string branch =
      conv_bn_relu(net, prefix + "_conv1", bottom, channels, 1, 1, 0);
  branch = conv_bn_relu(net, prefix + "_conv2", branch, channels, 3, stride, 1);
  branch = conv_bn_relu(net, prefix + "_conv3", branch, channels * 4, 1, 1, 0,
                        /*with_relu=*/false);
  std::string shortcut = bottom;
  if (stride != 1 || net.blob(bottom)->shape().c != channels * 4) {
    shortcut = conv_bn_relu(net, prefix + "_down", bottom, channels * 4, 1,
                            stride, 0, /*with_relu=*/false);
  }
  std::string top = net.eltwise_sum(prefix + "_sum", branch, shortcut);
  return net.relu(prefix + "_out", top);
}

}  // namespace

std::string build_alexnet(Net& net, std::int64_t batch, std::int64_t classes) {
  std::string top = net.input("data", {batch, 3, 227, 227});
  top = net.conv("conv1", top, 96, 11, 4, 0);
  top = net.relu("relu1", top);
  top = net.lrn("norm1", top);
  top = net.pool_max("pool1", top, 3, 2);
  top = net.conv("conv2", top, 256, 5, 1, 2);
  top = net.relu("relu2", top);
  top = net.lrn("norm2", top);
  top = net.pool_max("pool2", top, 3, 2);
  top = net.conv("conv3", top, 384, 3, 1, 1);
  top = net.relu("relu3", top);
  top = net.conv("conv4", top, 384, 3, 1, 1);
  top = net.relu("relu4", top);
  top = net.conv("conv5", top, 256, 3, 1, 1);
  top = net.relu("relu5", top);
  top = net.pool_max("pool5", top, 3, 2);
  top = net.fc("fc6", top, 4096);
  top = net.relu("relu6", top);
  top = net.dropout("drop6", top);
  top = net.fc("fc7", top, 4096);
  top = net.relu("relu7", top);
  top = net.dropout("drop7", top);
  top = net.fc("fc8", top, classes);
  return net.softmax_loss("loss", top);
}

std::string build_alexnet_grouped(Net& net, std::int64_t batch,
                                  std::int64_t classes) {
  std::string top = net.input("data", {batch, 3, 227, 227});
  top = net.conv("conv1", top, 96, 11, 4, 0);
  top = net.relu("relu1", top);
  top = net.lrn("norm1", top);
  top = net.pool_max("pool1", top, 3, 2);
  top = net.conv("conv2", top, 256, 5, 1, 2, /*bias=*/true, /*groups=*/2);
  top = net.relu("relu2", top);
  top = net.lrn("norm2", top);
  top = net.pool_max("pool2", top, 3, 2);
  top = net.conv("conv3", top, 384, 3, 1, 1);
  top = net.relu("relu3", top);
  top = net.conv("conv4", top, 384, 3, 1, 1, /*bias=*/true, /*groups=*/2);
  top = net.relu("relu4", top);
  top = net.conv("conv5", top, 256, 3, 1, 1, /*bias=*/true, /*groups=*/2);
  top = net.relu("relu5", top);
  top = net.pool_max("pool5", top, 3, 2);
  top = net.fc("fc6", top, 4096);
  top = net.relu("relu6", top);
  top = net.dropout("drop6", top);
  top = net.fc("fc7", top, 4096);
  top = net.relu("relu7", top);
  top = net.dropout("drop7", top);
  top = net.fc("fc8", top, classes);
  return net.softmax_loss("loss", top);
}

std::string build_resnet18(Net& net, std::int64_t batch, std::int64_t classes) {
  std::string top = net.input("data", {batch, 3, 224, 224});
  top = conv_bn_relu(net, "conv1", top, 64, 7, 2, 3);
  top = net.pool_max("pool1", top, 3, 2, 1);
  static constexpr std::int64_t kChannels[] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      top = basic_block(net,
                        "res" + std::to_string(stage + 2) +
                            static_cast<char>('a' + block),
                        top, kChannels[stage], stride);
    }
  }
  top = net.pool_avg("pool5", top, 7, 1);
  top = net.fc("fc", top, classes);
  return net.softmax_loss("loss", top);
}

std::string build_resnet50(Net& net, std::int64_t batch, std::int64_t classes) {
  std::string top = net.input("data", {batch, 3, 224, 224});
  top = conv_bn_relu(net, "conv1", top, 64, 7, 2, 3);
  top = net.pool_max("pool1", top, 3, 2, 1);
  static constexpr std::int64_t kChannels[] = {64, 128, 256, 512};
  static constexpr int kBlocks[] = {3, 4, 6, 3};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < kBlocks[stage]; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      top = bottleneck_block(net,
                             "res" + std::to_string(stage + 2) +
                                 static_cast<char>('a' + block),
                             top, kChannels[stage], stride);
    }
  }
  top = net.pool_avg("pool5", top, 7, 1);
  top = net.fc("fc", top, classes);
  return net.softmax_loss("loss", top);
}

std::string build_densenet40(Net& net, std::int64_t batch, std::int64_t growth,
                             std::int64_t classes) {
  std::string top = net.input("data", {batch, 3, 32, 32});
  top = net.conv("conv0", top, 2 * growth, 3, 1, 1, /*bias=*/false);
  for (int block = 0; block < 3; ++block) {
    for (int layer = 0; layer < 12; ++layer) {
      const std::string prefix = "dense" + std::to_string(block + 1) + "_" +
                                 std::to_string(layer + 1);
      std::string branch = net.batch_norm(prefix + "_bn", top);
      branch = net.relu(prefix + "_relu", branch);
      branch =
          net.conv(prefix + "_conv", branch, growth, 3, 1, 1, /*bias=*/false);
      top = net.concat(prefix + "_concat", {top, branch});
    }
    if (block < 2) {
      const std::string prefix = "trans" + std::to_string(block + 1);
      std::string t = net.batch_norm(prefix + "_bn", top);
      t = net.relu(prefix + "_relu", t);
      t = net.conv(prefix + "_conv", t, net.blob(t)->shape().c, 1, 1, 0,
                   /*bias=*/false);
      top = net.pool_avg(prefix + "_pool", t, 2, 2);
    }
  }
  std::string t = net.batch_norm("final_bn", top);
  t = net.relu("final_relu", t);
  t = net.pool_avg("global_pool", t, net.blob(t)->shape().h, 1);
  t = net.fc("fc", t, classes);
  return net.softmax_loss("loss", t);
}

std::string build_inception_module(Net& net, const std::string& bottom,
                                   const std::string& prefix) {
  // GoogLeNet inception(3a) channel mix: 64 + (96->128) + (16->32) + 32.
  const std::string b1 = net.relu(prefix + "_1x1_relu",
                                  net.conv(prefix + "_1x1", bottom, 64, 1),
                                  /*in_place=*/true);
  std::string b2 = net.conv(prefix + "_3x3_reduce", bottom, 96, 1);
  b2 = net.relu(prefix + "_3x3_reduce_relu", b2);
  b2 = net.conv(prefix + "_3x3", b2, 128, 3, 1, 1);
  b2 = net.relu(prefix + "_3x3_relu", b2);
  std::string b3 = net.conv(prefix + "_5x5_reduce", bottom, 16, 1);
  b3 = net.relu(prefix + "_5x5_reduce_relu", b3);
  b3 = net.conv(prefix + "_5x5", b3, 32, 5, 1, 2);
  b3 = net.relu(prefix + "_5x5_relu", b3);
  std::string b4 = net.pool_max(prefix + "_pool", bottom, 3, 1, 1);
  b4 = net.conv(prefix + "_pool_proj", b4, 32, 1);
  b4 = net.relu(prefix + "_pool_proj_relu", b4);
  return net.concat(prefix + "_output", {b1, b2, b3, b4});
}

}  // namespace ucudnn::caffepp
