// Net: the mini-Caffe network container. A builder API assembles a DAG of
// layers over named blobs (layers execute in insertion order, which the
// builder keeps topological); `time()` reproduces Caffe's `caffe time`
// command (per-layer forward/backward breakdown); `memory_report()` yields
// the Fig. 12 per-layer memory accounting straight from the Device's
// tagged allocations.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ucudnn.h"
#include "frameworks/caffepp/layers.h"

namespace ucudnn::caffepp {

struct NetOptions {
  /// Per-layer workspace limit the framework announces to μ-cuDNN via
  /// GetConvolution*Algorithm (Caffe default: 8 MiB).
  std::size_t workspace_limit = std::size_t{8} << 20;
  /// Allocate diff blobs (off for inference-only nets).
  bool with_diffs = true;
};

class Net {
 public:
  Net(core::UcudnnHandle& handle, std::string name, NetOptions options = {});

  const std::string& name() const noexcept { return name_; }
  core::UcudnnHandle& handle() noexcept { return ctx_.handle; }

  // ---- builder (each returns the top blob name for chaining) ----
  std::string input(const std::string& name, const TensorShape& shape);
  std::string conv(const std::string& name, const std::string& bottom,
                   std::int64_t out_channels, std::int64_t kernel,
                   std::int64_t stride = 1, std::int64_t pad = 0,
                   bool bias = true, std::int64_t groups = 1);
  std::string relu(const std::string& name, const std::string& bottom,
                   bool in_place = true);
  std::string pool_max(const std::string& name, const std::string& bottom,
                       std::int64_t window, std::int64_t stride,
                       std::int64_t pad = 0);
  std::string pool_avg(const std::string& name, const std::string& bottom,
                       std::int64_t window, std::int64_t stride,
                       std::int64_t pad = 0);
  std::string lrn(const std::string& name, const std::string& bottom,
                  std::int64_t local_size = 5, float alpha = 1e-4f,
                  float beta = 0.75f, float k = 1.0f);
  std::string fc(const std::string& name, const std::string& bottom,
                 std::int64_t out_features, bool bias = true);
  std::string batch_norm(const std::string& name, const std::string& bottom);
  std::string eltwise_sum(const std::string& name, const std::string& a,
                          const std::string& b);
  std::string concat(const std::string& name,
                     const std::vector<std::string>& bottoms);
  std::string dropout(const std::string& name, const std::string& bottom,
                      float ratio = 0.5f);
  std::string softmax_loss(const std::string& name, const std::string& bottom);

  // ---- execution ----
  /// Deterministic parameter (and input) initialization; no-op in Virtual
  /// mode where tensor contents are never touched.
  void init(std::uint64_t seed = 1);
  void forward();
  void backward();

  struct LayerTime {
    std::string name;
    double forward_ms = 0.0;
    double backward_ms = 0.0;
  };
  /// `caffe time` equivalent: one warmup iteration (which also triggers
  /// μ-cuDNN's benchmarking/optimization), then `iterations` timed
  /// forward+backward passes. Returns the per-layer average breakdown.
  std::vector<LayerTime> time(int iterations);

  /// Total of the last time() run, ms per iteration.
  double last_iteration_ms() const noexcept { return last_iteration_ms_; }

  // ---- introspection ----
  Blob* blob(const std::string& name);
  const std::vector<std::unique_ptr<Layer>>& layers() const noexcept {
    return layers_;
  }
  /// Convolution problems by layer name (for benches that re-derive configs).
  std::map<std::string, kernels::ConvProblem> conv_problems() const;

  struct LayerMemory {
    std::size_t data = 0;   // activations (data + diff)
    std::size_t param = 0;  // weights/bias (data + diff)
    std::size_t aux = 0;    // layer-internal buffers
    std::size_t workspace = 0;
    std::size_t total() const noexcept {
      return data + param + aux + workspace;
    }
  };
  /// Per-layer memory from the device's tagged allocations. Workspace tags
  /// ("<layer>(Forward):ws" or the shared "wd_arena") are attributed to
  /// their layer; the arena appears under "__wd_arena__".
  std::map<std::string, LayerMemory> memory_report() const;

 private:
  Blob* make_blob(const std::string& name, const TensorShape& shape);
  void seed_top_diff();

  std::string name_;
  NetOptions options_;
  LayerContext ctx_;
  std::map<std::string, std::unique_ptr<Blob>> blobs_;
  std::vector<std::string> inputs_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::string last_top_;
  double last_iteration_ms_ = 0.0;
  bool initialized_ = false;
};

}  // namespace ucudnn::caffepp
