// Blob: a named (data, diff) tensor pair allocated through the Device so
// that every byte shows up in the per-layer memory accounting (Fig. 12).
#pragma once

#include <memory>
#include <string>

#include "device/device.h"
#include "tensor/tensor.h"

namespace ucudnn::caffepp {

class Blob {
 public:
  /// Allocates data (+ diff) on `dev` under the tag "<name>:data"/":diff".
  Blob(std::shared_ptr<device::Device> dev, std::string name,
       const TensorShape& shape, bool with_diff = true);
  ~Blob();

  Blob(const Blob&) = delete;
  Blob& operator=(const Blob&) = delete;

  const std::string& name() const noexcept { return name_; }
  const TensorShape& shape() const noexcept { return shape_; }
  std::int64_t count() const noexcept { return shape_.count(); }
  std::size_t bytes() const noexcept { return shape_.bytes(); }

  float* data() noexcept { return data_; }
  const float* data() const noexcept { return data_; }
  /// Diff storage is allocated on first use: Virtual-mode runs never touch
  /// diffs, so their tracked footprint matches the paper's "one forward
  /// propagation" memory accounting (Fig. 12).
  float* diff();
  bool has_diff() const noexcept { return with_diff_; }

  TensorDesc desc() const noexcept { return TensorDesc{shape_}; }

 private:
  std::shared_ptr<device::Device> dev_;
  std::string name_;
  TensorShape shape_;
  bool with_diff_ = true;
  float* data_ = nullptr;
  float* diff_ = nullptr;
};

}  // namespace ucudnn::caffepp
