#include "frameworks/caffepp/blob.h"

namespace ucudnn::caffepp {

Blob::Blob(std::shared_ptr<device::Device> dev, std::string name,
           const TensorShape& shape, bool with_diff)
    : dev_(std::move(dev)),
      name_(std::move(name)),
      shape_(shape),
      with_diff_(with_diff) {
  data_ = static_cast<float*>(dev_->allocate(bytes(), name_ + ":data"));
}

float* Blob::diff() {
  if (diff_ == nullptr && with_diff_) {
    diff_ = static_cast<float*>(dev_->allocate(bytes(), name_ + ":diff"));
  }
  return diff_;
}

Blob::~Blob() {
  dev_->deallocate(data_);
  dev_->deallocate(diff_);
}

}  // namespace ucudnn::caffepp
