// caffepp layers: the mini-Caffe substrate's layer zoo. Every layer
// implements real numeric forward/backward on the host CPU and a modeled
// cost path for Virtual execution (network-scale paper figures).
//
// Backward convention: bottom-blob diffs are ACCUMULATED (+=) — the Net
// zeroes all diffs before each backward pass — so fan-out (ResNet skip
// connections, DenseNet concats) sums gradients correctly. Parameter diffs
// are overwritten each pass.
#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/ucudnn.h"
#include "frameworks/caffepp/blob.h"

namespace ucudnn::caffepp {

/// Per-pass execution context handed to layers by the Net.
struct LayerContext {
  core::UcudnnHandle& handle;
  std::shared_ptr<device::Device> dev;
  bool virtual_mode;

  /// Models a bandwidth-bound elementwise op in Virtual mode.
  void model_memory_op(double bytes) const;
  /// Models a GEMM-like op (compute- or bandwidth-bound, whichever worse).
  void model_gemm(double flops, double bytes) const;
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const noexcept { return name_; }
  virtual void forward(const LayerContext& ctx) = 0;
  virtual void backward(const LayerContext& ctx) = 0;
  /// Deterministic parameter initialization (numeric mode only).
  virtual void init_params(std::mt19937& rng) { (void)rng; }
  virtual std::vector<Blob*> params() { return {}; }

 protected:
  std::string name_;
};

/// 2-D convolution through μ-cuDNN (or any cuDNN-shaped handle), plus bias.
class ConvLayer : public Layer {
 public:
  ConvLayer(const LayerContext& ctx, std::string name, Blob* bottom, Blob* top,
            const FilterDesc& filter, const ConvGeometry& geom, bool bias,
            std::size_t ws_limit);

  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;
  void init_params(std::mt19937& rng) override;
  std::vector<Blob*> params() override;

  const kernels::ConvProblem& problem() const noexcept { return problem_; }

 private:
  Blob* bottom_;
  Blob* top_;
  FilterDesc filter_;
  ConvGeometry geom_;
  kernels::ConvProblem problem_;
  std::unique_ptr<Blob> weights_;  // shaped (K, C, R, S) flattened into NCHW
  std::unique_ptr<Blob> bias_;     // (1, K, 1, 1), null when bias disabled
};

class ReluLayer : public Layer {
 public:
  ReluLayer(std::string name, Blob* bottom, Blob* top)
      : Layer(std::move(name)), bottom_(bottom), top_(top) {}
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  Blob* bottom_;
  Blob* top_;  // may equal bottom_ (in-place)
};

enum class PoolMode { kMax, kAvg };

class PoolLayer : public Layer {
 public:
  PoolLayer(const LayerContext& ctx, std::string name, Blob* bottom, Blob* top,
            PoolMode mode, std::int64_t window, std::int64_t stride,
            std::int64_t pad);
  ~PoolLayer() override;
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

  /// Floor-mode output edge: (in + 2*pad - window) / stride + 1.
  static std::int64_t out_edge(std::int64_t in, std::int64_t window,
                               std::int64_t stride, std::int64_t pad) {
    return (in + 2 * pad - window) / stride + 1;
  }

 private:
  Blob* bottom_;
  Blob* top_;
  PoolMode mode_;
  std::int64_t window_, stride_, pad_;
  std::shared_ptr<device::Device> dev_;
  std::int32_t* argmax_ = nullptr;  // device-tracked, max pooling only
};

/// Across-channel local response normalization (AlexNet's norm layers).
class LrnLayer : public Layer {
 public:
  LrnLayer(const LayerContext& ctx, std::string name, Blob* bottom, Blob* top,
           std::int64_t local_size, float alpha, float beta, float k);
  ~LrnLayer() override;
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  Blob* bottom_;
  Blob* top_;
  std::int64_t local_size_;
  float alpha_, beta_, k_;
  std::shared_ptr<device::Device> dev_;
  float* scale_ = nullptr;  // (k + alpha/n * window-sum of squares)
};

/// Fully connected (InnerProduct): y = x * Wᵀ + b over flattened features.
class FcLayer : public Layer {
 public:
  FcLayer(const LayerContext& ctx, std::string name, Blob* bottom, Blob* top,
          std::int64_t out_features, bool bias = true);
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;
  void init_params(std::mt19937& rng) override;
  std::vector<Blob*> params() override;

 private:
  Blob* bottom_;
  Blob* top_;
  std::int64_t in_features_, out_features_;
  std::unique_ptr<Blob> weights_;  // (out, in, 1, 1)
  std::unique_ptr<Blob> bias_;
};

/// Training-mode batch normalization with learned scale/shift.
class BatchNormLayer : public Layer {
 public:
  BatchNormLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                 Blob* top, float eps = 1e-5f);
  ~BatchNormLayer() override;
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;
  void init_params(std::mt19937& rng) override;
  std::vector<Blob*> params() override;

 private:
  Blob* bottom_;
  Blob* top_;
  float eps_;
  std::shared_ptr<device::Device> dev_;
  std::unique_ptr<Blob> gamma_;  // (1, C, 1, 1)
  std::unique_ptr<Blob> beta_;
  float* mean_ = nullptr;     // per-channel saved statistics
  float* inv_std_ = nullptr;
};

/// Elementwise sum of two equal-shape blobs (ResNet shortcut joins).
class EltwiseSumLayer : public Layer {
 public:
  EltwiseSumLayer(std::string name, Blob* a, Blob* b, Blob* top)
      : Layer(std::move(name)), a_(a), b_(b), top_(top) {}
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  Blob* a_;
  Blob* b_;
  Blob* top_;
};

/// Channel-axis concatenation (DenseNet / Inception).
class ConcatLayer : public Layer {
 public:
  ConcatLayer(std::string name, std::vector<Blob*> bottoms, Blob* top)
      : Layer(std::move(name)), bottoms_(std::move(bottoms)), top_(top) {}
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  std::vector<Blob*> bottoms_;
  Blob* top_;
};

/// Dropout with a deterministic per-pass mask (timing fidelity, reproducible
/// numerics).
class DropoutLayer : public Layer {
 public:
  DropoutLayer(const LayerContext& ctx, std::string name, Blob* bottom,
               Blob* top, float ratio);
  ~DropoutLayer() override;
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  Blob* bottom_;
  Blob* top_;
  float ratio_;
  std::shared_ptr<device::Device> dev_;
  std::uint8_t* mask_ = nullptr;
  std::uint64_t pass_ = 0;
};

/// Softmax + cross-entropy against synthetic labels (label[n] = n % classes).
class SoftmaxLossLayer : public Layer {
 public:
  SoftmaxLossLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                   Blob* loss);
  ~SoftmaxLossLayer() override;
  void forward(const LayerContext& ctx) override;
  void backward(const LayerContext& ctx) override;

 private:
  Blob* bottom_;
  Blob* loss_;
  std::shared_ptr<device::Device> dev_;
  float* prob_ = nullptr;
};

}  // namespace ucudnn::caffepp
