#include "frameworks/caffepp/net.h"

#include <algorithm>
#include <cstring>

#include "common/timer.h"
#include "telemetry/trace.h"

namespace ucudnn::caffepp {

Net::Net(core::UcudnnHandle& handle, std::string name, NetOptions options)
    : name_(std::move(name)),
      options_(options),
      ctx_{handle, handle.base().device_ptr(),
           handle.base().exec_mode() == mcudnn::ExecMode::kVirtual} {}

Blob* Net::make_blob(const std::string& name, const TensorShape& shape) {
  check(blobs_.find(name) == blobs_.end(), Status::kBadParam,
        "duplicate blob name: " + name);
  auto blob = std::make_unique<Blob>(ctx_.dev, name, shape, options_.with_diffs);
  Blob* raw = blob.get();
  blobs_.emplace(name, std::move(blob));
  last_top_ = name;
  return raw;
}

Blob* Net::blob(const std::string& name) {
  const auto it = blobs_.find(name);
  check(it != blobs_.end(), Status::kBadParam, "unknown blob: " + name);
  return it->second.get();
}

std::string Net::input(const std::string& name, const TensorShape& shape) {
  make_blob(name, shape);
  inputs_.push_back(name);
  return name;
}

std::string Net::conv(const std::string& name, const std::string& bottom,
                      std::int64_t out_channels, std::int64_t kernel,
                      std::int64_t stride, std::int64_t pad, bool bias,
                      std::int64_t groups) {
  Blob* b = blob(bottom);
  check_param(groups >= 1 && b->shape().c % groups == 0,
              "bad group count for " + name);
  const FilterDesc filter{out_channels, b->shape().c / groups, kernel, kernel};
  const ConvGeometry geom{.pad_h = pad, .pad_w = pad, .stride_h = stride,
                          .stride_w = stride, .groups = groups};
  const TensorShape out = geom.output_shape(b->shape(), filter);
  Blob* t = make_blob(name, out);
  layers_.push_back(std::make_unique<ConvLayer>(ctx_, name, b, t, filter, geom,
                                                bias,
                                                options_.workspace_limit));
  return name;
}

std::string Net::relu(const std::string& name, const std::string& bottom,
                      bool in_place) {
  Blob* b = blob(bottom);
  Blob* t = in_place ? b : make_blob(name, b->shape());
  layers_.push_back(std::make_unique<ReluLayer>(name, b, t));
  return in_place ? bottom : name;
}

std::string Net::pool_max(const std::string& name, const std::string& bottom,
                          std::int64_t window, std::int64_t stride,
                          std::int64_t pad) {
  Blob* b = blob(bottom);
  const TensorShape out{b->shape().n, b->shape().c,
                        PoolLayer::out_edge(b->shape().h, window, stride, pad),
                        PoolLayer::out_edge(b->shape().w, window, stride, pad)};
  Blob* t = make_blob(name, out);
  layers_.push_back(std::make_unique<PoolLayer>(ctx_, name, b, t,
                                                PoolMode::kMax, window, stride,
                                                pad));
  return name;
}

std::string Net::pool_avg(const std::string& name, const std::string& bottom,
                          std::int64_t window, std::int64_t stride,
                          std::int64_t pad) {
  Blob* b = blob(bottom);
  const TensorShape out{b->shape().n, b->shape().c,
                        PoolLayer::out_edge(b->shape().h, window, stride, pad),
                        PoolLayer::out_edge(b->shape().w, window, stride, pad)};
  Blob* t = make_blob(name, out);
  layers_.push_back(std::make_unique<PoolLayer>(ctx_, name, b, t,
                                                PoolMode::kAvg, window, stride,
                                                pad));
  return name;
}

std::string Net::lrn(const std::string& name, const std::string& bottom,
                     std::int64_t local_size, float alpha, float beta,
                     float k) {
  Blob* b = blob(bottom);
  Blob* t = make_blob(name, b->shape());
  layers_.push_back(std::make_unique<LrnLayer>(ctx_, name, b, t, local_size,
                                               alpha, beta, k));
  return name;
}

std::string Net::fc(const std::string& name, const std::string& bottom,
                    std::int64_t out_features, bool bias) {
  Blob* b = blob(bottom);
  Blob* t = make_blob(name, TensorShape{b->shape().n, out_features, 1, 1});
  layers_.push_back(
      std::make_unique<FcLayer>(ctx_, name, b, t, out_features, bias));
  return name;
}

std::string Net::batch_norm(const std::string& name,
                            const std::string& bottom) {
  Blob* b = blob(bottom);
  Blob* t = make_blob(name, b->shape());
  layers_.push_back(std::make_unique<BatchNormLayer>(ctx_, name, b, t));
  return name;
}

std::string Net::eltwise_sum(const std::string& name, const std::string& a,
                             const std::string& b) {
  Blob* ba = blob(a);
  Blob* bb = blob(b);
  check(ba->shape() == bb->shape(), Status::kBadParam,
        "eltwise shape mismatch: " + a + " vs " + b);
  Blob* t = make_blob(name, ba->shape());
  layers_.push_back(std::make_unique<EltwiseSumLayer>(name, ba, bb, t));
  return name;
}

std::string Net::concat(const std::string& name,
                        const std::vector<std::string>& bottoms) {
  check_param(!bottoms.empty(), "concat needs at least one bottom");
  std::vector<Blob*> bs;
  std::int64_t channels = 0;
  for (const auto& bn : bottoms) {
    bs.push_back(blob(bn));
    channels += bs.back()->shape().c;
    check(bs.back()->shape().n == bs[0]->shape().n &&
              bs.back()->shape().h == bs[0]->shape().h &&
              bs.back()->shape().w == bs[0]->shape().w,
          Status::kBadParam, "concat spatial mismatch at " + bn);
  }
  const TensorShape out{bs[0]->shape().n, channels, bs[0]->shape().h,
                        bs[0]->shape().w};
  Blob* t = make_blob(name, out);
  layers_.push_back(std::make_unique<ConcatLayer>(name, std::move(bs), t));
  return name;
}

std::string Net::dropout(const std::string& name, const std::string& bottom,
                         float ratio) {
  Blob* b = blob(bottom);
  Blob* t = make_blob(name, b->shape());
  layers_.push_back(std::make_unique<DropoutLayer>(ctx_, name, b, t, ratio));
  return name;
}

std::string Net::softmax_loss(const std::string& name,
                              const std::string& bottom) {
  Blob* b = blob(bottom);
  Blob* t = make_blob(name, TensorShape{1, 1, 1, 1});
  layers_.push_back(std::make_unique<SoftmaxLossLayer>(ctx_, name, b, t));
  return name;
}

void Net::init(std::uint64_t seed) {
  initialized_ = true;
  if (ctx_.virtual_mode) return;
  std::mt19937 rng(static_cast<unsigned>(seed));
  for (auto& layer : layers_) layer->init_params(rng);
  // Deterministic synthetic input data for the declared input blobs.
  for (const auto& name : inputs_) {
    Blob* b = blob(name);
    fill_random(b->data(), b->count(), seed ^ 0x5bd1e995u);
  }
}

void Net::forward() {
  if (!initialized_) init();
  // Caffe-style WD integration (§III-E): every ConvLayer announced its
  // kernels at construction, so the recorded list is complete — freeze it
  // and solve the arena division up front instead of inside the first
  // convolution. A WD plan already degraded to WR makes this a no-op.
  if (ctx_.handle.options().workspace_policy == core::WorkspacePolicy::kWD &&
      !ctx_.handle.wd_finalized()) {
    ctx_.handle.finalize_wd();
  }
  const telemetry::ScopedSpan span("net.forward", [&] { return name_; });
  for (auto& layer : layers_) {
    const telemetry::ScopedSpan layer_span("layer.forward",
                                           [&] { return layer->name(); });
    layer->forward(ctx_);
  }
}

void Net::seed_top_diff() {
  Blob* top = blob(last_top_);
  if (top->has_diff()) {
    fill_constant(top->diff(), top->count(),
                  1.0f / static_cast<float>(top->count()));
  }
}

void Net::backward() {
  if (!ctx_.virtual_mode) {
    // Zero all diffs, then seed the final blob's diff.
    for (auto& [name, blob] : blobs_) {
      (void)name;
      if (blob->has_diff()) fill_constant(blob->diff(), blob->count(), 0.0f);
    }
    for (auto& layer : layers_) {
      for (Blob* param : layer->params()) {
        if (param->has_diff()) {
          fill_constant(param->diff(), param->count(), 0.0f);
        }
      }
    }
    seed_top_diff();
  }
  const telemetry::ScopedSpan span("net.backward", [&] { return name_; });
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    const telemetry::ScopedSpan layer_span("layer.backward",
                                           [&] { return (*it)->name(); });
    (*it)->backward(ctx_);
  }
}

std::vector<Net::LayerTime> Net::time(int iterations) {
  check_param(iterations >= 1, "need at least one timing iteration");
  // Warmup (triggers μ-cuDNN benchmarking + optimization + workspace
  // allocation so they are excluded from the measurement, like `caffe time`).
  forward();
  backward();

  std::vector<LayerTime> result(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    result[i].name = layers_[i]->name();
  }

  device::Device& dev = ctx_.handle.device();
  const bool virtual_mode = ctx_.virtual_mode;
  double total = 0.0;
  for (int iter = 0; iter < iterations; ++iter) {
    if (!virtual_mode) {
      // Keep numeric backward inputs fresh (zeroed diffs).
      // (Numeric timing measures wall clock per layer.)
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      const double clock0 = dev.clock_ms();
      Timer timer;
      layers_[i]->forward(ctx_);
      result[i].forward_ms +=
          virtual_mode ? dev.clock_ms() - clock0 : timer.elapsed_ms();
    }
    if (!virtual_mode) {
      for (auto& [name, blob] : blobs_) {
        (void)name;
        if (blob->has_diff()) fill_constant(blob->diff(), blob->count(), 0.0f);
      }
      seed_top_diff();
    }
    for (std::size_t i = layers_.size(); i-- > 0;) {
      const double clock0 = dev.clock_ms();
      Timer timer;
      layers_[i]->backward(ctx_);
      result[i].backward_ms +=
          virtual_mode ? dev.clock_ms() - clock0 : timer.elapsed_ms();
    }
  }
  for (auto& lt : result) {
    lt.forward_ms /= iterations;
    lt.backward_ms /= iterations;
    total += lt.forward_ms + lt.backward_ms;
  }
  last_iteration_ms_ = total;
  return result;
}

std::map<std::string, kernels::ConvProblem> Net::conv_problems() const {
  std::map<std::string, kernels::ConvProblem> result;
  for (const auto& layer : layers_) {
    if (const auto* conv = dynamic_cast<const ConvLayer*>(layer.get())) {
      result.emplace(conv->name(), conv->problem());
    }
  }
  return result;
}

std::map<std::string, Net::LayerMemory> Net::memory_report() const {
  std::map<std::string, LayerMemory> report;
  for (const auto& [tag, bytes] : ctx_.dev->usage_by_tag()) {
    if (bytes == 0) continue;
    if (tag == "wd_arena") {
      report["__wd_arena__"].workspace += bytes;
      continue;
    }
    const auto colon = tag.rfind(':');
    if (colon == std::string::npos) continue;
    std::string layer = tag.substr(0, colon);
    const std::string kind = tag.substr(colon + 1);
    // Workspace tags look like "conv2(Forward):ws" — strip the kernel type.
    if (const auto paren = layer.find('('); paren != std::string::npos) {
      layer = layer.substr(0, paren);
    }
    // Parameter blobs are tagged "<layer>:param[...]:data|:diff".
    if (const auto param = layer.find(":param"); param != std::string::npos) {
      report[layer.substr(0, param)].param += bytes;
      continue;
    }
    LayerMemory& m = report[layer];
    if (kind == "ws") {
      m.workspace += bytes;
    } else if (kind == "aux") {
      m.aux += bytes;
    } else {
      m.data += bytes;
    }
  }
  return report;
}

}  // namespace ucudnn::caffepp
