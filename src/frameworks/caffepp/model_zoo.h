// Model zoo: the networks the paper evaluates. Shapes match the public
// definitions the paper references (Caffe AlexNet without grouping,
// NVCaffe ResNet-18/50, DenseNet-BC-style DenseNet-40 with k = 40 feature
// maps per layer on CIFAR, and a GoogLeNet-style Inception module).
#pragma once

#include "frameworks/caffepp/net.h"

namespace ucudnn::caffepp {

/// Single-column AlexNet for 227x227 ImageNet input (conv1..conv5 +
/// fc6..fc8). Returns the final blob name.
std::string build_alexnet(Net& net, std::int64_t batch,
                          std::int64_t classes = 1000);

/// The original two-tower AlexNet (Krizhevsky 2012): conv2/4/5 grouped with
/// groups = 2. Grouped kernels restrict μ-cuDNN to the implicit algorithm
/// family, as with real cuDNN.
std::string build_alexnet_grouped(Net& net, std::int64_t batch,
                                  std::int64_t classes = 1000);

/// ResNet-18 for 224x224 input.
std::string build_resnet18(Net& net, std::int64_t batch,
                           std::int64_t classes = 1000);

/// ResNet-50 (bottleneck blocks) for 224x224 input.
std::string build_resnet50(Net& net, std::int64_t batch,
                           std::int64_t classes = 1000);

/// DenseNet-40 (3 dense blocks x 12 layers, growth rate k) for 32x32 CIFAR.
std::string build_densenet40(Net& net, std::int64_t batch,
                             std::int64_t growth = 40,
                             std::int64_t classes = 10);

/// One GoogLeNet "inception (3a)"-style module on a given input blob; used
/// by the WD example (parallel branches sharing one workspace arena).
std::string build_inception_module(Net& net, const std::string& bottom,
                                   const std::string& prefix);

}  // namespace ucudnn::caffepp
