#include "frameworks/caffepp/layers.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "gemm/gemm.h"

namespace ucudnn::caffepp {

namespace {

// He-style initialization scale for a fan-in.
float msra_std(std::int64_t fan_in) {
  return std::sqrt(2.0f / static_cast<float>(std::max<std::int64_t>(1, fan_in)));
}

void fill_normal(float* data, std::int64_t count, std::mt19937& rng,
                 float stddev) {
  std::normal_distribution<float> dist(0.0f, stddev);
  for (std::int64_t i = 0; i < count; ++i) data[i] = dist(rng);
}

}  // namespace

void LayerContext::model_memory_op(double bytes) const {
  if (!virtual_mode) return;
  const auto& spec = dev->spec();
  dev->advance_clock_ms(spec.kernel_overhead_us * 1e-3 +
                        bytes / (spec.mem_bandwidth_gbs * 1e9) * 1e3);
}

void LayerContext::model_gemm(double flops, double bytes) const {
  if (!virtual_mode) return;
  const auto& spec = dev->spec();
  const double compute_ms = flops / (0.6 * spec.peak_sp_gflops * 1e9) * 1e3;
  const double memory_ms = bytes / (spec.mem_bandwidth_gbs * 1e9) * 1e3;
  dev->advance_clock_ms(spec.kernel_overhead_us * 1e-3 +
                        std::max(compute_ms, memory_ms));
}

// ----------------------------------------------------------------- ConvLayer

ConvLayer::ConvLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                     Blob* top, const FilterDesc& filter,
                     const ConvGeometry& geom, bool bias, std::size_t ws_limit)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      filter_(filter),
      geom_(geom),
      problem_(bottom->shape(), filter, geom) {
  check(problem_.y == top_->shape(), Status::kBadParam,
        "conv top shape mismatch for " + name_);
  weights_ = std::make_unique<Blob>(
      ctx.dev, name_ + ":param",
      TensorShape{filter_.k, filter_.c, filter_.r, filter_.s});
  if (bias) {
    bias_ = std::make_unique<Blob>(ctx.dev, name_ + ":param_bias",
                                   TensorShape{1, filter_.k, 1, 1});
  }
  // Announce all three kernels to μ-cuDNN exactly like Caffe does during net
  // setup, passing the framework's per-layer workspace limit.
  for (ConvKernelType type :
       {ConvKernelType::kForward, ConvKernelType::kBackwardData,
        ConvKernelType::kBackwardFilter}) {
    ctx.handle.set_next_kernel_label(name_);
    ctx.handle.get_algorithm(type, problem_,
                             mcudnn::AlgoPreference::kSpecifyWorkspaceLimit,
                             ws_limit);
  }
}

void ConvLayer::init_params(std::mt19937& rng) {
  fill_normal(weights_->data(), weights_->count(), rng,
              msra_std(filter_.c * filter_.r * filter_.s));
  if (bias_) fill_constant(bias_->data(), bias_->count(), 0.1f);
}

std::vector<Blob*> ConvLayer::params() {
  std::vector<Blob*> result{weights_.get()};
  if (bias_) result.push_back(bias_.get());
  return result;
}

void ConvLayer::forward(const LayerContext& ctx) {
  ctx.handle.convolution(ConvKernelType::kForward, problem_, 1.0f,
                         bottom_->data(), weights_->data(), 0.0f, top_->data());
  if (bias_) {
    if (ctx.virtual_mode) {
      ctx.model_memory_op(2.0 * top_->bytes());
    } else {
      const std::int64_t plane = problem_.y.h * problem_.y.w;
      parallel_for_each(problem_.y.n * problem_.y.c, [&](std::int64_t nk) {
        const std::int64_t k = nk % problem_.y.c;
        float* out = top_->data() + nk * plane;
        const float b = bias_->data()[k];
        for (std::int64_t i = 0; i < plane; ++i) out[i] += b;
      });
    }
  }
}

void ConvLayer::backward(const LayerContext& ctx) {
  // In Virtual mode convolution ignores data pointers; passing null avoids
  // forcing lazy diff allocation for a run that never touches memory.
  const bool v = ctx.virtual_mode;
  // Parameter gradients (overwrite).
  ctx.handle.convolution(ConvKernelType::kBackwardFilter, problem_, 1.0f,
                         v ? nullptr : bottom_->data(),
                         v ? nullptr : top_->diff(), 0.0f,
                         v ? nullptr : weights_->diff());
  if (bias_) {
    if (ctx.virtual_mode) {
      ctx.model_memory_op(top_->bytes());
    } else {
      const std::int64_t plane = problem_.y.h * problem_.y.w;
      for (std::int64_t k = 0; k < problem_.y.c; ++k) {
        double acc = 0.0;
        for (std::int64_t n = 0; n < problem_.y.n; ++n) {
          const float* dy = top_->diff() + (n * problem_.y.c + k) * plane;
          for (std::int64_t i = 0; i < plane; ++i) acc += dy[i];
        }
        bias_->diff()[k] = static_cast<float>(acc);
      }
    }
  }
  // Data gradient (accumulate into the shared bottom diff).
  if (bottom_->has_diff()) {
    ctx.handle.convolution(ConvKernelType::kBackwardData, problem_, 1.0f,
                           v ? nullptr : top_->diff(),
                           v ? nullptr : weights_->data(), 1.0f,
                           v ? nullptr : bottom_->diff());
  }
}

// ----------------------------------------------------------------- ReluLayer

void ReluLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * top_->bytes());
    return;
  }
  const float* x = bottom_->data();
  float* y = top_->data();
  parallel_for_each(
      bottom_->count(), [&](std::int64_t i) { y[i] = std::max(0.0f, x[i]); },
      /*min_chunk=*/1 << 14);
}

void ReluLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(3.0 * top_->bytes());
    return;
  }
  // Uses the OUTPUT sign so in-place operation (top == bottom) stays valid.
  const float* y = top_->data();
  const float* dy = top_->diff();
  float* dx = bottom_->diff();
  if (dx == dy) {  // in-place: mask the diff directly
    parallel_for_each(
        bottom_->count(),
        [&](std::int64_t i) {
          if (y[i] <= 0.0f) dx[i] = 0.0f;
        },
        1 << 14);
  } else {
    parallel_for_each(
        bottom_->count(),
        [&](std::int64_t i) { dx[i] += y[i] > 0.0f ? dy[i] : 0.0f; }, 1 << 14);
  }
}

// ----------------------------------------------------------------- PoolLayer

PoolLayer::PoolLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                     Blob* top, PoolMode mode, std::int64_t window,
                     std::int64_t stride, std::int64_t pad)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      mode_(mode),
      window_(window),
      stride_(stride),
      pad_(pad),
      dev_(ctx.dev) {}

PoolLayer::~PoolLayer() { dev_->deallocate(argmax_); }

void PoolLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(bottom_->bytes() + top_->bytes());
    return;
  }
  const auto& in = bottom_->shape();
  const auto& out = top_->shape();
  if (mode_ == PoolMode::kMax && argmax_ == nullptr) {
    // Scratch is only needed on the numeric path; Virtual runs never touch
    // data, keeping the simulated device's footprint faithful to Caffe's.
    argmax_ = static_cast<std::int32_t*>(dev_->allocate(
        static_cast<std::size_t>(top_->count()) * sizeof(std::int32_t),
        name_ + ":aux"));
  }
  parallel_for_each(out.n * out.c, [&](std::int64_t nc) {
    const float* x = bottom_->data() + nc * in.h * in.w;
    float* y = top_->data() + nc * out.h * out.w;
    std::int32_t* am =
        argmax_ == nullptr ? nullptr : argmax_ + nc * out.h * out.w;
    for (std::int64_t i = 0; i < out.h; ++i) {
      for (std::int64_t j = 0; j < out.w; ++j) {
        const std::int64_t h0 = std::max<std::int64_t>(0, i * stride_ - pad_);
        const std::int64_t w0 = std::max<std::int64_t>(0, j * stride_ - pad_);
        const std::int64_t h1 = std::min(in.h, i * stride_ - pad_ + window_);
        const std::int64_t w1 = std::min(in.w, j * stride_ - pad_ + window_);
        if (mode_ == PoolMode::kMax) {
          float best = -std::numeric_limits<float>::infinity();
          std::int32_t best_idx = 0;
          for (std::int64_t h = h0; h < h1; ++h) {
            for (std::int64_t w = w0; w < w1; ++w) {
              const float v = x[h * in.w + w];
              if (v > best) {
                best = v;
                best_idx = static_cast<std::int32_t>(h * in.w + w);
              }
            }
          }
          y[i * out.w + j] = best;
          am[i * out.w + j] = best_idx;
        } else {
          double acc = 0.0;
          for (std::int64_t h = h0; h < h1; ++h) {
            for (std::int64_t w = w0; w < w1; ++w) acc += x[h * in.w + w];
          }
          // Caffe-style: divide by the full window area.
          y[i * out.w + j] =
              static_cast<float>(acc / static_cast<double>(window_ * window_));
        }
      }
    }
  });
}

void PoolLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(bottom_->bytes() + top_->bytes());
    return;
  }
  const auto& in = bottom_->shape();
  const auto& out = top_->shape();
  parallel_for_each(out.n * out.c, [&](std::int64_t nc) {
    float* dx = bottom_->diff() + nc * in.h * in.w;
    const float* dy = top_->diff() + nc * out.h * out.w;
    if (mode_ == PoolMode::kMax) {
      const std::int32_t* am = argmax_ + nc * out.h * out.w;
      for (std::int64_t p = 0; p < out.h * out.w; ++p) dx[am[p]] += dy[p];
    } else {
      const float scale = 1.0f / static_cast<float>(window_ * window_);
      for (std::int64_t i = 0; i < out.h; ++i) {
        for (std::int64_t j = 0; j < out.w; ++j) {
          const std::int64_t h0 = std::max<std::int64_t>(0, i * stride_ - pad_);
          const std::int64_t w0 = std::max<std::int64_t>(0, j * stride_ - pad_);
          const std::int64_t h1 = std::min(in.h, i * stride_ - pad_ + window_);
          const std::int64_t w1 = std::min(in.w, j * stride_ - pad_ + window_);
          const float g = dy[i * out.w + j] * scale;
          for (std::int64_t h = h0; h < h1; ++h) {
            for (std::int64_t w = w0; w < w1; ++w) dx[h * in.w + w] += g;
          }
        }
      }
    }
  });
}

// ------------------------------------------------------------------ LrnLayer

LrnLayer::LrnLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                   Blob* top, std::int64_t local_size, float alpha, float beta,
                   float k)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      local_size_(local_size),
      alpha_(alpha),
      beta_(beta),
      k_(k),
      dev_(ctx.dev) {}

LrnLayer::~LrnLayer() { dev_->deallocate(scale_); }

void LrnLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(3.0 * bottom_->bytes() * local_size_ / 2.0);
    return;
  }
  const auto& s = bottom_->shape();
  const std::int64_t plane = s.h * s.w;
  const std::int64_t half = local_size_ / 2;
  if (scale_ == nullptr) {
    scale_ = static_cast<float*>(
        dev_->allocate(bottom_->bytes(), name_ + ":aux"));
  }
  parallel_for_each(s.n * plane, [&](std::int64_t np) {
    const std::int64_t n = np / plane;
    const std::int64_t p = np % plane;
    const float* x = bottom_->data() + n * s.c * plane + p;
    float* sc = scale_ + n * s.c * plane + p;
    float* y = top_->data() + n * s.c * plane + p;
    for (std::int64_t c = 0; c < s.c; ++c) {
      double acc = 0.0;
      const std::int64_t c0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t c1 = std::min(s.c, c + half + 1);
      for (std::int64_t cc = c0; cc < c1; ++cc) {
        const float v = x[cc * plane];
        acc += static_cast<double>(v) * v;
      }
      const float scale_v =
          k_ + alpha_ / static_cast<float>(local_size_) *
                   static_cast<float>(acc);
      sc[c * plane] = scale_v;
      y[c * plane] = x[c * plane] * std::pow(scale_v, -beta_);
    }
  });
}

void LrnLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(4.0 * bottom_->bytes() * local_size_ / 2.0);
    return;
  }
  const auto& s = bottom_->shape();
  const std::int64_t plane = s.h * s.w;
  const std::int64_t half = local_size_ / 2;
  const float factor = 2.0f * alpha_ * beta_ / static_cast<float>(local_size_);
  parallel_for_each(s.n * plane, [&](std::int64_t np) {
    const std::int64_t n = np / plane;
    const std::int64_t p = np % plane;
    const float* x = bottom_->data() + n * s.c * plane + p;
    const float* sc = scale_ + n * s.c * plane + p;
    const float* y = top_->data() + n * s.c * plane + p;
    const float* dy = top_->diff() + n * s.c * plane + p;
    float* dx = bottom_->diff() + n * s.c * plane + p;
    for (std::int64_t c = 0; c < s.c; ++c) {
      // dx_c += dy_c * scale_c^-beta
      //         - factor * x_c * sum_{j: c in window(j)} dy_j y_j / scale_j.
      double cross = 0.0;
      const std::int64_t j0 = std::max<std::int64_t>(0, c - half);
      const std::int64_t j1 = std::min(s.c, c + half + 1);
      for (std::int64_t j = j0; j < j1; ++j) {
        cross += static_cast<double>(dy[j * plane]) * y[j * plane] /
                 sc[j * plane];
      }
      dx[c * plane] += dy[c * plane] * std::pow(sc[c * plane], -beta_) -
                       factor * x[c * plane] * static_cast<float>(cross);
    }
  });
}

// ------------------------------------------------------------------- FcLayer

FcLayer::FcLayer(const LayerContext& ctx, std::string name, Blob* bottom,
                 Blob* top, std::int64_t out_features, bool bias)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      in_features_(bottom->count() / bottom->shape().n),
      out_features_(out_features) {
  check(top_->shape().n == bottom_->shape().n &&
            top_->count() / top_->shape().n == out_features_,
        Status::kBadParam, "fc top shape mismatch for " + name_);
  weights_ = std::make_unique<Blob>(
      ctx.dev, name_ + ":param",
      TensorShape{out_features_, in_features_, 1, 1});
  if (bias) {
    bias_ = std::make_unique<Blob>(ctx.dev, name_ + ":param_bias",
                                   TensorShape{1, out_features_, 1, 1});
  }
}

void FcLayer::init_params(std::mt19937& rng) {
  fill_normal(weights_->data(), weights_->count(), rng, msra_std(in_features_));
  if (bias_) fill_constant(bias_->data(), bias_->count(), 0.1f);
}

std::vector<Blob*> FcLayer::params() {
  std::vector<Blob*> result{weights_.get()};
  if (bias_) result.push_back(bias_.get());
  return result;
}

void FcLayer::forward(const LayerContext& ctx) {
  const std::int64_t n = bottom_->shape().n;
  if (ctx.virtual_mode) {
    ctx.model_gemm(2.0 * n * in_features_ * out_features_,
                   bottom_->bytes() + weights_->bytes() + top_->bytes());
    return;
  }
  // y[N][out] = x[N][in] * Wᵀ[in][out] + b.
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, n, out_features_,
              in_features_, 1.0f, bottom_->data(), in_features_,
              weights_->data(), in_features_, 0.0f, top_->data(),
              out_features_);
  if (bias_) {
    parallel_for_each(n, [&](std::int64_t i) {
      float* y = top_->data() + i * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) {
        y[o] += bias_->data()[o];
      }
    });
  }
}

void FcLayer::backward(const LayerContext& ctx) {
  const std::int64_t n = bottom_->shape().n;
  if (ctx.virtual_mode) {
    ctx.model_gemm(4.0 * n * in_features_ * out_features_,
                   2.0 * (bottom_->bytes() + weights_->bytes() + top_->bytes()));
    return;
  }
  // dW[out][in] = dyᵀ[out][N] * x[N][in].
  gemm::sgemm(gemm::Trans::kYes, gemm::Trans::kNo, out_features_, in_features_,
              n, 1.0f, top_->diff(), out_features_, bottom_->data(),
              in_features_, 0.0f, weights_->diff(), in_features_);
  if (bias_) {
    for (std::int64_t o = 0; o < out_features_; ++o) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        acc += top_->diff()[i * out_features_ + o];
      }
      bias_->diff()[o] = static_cast<float>(acc);
    }
  }
  if (bottom_->has_diff()) {
    // dx[N][in] += dy[N][out] * W[out][in].
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, n, in_features_,
                out_features_, 1.0f, top_->diff(), out_features_,
                weights_->data(), in_features_, 1.0f, bottom_->diff(),
                in_features_);
  }
}

// ------------------------------------------------------------ BatchNormLayer

BatchNormLayer::BatchNormLayer(const LayerContext& ctx, std::string name,
                               Blob* bottom, Blob* top, float eps)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      eps_(eps),
      dev_(ctx.dev) {
  const std::int64_t c = bottom_->shape().c;
  gamma_ = std::make_unique<Blob>(ctx.dev, name_ + ":param",
                                  TensorShape{1, c, 1, 1});
  beta_ = std::make_unique<Blob>(ctx.dev, name_ + ":param_bias",
                                 TensorShape{1, c, 1, 1});
  mean_ = static_cast<float*>(
      dev_->allocate(static_cast<std::size_t>(c) * sizeof(float), name_ + ":aux"));
  inv_std_ = static_cast<float*>(
      dev_->allocate(static_cast<std::size_t>(c) * sizeof(float), name_ + ":aux"));
}

BatchNormLayer::~BatchNormLayer() {
  dev_->deallocate(mean_);
  dev_->deallocate(inv_std_);
}

void BatchNormLayer::init_params(std::mt19937& rng) {
  (void)rng;
  fill_constant(gamma_->data(), gamma_->count(), 1.0f);
  fill_constant(beta_->data(), beta_->count(), 0.0f);
}

std::vector<Blob*> BatchNormLayer::params() {
  return {gamma_.get(), beta_.get()};
}

void BatchNormLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(4.0 * bottom_->bytes());
    return;
  }
  const auto& s = bottom_->shape();
  const std::int64_t plane = s.h * s.w;
  const std::int64_t m = s.n * plane;
  parallel_for_each(s.c, [&](std::int64_t c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < s.n; ++n) {
      const float* x = bottom_->data() + (n * s.c + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        sum += x[p];
        sq += static_cast<double>(x[p]) * x[p];
      }
    }
    const double mean = sum / static_cast<double>(m);
    const double var = sq / static_cast<double>(m) - mean * mean;
    mean_[c] = static_cast<float>(mean);
    inv_std_[c] = static_cast<float>(1.0 / std::sqrt(var + eps_));
    const float g = gamma_->data()[c], b = beta_->data()[c];
    for (std::int64_t n = 0; n < s.n; ++n) {
      const float* x = bottom_->data() + (n * s.c + c) * plane;
      float* y = top_->data() + (n * s.c + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        y[p] = g * (x[p] - mean_[c]) * inv_std_[c] + b;
      }
    }
  });
}

void BatchNormLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(6.0 * bottom_->bytes());
    return;
  }
  const auto& s = bottom_->shape();
  const std::int64_t plane = s.h * s.w;
  const std::int64_t m = s.n * plane;
  parallel_for_each(s.c, [&](std::int64_t c) {
    const float g = gamma_->data()[c];
    const float mu = mean_[c], is = inv_std_[c];
    // First pass: dgamma, dbeta, and the two reduction terms.
    double dgamma = 0.0, dbeta = 0.0;
    for (std::int64_t n = 0; n < s.n; ++n) {
      const float* x = bottom_->data() + (n * s.c + c) * plane;
      const float* dy = top_->diff() + (n * s.c + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        const float xhat = (x[p] - mu) * is;
        dgamma += static_cast<double>(dy[p]) * xhat;
        dbeta += dy[p];
      }
    }
    gamma_->diff()[c] = static_cast<float>(dgamma);
    beta_->diff()[c] = static_cast<float>(dbeta);
    // Second pass: dx += (g*is/m) * (m*dy - dbeta - xhat*dgamma).
    const float scale = g * is / static_cast<float>(m);
    for (std::int64_t n = 0; n < s.n; ++n) {
      const float* x = bottom_->data() + (n * s.c + c) * plane;
      const float* dy = top_->diff() + (n * s.c + c) * plane;
      float* dx = bottom_->diff() + (n * s.c + c) * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        const float xhat = (x[p] - mu) * is;
        dx[p] += scale * (static_cast<float>(m) * dy[p] -
                          static_cast<float>(dbeta) -
                          xhat * static_cast<float>(dgamma));
      }
    }
  });
}

// ------------------------------------------------------------ EltwiseSum etc

void EltwiseSumLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(3.0 * top_->bytes());
    return;
  }
  const float* a = a_->data();
  const float* b = b_->data();
  float* y = top_->data();
  parallel_for_each(
      top_->count(), [&](std::int64_t i) { y[i] = a[i] + b[i]; }, 1 << 14);
}

void EltwiseSumLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(3.0 * top_->bytes());
    return;
  }
  const float* dy = top_->diff();
  float* da = a_->diff();
  float* db = b_->diff();
  parallel_for_each(
      top_->count(),
      [&](std::int64_t i) {
        da[i] += dy[i];
        db[i] += dy[i];
      },
      1 << 14);
}

void ConcatLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * top_->bytes());
    return;
  }
  const auto& out = top_->shape();
  const std::int64_t plane = out.h * out.w;
  std::int64_t c_offset = 0;
  for (Blob* bottom : bottoms_) {
    const std::int64_t c = bottom->shape().c;
    parallel_for_each(out.n, [&](std::int64_t n) {
      const float* src = bottom->data() + n * c * plane;
      float* dst = top_->data() + (n * out.c + c_offset) * plane;
      std::copy(src, src + c * plane, dst);
    });
    c_offset += c;
  }
}

void ConcatLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * top_->bytes());
    return;
  }
  const auto& out = top_->shape();
  const std::int64_t plane = out.h * out.w;
  std::int64_t c_offset = 0;
  for (Blob* bottom : bottoms_) {
    const std::int64_t c = bottom->shape().c;
    parallel_for_each(out.n, [&](std::int64_t n) {
      const float* src = top_->diff() + (n * out.c + c_offset) * plane;
      float* dst = bottom->diff() + n * c * plane;
      for (std::int64_t i = 0; i < c * plane; ++i) dst[i] += src[i];
    });
    c_offset += c;
  }
}

// -------------------------------------------------------------- DropoutLayer

DropoutLayer::DropoutLayer(const LayerContext& ctx, std::string name,
                           Blob* bottom, Blob* top, float ratio)
    : Layer(std::move(name)),
      bottom_(bottom),
      top_(top),
      ratio_(ratio),
      dev_(ctx.dev) {}

DropoutLayer::~DropoutLayer() { dev_->deallocate(mask_); }

void DropoutLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * top_->bytes());
    return;
  }
  if (mask_ == nullptr) {
    mask_ = static_cast<std::uint8_t*>(dev_->allocate(
        static_cast<std::size_t>(bottom_->count()), name_ + ":aux"));
  }
  std::mt19937 rng(static_cast<unsigned>(0x9E3779B9u + pass_++));
  std::bernoulli_distribution keep(1.0 - ratio_);
  const float scale = 1.0f / (1.0f - ratio_);
  const float* x = bottom_->data();
  float* y = top_->data();
  for (std::int64_t i = 0; i < bottom_->count(); ++i) {
    mask_[i] = keep(rng) ? 1 : 0;
    y[i] = mask_[i] ? x[i] * scale : 0.0f;
  }
}

void DropoutLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * top_->bytes());
    return;
  }
  const float scale = 1.0f / (1.0f - ratio_);
  const float* dy = top_->diff();
  float* dx = bottom_->diff();
  for (std::int64_t i = 0; i < bottom_->count(); ++i) {
    if (dx == dy) {
      if (!mask_[i]) dx[i] = 0.0f;  // in-place
    } else {
      dx[i] += mask_[i] ? dy[i] * scale : 0.0f;
    }
  }
}

// ---------------------------------------------------------- SoftmaxLossLayer

SoftmaxLossLayer::SoftmaxLossLayer(const LayerContext& ctx, std::string name,
                                   Blob* bottom, Blob* loss)
    : Layer(std::move(name)), bottom_(bottom), loss_(loss), dev_(ctx.dev) {}

SoftmaxLossLayer::~SoftmaxLossLayer() { dev_->deallocate(prob_); }

void SoftmaxLossLayer::forward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(3.0 * bottom_->bytes());
    return;
  }
  const std::int64_t n = bottom_->shape().n;
  const std::int64_t classes = bottom_->count() / n;
  if (prob_ == nullptr) {
    prob_ =
        static_cast<float*>(dev_->allocate(bottom_->bytes(), name_ + ":aux"));
  }
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* x = bottom_->data() + i * classes;
    float* p = prob_ + i * classes;
    const float max_v = *std::max_element(x, x + classes);
    double sum = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      p[c] = std::exp(x[c] - max_v);
      sum += p[c];
    }
    for (std::int64_t c = 0; c < classes; ++c) {
      p[c] = static_cast<float>(p[c] / sum);
    }
    const std::int64_t label = i % classes;  // synthetic labels
    loss -= std::log(std::max(1e-12, static_cast<double>(p[label])));
  }
  loss_->data()[0] = static_cast<float>(loss / static_cast<double>(n));
}

void SoftmaxLossLayer::backward(const LayerContext& ctx) {
  if (ctx.virtual_mode) {
    ctx.model_memory_op(2.0 * bottom_->bytes());
    return;
  }
  const std::int64_t n = bottom_->shape().n;
  const std::int64_t classes = bottom_->count() / n;
  const float scale = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* p = prob_ + i * classes;
    float* dx = bottom_->diff() + i * classes;
    const std::int64_t label = i % classes;
    for (std::int64_t c = 0; c < classes; ++c) {
      dx[c] += scale * (p[c] - (c == label ? 1.0f : 0.0f));
    }
  }
}

}  // namespace ucudnn::caffepp
