#include "kernels/fft_conv.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fft/fft.h"

namespace ucudnn::kernels {

namespace {

using fft::Complex;

// Input channels are processed in chunks of this size, so the workspace
// holds only a slice of the filter/input spectra at a time (the output
// spectrum must stay resident for accumulation). Combined with Hermitian
// half-spectrum storage this keeps FFT workspace ~linear in the
// (micro-)batch size — the property micro-batching exploits.
constexpr std::int64_t kChannelChunk = 8;

// A stride-1 cross-correlation with integer (possibly negative) padding:
//   dst[n, co, i, j] =
//     sum_{cs, r, s} src[n, cs, i + r - pad_h, j + s - pad_w] * flt[co, cs, r, s]
// (zero outside the source). Forward convolution and BackwardData both lower
// to this form; `filter_ckrs`/`flip` describe how to read the filter tensor.
struct CorrSpec {
  std::int64_t n;
  std::int64_t cs;
  std::int64_t co;
  std::int64_t hs, ws;
  std::int64_t ho, wo;
  std::int64_t r, s;
  std::int64_t pad_h, pad_w;
  bool filter_ckrs;  // filter storage is [cs][co][R][S] instead of [co][cs][R][S]
  bool flip;         // flip the window spatially when loading the filter
};

CorrSpec forward_spec(const ConvProblem& p) {
  return CorrSpec{p.x.n, p.x.c,          p.w.k,
                  p.x.h, p.x.w,          p.y.h,
                  p.y.w, p.w.r,          p.w.s,
                  p.geom.pad_h,          p.geom.pad_w,
                  false, p.geom.mode == ConvMode::kConvolution};
}

CorrSpec backward_data_spec(const ConvProblem& p) {
  return CorrSpec{p.x.n, p.w.k,          p.x.c,
                  p.y.h, p.y.w,          p.x.h,
                  p.x.w, p.w.r,          p.w.s,
                  p.w.r - 1 - p.geom.pad_h, p.w.s - 1 - p.geom.pad_w,
                  true,  p.geom.mode == ConvMode::kCrossCorrelation};
}

inline float load_filter(const CorrSpec& c, const float* flt, std::int64_t co,
                         std::int64_t cs, std::int64_t r, std::int64_t s) {
  const std::int64_t rr = c.flip ? c.r - 1 - r : r;
  const std::int64_t ss = c.flip ? c.s - 1 - s : s;
  const std::int64_t idx = c.filter_ckrs
                               ? ((cs * c.co + co) * c.r + rr) * c.s + ss
                               : ((co * c.cs + cs) * c.r + rr) * c.s + ss;
  return flt[idx];
}

// 2-D transform plan with Hermitian half-spectrum packing along the width.
struct FftPlan {
  std::int64_t fh = 0, fw = 0;  // full transform dims
  std::int64_t half_w() const noexcept { return fw / 2 + 1; }
  std::int64_t cells() const noexcept { return fh * half_w(); }       // packed
  std::int64_t full_cells() const noexcept { return fh * fw; }        // scratch
};

// Padded transform edges: the source is placed at offset u = max(0, pad);
// correlation is evaluated at p = i + u - pad.
std::int64_t plan_edge(std::int64_t src, std::int64_t dst, std::int64_t window,
                       std::int64_t pad) {
  const std::int64_t u = std::max<std::int64_t>(0, pad);
  return static_cast<std::int64_t>(next_pow2(static_cast<std::size_t>(
      std::max(u + src, dst + u - pad + window - 1))));
}

FftPlan corr_plan(const CorrSpec& c) {
  return FftPlan{plan_edge(c.hs, c.ho, c.r, c.pad_h),
                 plan_edge(c.ws, c.wo, c.s, c.pad_w)};
}

// Forward transform of `scratch` (a zero-filled full plane the caller has
// populated), packed into `half`.
void r2c(const FftPlan& plan, Complex* scratch, Complex* half) {
  fft::fft2d(scratch, static_cast<std::size_t>(plan.fh),
             static_cast<std::size_t>(plan.fw), false);
  const std::int64_t hw = plan.half_w();
  for (std::int64_t u = 0; u < plan.fh; ++u) {
    std::copy(scratch + u * plan.fw, scratch + u * plan.fw + hw,
              half + u * hw);
  }
}

// Unpacks `half` into `scratch` using the 2-D Hermitian symmetry
// X[(F-u)%F, F-v] = conj(X[u, v]) of a real signal's spectrum, then inverse
// transforms. Valid whenever `half` is a pointwise product/sum of spectra of
// real signals (products of Hermitian spectra stay Hermitian).
void c2r(const FftPlan& plan, const Complex* half, Complex* scratch) {
  const std::int64_t hw = plan.half_w();
  for (std::int64_t u = 0; u < plan.fh; ++u) {
    std::copy(half + u * hw, half + u * hw + hw, scratch + u * plan.fw);
  }
  for (std::int64_t u = 0; u < plan.fh; ++u) {
    Complex* row = scratch + u * plan.fw;
    const Complex* mirror =
        scratch + ((plan.fh - u) % plan.fh) * plan.fw;
    for (std::int64_t v = hw; v < plan.fw; ++v) {
      row[v] = std::conj(mirror[plan.fw - v]);
    }
  }
  fft::fft2d(scratch, static_cast<std::size_t>(plan.fh),
             static_cast<std::size_t>(plan.fw), true);
}

std::size_t corr_workspace(const CorrSpec& c, const FftPlan& plan) {
  const std::int64_t cb = std::min(c.cs, kChannelChunk);
  const std::size_t threads = ThreadPool::global().num_threads();
  const std::size_t packed = static_cast<std::size_t>(plan.cells());
  return (static_cast<std::size_t>(c.co * cb + c.n * cb + c.n * c.co) * packed +
          threads * static_cast<std::size_t>(plan.full_cells())) *
         sizeof(Complex);
}

// Core FFT correlation: channel-chunked, half-spectrum, tile-aware.
// `tile` selects an output tile (i0/j0/th/tw); pass the full output for the
// non-tiled algorithm.
struct TileRect {
  std::int64_t i0, j0, th, tw;
};

void corr_fft_tile(const CorrSpec& c, const FftPlan& plan, const TileRect& t,
                   const float* src, const float* flt, float* dst, float alpha,
                   float beta, Complex* flt_freq, Complex* src_freq,
                   Complex* dst_freq, Complex* scratch_base) {
  const std::int64_t cells = plan.cells();
  const std::int64_t full = plan.full_cells();
  const std::int64_t hw = plan.half_w();
  const std::int64_t cb_max = std::min(c.cs, kChannelChunk);
  // Source patch origin for this tile (may be negative).
  const std::int64_t si0 = t.i0 - c.pad_h;
  const std::int64_t sj0 = t.j0 - c.pad_w;
  const std::int64_t ph = t.th + c.r - 1;
  const std::int64_t pw = t.tw + c.s - 1;

  // Zero the resident output spectra.
  parallel_for_each(c.n * c.co, [&](std::int64_t idx) {
    std::fill(dst_freq + idx * cells, dst_freq + (idx + 1) * cells,
              Complex(0, 0));
  });

  for (std::int64_t c0 = 0; c0 < c.cs; c0 += cb_max) {
    const std::int64_t cb = std::min(cb_max, c.cs - c0);

    // Filter chunk transforms: flt_freq[co][local c].
    ThreadPool::global().parallel_for(
        c.co * cb, [&](std::int64_t begin, std::int64_t end, std::size_t w) {
          Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
          for (std::int64_t idx = begin; idx < end; ++idx) {
            const std::int64_t co = idx / cb;
            const std::int64_t lc = idx % cb;
            std::fill(scratch, scratch + full, Complex(0, 0));
            for (std::int64_t r = 0; r < c.r; ++r) {
              for (std::int64_t s = 0; s < c.s; ++s) {
                scratch[r * plan.fw + s] =
                    Complex(load_filter(c, flt, co, c0 + lc, r, s), 0.0f);
              }
            }
            r2c(plan, scratch, flt_freq + idx * cells);
          }
        });

    // Source chunk transforms: src_freq[n][local c], patch at origin.
    ThreadPool::global().parallel_for(
        c.n * cb, [&](std::int64_t begin, std::int64_t end, std::size_t w) {
          Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
          for (std::int64_t idx = begin; idx < end; ++idx) {
            const std::int64_t n = idx / cb;
            const std::int64_t lc = idx % cb;
            std::fill(scratch, scratch + full, Complex(0, 0));
            const float* plane =
                src + (n * c.cs + (c0 + lc)) * c.hs * c.ws;
            for (std::int64_t a = 0; a < ph; ++a) {
              const std::int64_t ih = si0 + a;
              if (ih < 0 || ih >= c.hs) continue;
              const float* src_row = plane + ih * c.ws;
              Complex* row = scratch + a * plan.fw;
              for (std::int64_t b = 0; b < pw; ++b) {
                const std::int64_t iw = sj0 + b;
                if (iw >= 0 && iw < c.ws) row[b] = Complex(src_row[iw], 0.0f);
              }
            }
            r2c(plan, scratch, src_freq + idx * cells);
          }
        });

    // Frequency-domain accumulation: dst += SRC .* conj(FLT).
    parallel_for_each(c.n * c.co, [&](std::int64_t idx) {
      const std::int64_t n = idx / c.co;
      const std::int64_t co = idx % c.co;
      Complex* out = dst_freq + idx * cells;
      for (std::int64_t lc = 0; lc < cb; ++lc) {
        fft::multiply_conj_accumulate(src_freq + (n * cb + lc) * cells,
                                      flt_freq + (co * cb + lc) * cells, out,
                                      static_cast<std::size_t>(cells));
      }
    });
  }

  // Inverse transforms and scatter.
  (void)hw;
  ThreadPool::global().parallel_for(
      c.n * c.co, [&](std::int64_t begin, std::int64_t end, std::size_t w) {
        Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
        for (std::int64_t idx = begin; idx < end; ++idx) {
          c2r(plan, dst_freq + idx * cells, scratch);
          float* out = dst + idx * c.ho * c.wo;
          // Correlation value for output (i, j) sits at scratch position
          // (i - t.i0, j - t.j0) within the tile (source placed at origin of
          // the patch, so p = local output index).
          for (std::int64_t i = 0; i < t.th; ++i) {
            const Complex* row = scratch + i * plan.fw;
            float* out_row = out + (t.i0 + i) * c.wo + t.j0;
            for (std::int64_t j = 0; j < t.tw; ++j) {
              const float value = alpha * row[j].real();
              out_row[j] = value + (beta == 0.0f ? 0.0f : beta * out_row[j]);
            }
          }
        }
      });
}

void corr_fft(const CorrSpec& c, const float* src, const float* flt,
              float* dst, float alpha, float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam, "FFT conv requires workspace");
  const FftPlan plan = corr_plan(c);
  const std::int64_t cells = plan.cells();
  const std::int64_t cb = std::min(c.cs, kChannelChunk);

  auto* flt_freq = static_cast<Complex*>(workspace);
  Complex* src_freq = flt_freq + c.co * cb * cells;
  Complex* dst_freq = src_freq + c.n * cb * cells;
  Complex* scratch = dst_freq + c.n * c.co * cells;

  // One "tile" covering the whole output. The full-image plan places the
  // source at offset u = max(0, pad) and evaluates at p = i + u - pad; using
  // the tile machinery with i0 = j0 = 0 reproduces exactly that placement
  // (patch origin = -pad).
  corr_fft_tile(c, plan, TileRect{0, 0, c.ho, c.wo}, src, flt, dst, alpha,
                beta, flt_freq, src_freq, dst_freq, scratch);
}

// ------------------------------ tiling -------------------------------------

// Fixed 32x32 FFT tiles (64x64 for windows over 17), as in cuDNN.
std::int64_t tiling_fft_edge(const CorrSpec& c) {
  return std::max(c.r, c.s) <= 17 ? 32 : 64;
}

FftPlan tiling_plan(const CorrSpec& c) {
  const std::int64_t fe = tiling_fft_edge(c);
  return FftPlan{fe, fe};
}

void corr_fft_tiling(const CorrSpec& c, const float* src, const float* flt,
                     float* dst, float alpha, float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "FFT tiling conv requires workspace");
  const FftPlan plan = tiling_plan(c);
  const std::int64_t cells = plan.cells();
  const std::int64_t cb = std::min(c.cs, kChannelChunk);
  const std::int64_t t_h = plan.fh - c.r + 1;
  const std::int64_t t_w = plan.fw - c.s + 1;

  auto* flt_freq = static_cast<Complex*>(workspace);
  Complex* src_freq = flt_freq + c.co * cb * cells;
  Complex* dst_freq = src_freq + c.n * cb * cells;
  Complex* scratch = dst_freq + c.n * c.co * cells;

  for (std::int64_t i0 = 0; i0 < c.ho; i0 += t_h) {
    const std::int64_t th = std::min(t_h, c.ho - i0);
    for (std::int64_t j0 = 0; j0 < c.wo; j0 += t_w) {
      const std::int64_t tw = std::min(t_w, c.wo - j0);
      corr_fft_tile(c, plan, TileRect{i0, j0, th, tw}, src, flt, dst, alpha,
                    beta, flt_freq, src_freq, dst_freq, scratch);
    }
  }
}

}  // namespace

bool fft_supported(const ConvProblem& p) noexcept {
  return p.is_unit_stride() && p.is_unit_dilation();
}

bool fft_tiling_supported(const ConvProblem& p) noexcept {
  return fft_supported(p) && p.w.r <= 32 && p.w.s <= 32;
}

std::int64_t fft_plan_edge_h(const ConvProblem& p) noexcept {
  return corr_plan(forward_spec(p)).fh;
}
std::int64_t fft_plan_edge_w(const ConvProblem& p) noexcept {
  return corr_plan(forward_spec(p)).fw;
}
std::int64_t fft_tile_edge(const ConvProblem& p) noexcept {
  return tiling_fft_edge(forward_spec(p));
}

std::size_t fft_fwd_workspace(const ConvProblem& p) {
  const CorrSpec c = forward_spec(p);
  return corr_workspace(c, corr_plan(c));
}

void fft_forward(const ConvProblem& p, const float* x, const float* w,
                 float* y, float alpha, float beta, void* workspace) {
  check(fft_supported(p), Status::kNotSupported,
        "FFT forward requires unit stride/dilation");
  corr_fft(forward_spec(p), x, w, y, alpha, beta, workspace);
}

std::size_t fft_bwd_data_workspace(const ConvProblem& p) {
  const CorrSpec c = backward_data_spec(p);
  return corr_workspace(c, corr_plan(c));
}

void fft_backward_data(const ConvProblem& p, const float* dy, const float* w,
                       float* dx, float alpha, float beta, void* workspace) {
  check(fft_supported(p), Status::kNotSupported,
        "FFT backward-data requires unit stride/dilation");
  corr_fft(backward_data_spec(p), dy, w, dx, alpha, beta, workspace);
}

std::size_t fft_tiling_fwd_workspace(const ConvProblem& p) {
  const CorrSpec c = forward_spec(p);
  return corr_workspace(c, tiling_plan(c));
}

void fft_tiling_forward(const ConvProblem& p, const float* x, const float* w,
                        float* y, float alpha, float beta, void* workspace) {
  check(fft_tiling_supported(p), Status::kNotSupported,
        "FFT tiling forward requires unit stride/dilation and window <= 32");
  corr_fft_tiling(forward_spec(p), x, w, y, alpha, beta, workspace);
}

std::size_t fft_tiling_bwd_data_workspace(const ConvProblem& p) {
  const CorrSpec c = backward_data_spec(p);
  return corr_workspace(c, tiling_plan(c));
}

void fft_tiling_backward_data(const ConvProblem& p, const float* dy,
                              const float* w, float* dx, float alpha,
                              float beta, void* workspace) {
  check(fft_tiling_supported(p), Status::kNotSupported,
        "FFT tiling backward-data requires unit stride/dilation, window <= 32");
  corr_fft_tiling(backward_data_spec(p), dy, w, dx, alpha, beta, workspace);
}

// ------------------------- BackwardFilter ----------------------------------

namespace {

FftPlan bwd_filter_plan(const ConvProblem& p) {
  return FftPlan{
      static_cast<std::int64_t>(next_pow2(static_cast<std::size_t>(
          std::max(p.geom.pad_h + p.x.h, p.w.r - 1 + p.y.h)))),
      static_cast<std::int64_t>(next_pow2(static_cast<std::size_t>(
          std::max(p.geom.pad_w + p.x.w, p.w.s - 1 + p.y.w))))};
}

}  // namespace

std::size_t fft_bwd_filter_workspace(const ConvProblem& p) {
  const FftPlan plan = bwd_filter_plan(p);
  const std::size_t threads = ThreadPool::global().num_threads();
  return (static_cast<std::size_t>(p.x.n * (p.x.c + p.y.c)) *
              static_cast<std::size_t>(plan.cells()) +
          threads * static_cast<std::size_t>(plan.cells()) +  // accumulators
          threads * static_cast<std::size_t>(plan.full_cells())) *
         sizeof(Complex);
}

void fft_backward_filter(const ConvProblem& p, const float* x, const float* dy,
                         float* dw, float alpha, float beta, void* workspace) {
  check(fft_supported(p), Status::kNotSupported,
        "FFT backward-filter requires unit stride/dilation");
  check(workspace != nullptr, Status::kBadParam, "FFT conv requires workspace");
  const FftPlan plan = bwd_filter_plan(p);
  const std::int64_t cells = plan.cells();
  const std::int64_t full = plan.full_cells();
  const std::size_t threads = ThreadPool::global().num_threads();

  auto* x_freq = static_cast<Complex*>(workspace);
  Complex* dy_freq = x_freq + p.x.n * p.x.c * cells;
  Complex* acc_base = dy_freq + p.x.n * p.y.c * cells;
  Complex* scratch_base = acc_base + static_cast<std::int64_t>(threads) * cells;

  // X transforms, placed at offset (pad_h, pad_w).
  ThreadPool::global().parallel_for(
      p.x.n * p.x.c, [&](std::int64_t begin, std::int64_t end, std::size_t w) {
        Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
        for (std::int64_t idx = begin; idx < end; ++idx) {
          std::fill(scratch, scratch + full, Complex(0, 0));
          const float* plane = x + idx * p.x.h * p.x.w;
          for (std::int64_t i = 0; i < p.x.h; ++i) {
            Complex* row =
                scratch + (i + p.geom.pad_h) * plan.fw + p.geom.pad_w;
            const float* src_row = plane + i * p.x.w;
            for (std::int64_t j = 0; j < p.x.w; ++j) {
              row[j] = Complex(src_row[j], 0.0f);
            }
          }
          r2c(plan, scratch, x_freq + idx * cells);
        }
      });

  // dy transforms at the origin.
  ThreadPool::global().parallel_for(
      p.x.n * p.y.c, [&](std::int64_t begin, std::int64_t end, std::size_t w) {
        Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
        for (std::int64_t idx = begin; idx < end; ++idx) {
          std::fill(scratch, scratch + full, Complex(0, 0));
          const float* plane = dy + idx * p.y.h * p.y.w;
          for (std::int64_t i = 0; i < p.y.h; ++i) {
            Complex* row = scratch + i * plan.fw;
            const float* src_row = plane + i * p.y.w;
            for (std::int64_t j = 0; j < p.y.w; ++j) {
              row[j] = Complex(src_row[j], 0.0f);
            }
          }
          r2c(plan, scratch, dy_freq + idx * cells);
        }
      });

  // dw[k, c, r, s] = IFFT( sum_n X[n,c] .* conj(DY[n,k]) )[r, s].
  const bool flip = p.geom.mode == ConvMode::kConvolution;
  ThreadPool::global().parallel_for(
      p.w.k * p.w.c,
      [&](std::int64_t begin, std::int64_t end, std::size_t w) {
        Complex* acc = acc_base + static_cast<std::int64_t>(w) * cells;
        Complex* scratch = scratch_base + static_cast<std::int64_t>(w) * full;
        for (std::int64_t idx = begin; idx < end; ++idx) {
          const std::int64_t k = idx / p.w.c;
          const std::int64_t c = idx % p.w.c;
          std::fill(acc, acc + cells, Complex(0, 0));
          for (std::int64_t n = 0; n < p.x.n; ++n) {
            fft::multiply_conj_accumulate(x_freq + (n * p.x.c + c) * cells,
                                          dy_freq + (n * p.y.c + k) * cells,
                                          acc, static_cast<std::size_t>(cells));
          }
          c2r(plan, acc, scratch);
          for (std::int64_t r = 0; r < p.w.r; ++r) {
            for (std::int64_t s = 0; s < p.w.s; ++s) {
              const std::int64_t rr = flip ? p.w.r - 1 - r : r;
              const std::int64_t ss = flip ? p.w.s - 1 - s : s;
              float& out = dw[p.w.offset(k, c, r, s)];
              const float value = alpha * scratch[rr * plan.fw + ss].real();
              out = value + (beta == 0.0f ? 0.0f : beta * out);
            }
          }
        }
      });
}

}  // namespace ucudnn::kernels
