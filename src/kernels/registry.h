// Algorithm registry: the single point the mcudnn API layer (and the
// μ-cuDNN optimizer) uses to enumerate convolution algorithms, query
// support/workspace/cost, and execute them.
//
// Algorithm enumerations mirror cuDNN 7:
//   Forward:        IMPLICIT_GEMM, IMPLICIT_PRECOMP_GEMM, GEMM, DIRECT,
//                   FFT, FFT_TILING, WINOGRAD, WINOGRAD_NONFUSED
//   BackwardData:   ALGO_0 (direct), ALGO_1 (GEMM+col2im), FFT, FFT_TILING,
//                   WINOGRAD, WINOGRAD_NONFUSED
//   BackwardFilter: ALGO_0 (direct), ALGO_1 (per-image GEMM), FFT,
//                   ALGO_3 (batched GEMM)
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

namespace fwd_algo {
inline constexpr int kImplicitGemm = 0;
inline constexpr int kImplicitPrecompGemm = 1;
inline constexpr int kGemm = 2;
inline constexpr int kDirect = 3;
inline constexpr int kFft = 4;
inline constexpr int kFftTiling = 5;
inline constexpr int kWinograd = 6;
inline constexpr int kWinogradNonfused = 7;
inline constexpr int kCount = 8;
}  // namespace fwd_algo

namespace bwd_data_algo {
inline constexpr int kAlgo0 = 0;
inline constexpr int kAlgo1 = 1;
inline constexpr int kFft = 2;
inline constexpr int kFftTiling = 3;
inline constexpr int kWinograd = 4;
inline constexpr int kWinogradNonfused = 5;
inline constexpr int kCount = 6;
}  // namespace bwd_data_algo

namespace bwd_filter_algo {
inline constexpr int kAlgo0 = 0;
inline constexpr int kAlgo1 = 1;
inline constexpr int kFft = 2;
inline constexpr int kAlgo3 = 3;
inline constexpr int kCount = 4;
}  // namespace bwd_filter_algo

/// Number of algorithm slots for a kernel type.
int algo_count(ConvKernelType type) noexcept;

/// Short name, e.g. "FFT_TILING". Throws kBadParam for out-of-range ids.
std::string_view algo_name(ConvKernelType type, int algo);

/// Whether `algo` can run this problem at all (stride/dilation/window rules).
bool algo_supported(ConvKernelType type, int algo,
                    const ConvProblem& p) noexcept;

/// Exact workspace requirement in bytes. Throws kNotSupported when
/// algo_supported() is false.
std::size_t algo_workspace(ConvKernelType type, int algo, const ConvProblem& p);

/// Modeled floating-point operation count (used by the device simulator).
double algo_flops(ConvKernelType type, int algo, const ConvProblem& p);

/// Modeled DRAM traffic in bytes (used by the device simulator).
double algo_traffic_bytes(ConvKernelType type, int algo, const ConvProblem& p);

/// Runs the algorithm. Operand roles per kernel type:
///   Forward:        a = x,  b = w,  out = y
///   BackwardData:   a = dy, b = w,  out = dx
///   BackwardFilter: a = x,  b = dy, out = dw
/// Throws kNotSupported / kBadParam (e.g. workspace too small).
///
/// With UCUDNN_AUDIT_WORKSPACE=1 the kernel runs against a red-zoned
/// AuditedBuffer of exactly its declared workspace size instead of the
/// caller's buffer (workspace is scratch, so substitution is semantics-
/// preserving); a write outside the declared span throws kInternalError
/// naming the kernel and byte offset. See src/analysis/workspace_audit.h.
void execute(ConvKernelType type, int algo, const ConvProblem& p,
             const float* a, const float* b, float* out, float alpha,
             float beta, void* workspace, std::size_t workspace_bytes);

// --- test-kernel extension ------------------------------------------------
// Extra algorithm slots appended after the cuDNN-mirrored ids, used by the
// analysis tests to register deliberately misbehaving kernels (workspace
// overrun / under-declaration) and assert the auditor catches them.

/// A dynamically registered algorithm. `workspace` declares the requirement;
/// `run` executes with the caller-provided span.
struct TestKernel {
  std::string name;
  std::size_t (*workspace)(const ConvProblem& p) = nullptr;
  void (*run)(const ConvProblem& p, const float* a, const float* b, float* out,
              float alpha, float beta, void* ws, std::size_t ws_bytes) = nullptr;
};

/// Appends `kernel` to `type`'s algorithm list and returns its algorithm id
/// (>= the built-in kCount). Registered kernels are always "supported" and
/// participate in algo_count/find_algorithms. Not thread-safe; call from
/// test setup only.
int register_test_kernel(ConvKernelType type, TestKernel kernel);

/// Removes all registered test kernels.
void clear_test_kernels() noexcept;

}  // namespace ucudnn::kernels
