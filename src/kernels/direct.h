// Direct (loop-nest) convolution kernels. Zero workspace, slow; these double
// as the numerical reference implementations for every other algorithm.
//
// All entry points implement the cuDNN scaling contract
// out = alpha * op(inputs) + beta * out.
#pragma once

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

/// y = alpha * conv(x, w) + beta * y. Naive seven-loop nest with a
/// double-precision accumulator (reference quality).
void direct_forward(const ConvProblem& p, const float* x, const float* w,
                    float* y, float alpha, float beta);

/// dx = alpha * corr*(dy, w) + beta * dx.
void direct_backward_data(const ConvProblem& p, const float* dy,
                          const float* w, float* dx, float alpha, float beta);

/// dw = alpha * sum_n corr(x_n, dy_n) + beta * dw.
void direct_backward_filter(const ConvProblem& p, const float* x,
                            const float* dy, float* dw, float alpha,
                            float beta);

/// Implicit-GEMM style forward: same zero-workspace contract as
/// direct_forward but with a cache-friendlier loop order (hoisted bounds,
/// vectorizable inner loop) — faster, still no workspace.
void implicit_gemm_forward(const ConvProblem& p, const float* x,
                           const float* w, float* y, float alpha, float beta);

}  // namespace ucudnn::kernels
