// Winograd F(2x2, 3x3) convolution (Lavin & Gray, CVPR 2016).
//
// Two variants mirroring cuDNN:
//  * WINOGRAD (fused)     — tiles are transformed, multiplied and inverse
//    transformed on the fly; workspace holds only the transformed filters
//    plus small per-worker scratch, i.e. it is (nearly) batch-INDEPENDENT.
//  * WINOGRAD_NONFUSED    — all input tiles are transformed into a staging
//    buffer and the elementwise stage becomes 16 large GEMMs; workspace is
//    batch-LINEAR and large, but throughput is the best of all algorithms
//    for 3x3 kernels.
//
// BackwardData is lowered onto the forward kernel with a transposed
// (and possibly flipped) filter built inside the workspace.
//
// Restrictions: 3x3 window, unit stride and dilation; BackwardData
// additionally needs pad <= 2 so the lowered problem has non-negative pad.
#pragma once

#include <cstddef>

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

bool winograd_supported(const ConvProblem& p) noexcept;
bool winograd_bwd_data_supported(const ConvProblem& p) noexcept;

/// Number of 2x2 output tiles (ceil(OH/2) * ceil(OW/2)) per image.
std::int64_t winograd_tiles(const ConvProblem& p) noexcept;

std::size_t winograd_fwd_workspace(const ConvProblem& p);
void winograd_forward(const ConvProblem& p, const float* x, const float* w,
                      float* y, float alpha, float beta, void* workspace);

std::size_t winograd_nonfused_fwd_workspace(const ConvProblem& p);
void winograd_nonfused_forward(const ConvProblem& p, const float* x,
                               const float* w, float* y, float alpha,
                               float beta, void* workspace);

std::size_t winograd_bwd_data_workspace(const ConvProblem& p);
void winograd_backward_data(const ConvProblem& p, const float* dy,
                            const float* w, float* dx, float alpha, float beta,
                            void* workspace);

std::size_t winograd_nonfused_bwd_data_workspace(const ConvProblem& p);
void winograd_nonfused_backward_data(const ConvProblem& p, const float* dy,
                                     const float* w, float* dx, float alpha,
                                     float beta, void* workspace);

}  // namespace ucudnn::kernels
