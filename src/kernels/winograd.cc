#include "kernels/winograd.h"

#include <algorithm>
#include <array>

#include "common/simd.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "gemm/gemm.h"

namespace ucudnn::kernels {

namespace {

// Filter transform U = G g Gᵀ for F(2x2, 3x3),
// G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]].
void transform_filter(const float g[9], float u[16]) {
  // Gg: 4x3.
  float t[12];
  for (int j = 0; j < 3; ++j) {
    const float g0 = g[0 * 3 + j], g1 = g[1 * 3 + j], g2 = g[2 * 3 + j];
    t[0 * 3 + j] = g0;
    t[1 * 3 + j] = 0.5f * (g0 + g1 + g2);
    t[2 * 3 + j] = 0.5f * (g0 - g1 + g2);
    t[3 * 3 + j] = g2;
  }
  // (Gg) Gᵀ: 4x4.
  for (int i = 0; i < 4; ++i) {
    const float t0 = t[i * 3 + 0], t1 = t[i * 3 + 1], t2 = t[i * 3 + 2];
    u[i * 4 + 0] = t0;
    u[i * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[i * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[i * 4 + 3] = t2;
  }
}

// Input transform V = Bᵀ d B,
// Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]].
void transform_input(const float d[16], float v[16]) {
  float t[16];
  for (int j = 0; j < 4; ++j) {
    const float d0 = d[0 * 4 + j], d1 = d[1 * 4 + j], d2 = d[2 * 4 + j],
                d3 = d[3 * 4 + j];
    t[0 * 4 + j] = d0 - d2;
    t[1 * 4 + j] = d1 + d2;
    t[2 * 4 + j] = d2 - d1;
    t[3 * 4 + j] = d1 - d3;
  }
  for (int i = 0; i < 4; ++i) {
    const float t0 = t[i * 4 + 0], t1 = t[i * 4 + 1], t2 = t[i * 4 + 2],
                t3 = t[i * 4 + 3];
    v[i * 4 + 0] = t0 - t2;
    v[i * 4 + 1] = t1 + t2;
    v[i * 4 + 2] = t2 - t1;
    v[i * 4 + 3] = t1 - t3;
  }
}

// Output transform y = Aᵀ m A, Aᵀ = [[1,1,1,0],[0,1,-1,-1]].
void transform_output(const float m[16], float y[4]) {
  float t[8];
  for (int j = 0; j < 4; ++j) {
    const float m0 = m[0 * 4 + j], m1 = m[1 * 4 + j], m2 = m[2 * 4 + j],
                m3 = m[3 * 4 + j];
    t[0 * 4 + j] = m0 + m1 + m2;
    t[1 * 4 + j] = m1 - m2 - m3;
  }
  for (int i = 0; i < 2; ++i) {
    const float t0 = t[i * 4 + 0], t1 = t[i * 4 + 1], t2 = t[i * 4 + 2],
                t3 = t[i * 4 + 3];
    y[i * 2 + 0] = t0 + t1 + t2;
    y[i * 2 + 1] = t1 - t2 - t3;
  }
}

// Loads a 4x4 input patch with zero padding outside the image.
void load_patch(const float* plane, std::int64_t h, std::int64_t w,
                std::int64_t i0, std::int64_t j0, float d[16]) {
  for (int a = 0; a < 4; ++a) {
    const std::int64_t ih = i0 + a;
    for (int b = 0; b < 4; ++b) {
      const std::int64_t iw = j0 + b;
      d[a * 4 + b] = (ih >= 0 && ih < h && iw >= 0 && iw < w)
                         ? plane[ih * w + iw]
                         : 0.0f;
    }
  }
}

// Reads filter element (k, c, r, s) honoring the convolution-mode flip.
inline float filter_at(const ConvProblem& p, const float* w, std::int64_t k,
                       std::int64_t c, std::int64_t r, std::int64_t s) {
  if (p.geom.mode == ConvMode::kConvolution) {
    r = 2 - r;
    s = 2 - s;
  }
  return w[p.w.offset(k, c, r, s)];
}

// Transforms all filters into u[k][c][16].
void build_filter_transforms(const ConvProblem& p, const float* w, float* u) {
  parallel_for_each(p.w.k * p.w.c, [&](std::int64_t kc) {
    const std::int64_t k = kc / p.w.c;
    const std::int64_t c = kc % p.w.c;
    float g[9];
    for (int r = 0; r < 3; ++r) {
      for (int s = 0; s < 3; ++s) g[r * 3 + s] = filter_at(p, w, k, c, r, s);
    }
    transform_filter(g, u + kc * 16);
  });
}

std::int64_t tiles_h(const ConvProblem& p) noexcept { return (p.y.h + 1) / 2; }
std::int64_t tiles_w(const ConvProblem& p) noexcept { return (p.y.w + 1) / 2; }

// Builds the transposed-and-(maybe-)flipped filter for the BackwardData
// lowering: w'[c][k][r][s] = w[k][c][2-r][2-s] (flip for cross-correlation,
// no flip for convolution mode), and the lowered forward problem.
ConvProblem lower_backward_data(const ConvProblem& p, const float* w,
                                float* w_prime) {
  const bool flip = p.geom.mode == ConvMode::kCrossCorrelation;
  parallel_for_each(p.w.c * p.w.k, [&](std::int64_t ck) {
    const std::int64_t c = ck / p.w.k;
    const std::int64_t k = ck % p.w.k;
    for (int r = 0; r < 3; ++r) {
      for (int s = 0; s < 3; ++s) {
        const std::int64_t rr = flip ? 2 - r : r;
        const std::int64_t ss = flip ? 2 - s : s;
        w_prime[((c * p.w.k + k) * 3 + r) * 3 + s] =
            w[p.w.offset(k, c, rr, ss)];
      }
    }
  });
  ConvGeometry geom;
  geom.pad_h = 2 - p.geom.pad_h;
  geom.pad_w = 2 - p.geom.pad_w;
  geom.mode = ConvMode::kCrossCorrelation;
  return ConvProblem(p.y, FilterDesc{p.w.c, p.w.k, 3, 3}, geom);
}

}  // namespace

bool winograd_supported(const ConvProblem& p) noexcept {
  return p.w.r == 3 && p.w.s == 3 && p.is_unit_stride() && p.is_unit_dilation();
}

bool winograd_bwd_data_supported(const ConvProblem& p) noexcept {
  return winograd_supported(p) && p.geom.pad_h <= 2 && p.geom.pad_w <= 2;
}

std::int64_t winograd_tiles(const ConvProblem& p) noexcept {
  return tiles_h(p) * tiles_w(p);
}

std::size_t winograd_fwd_workspace(const ConvProblem& p) {
  const std::size_t filters = static_cast<std::size_t>(p.w.k) * p.w.c * 16;
  // Per-chunk scratch: the input-tile transform v[c][16] plus the batched
  // per-filter accumulators m[k][16] produced by one dot16_acc_batch call.
  const std::size_t scratch = ThreadPool::global().num_threads() *
                              static_cast<std::size_t>(p.w.c + p.w.k) * 16;
  return (filters + scratch) * sizeof(float);
}

void winograd_forward(const ConvProblem& p, const float* x, const float* w,
                      float* y, float alpha, float beta, void* workspace) {
  check(winograd_supported(p), Status::kNotSupported,
        "Winograd requires 3x3 window, unit stride/dilation");
  check(workspace != nullptr, Status::kBadParam, "Winograd requires workspace");
  auto* u = static_cast<float*>(workspace);
  float* scratch = u + p.w.k * p.w.c * 16;
  build_filter_transforms(p, w, u);

  const std::int64_t th = tiles_h(p), tw = tiles_w(p);
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;

  ThreadPool::global().parallel_for(
      p.x.n * th * tw,
      [&](std::int64_t begin, std::int64_t end, std::size_t chunk) {
        float* v =
            scratch + static_cast<std::int64_t>(chunk) * (p.w.c + p.w.k) * 16;
        float* m_all = v + p.w.c * 16;
        for (std::int64_t idx = begin; idx < end; ++idx) {
          const std::int64_t n = idx / (th * tw);
          const std::int64_t ti = (idx / tw) % th;
          const std::int64_t tj = idx % tw;
          const std::int64_t i0 = 2 * ti - p.geom.pad_h;
          const std::int64_t j0 = 2 * tj - p.geom.pad_w;

          for (std::int64_t c = 0; c < p.w.c; ++c) {
            float d[16];
            load_patch(x + n * image_x + c * p.x.h * p.x.w, p.x.h, p.x.w, i0,
                       j0, d);
            transform_input(d, v + c * 16);
          }
          // All k per-filter reductions for this tile in one dispatched call:
          // m_all[k][e] = sum_c u[k][c][e] * v[c][e].
          std::fill(m_all, m_all + p.w.k * 16, 0.0f);
          simd::dot16_acc_batch(u, v, p.w.c, p.w.k, m_all);
          for (std::int64_t k = 0; k < p.w.k; ++k) {
            float out[4];
            transform_output(m_all + k * 16, out);
            float* y_plane = y + n * image_y + k * p.y.h * p.y.w;
            for (int a = 0; a < 2; ++a) {
              const std::int64_t oh = 2 * ti + a;
              if (oh >= p.y.h) continue;
              for (int b = 0; b < 2; ++b) {
                const std::int64_t ow = 2 * tj + b;
                if (ow >= p.y.w) continue;
                float& dst = y_plane[oh * p.y.w + ow];
                dst = alpha * out[a * 2 + b] +
                      (beta == 0.0f ? 0.0f : beta * dst);
              }
            }
          }
        }
      });
}

std::size_t winograd_nonfused_fwd_workspace(const ConvProblem& p) {
  const std::size_t nt = static_cast<std::size_t>(p.x.n) * winograd_tiles(p);
  const std::size_t u_cells = 16 * static_cast<std::size_t>(p.w.k) * p.w.c;
  const std::size_t v_cells = 16 * static_cast<std::size_t>(p.w.c) * nt;
  const std::size_t m_cells = 16 * static_cast<std::size_t>(p.w.k) * nt;
  return (u_cells + v_cells + m_cells) * sizeof(float);
}

void winograd_nonfused_forward(const ConvProblem& p, const float* x,
                               const float* w, float* y, float alpha,
                               float beta, void* workspace) {
  check(winograd_supported(p), Status::kNotSupported,
        "Winograd requires 3x3 window, unit stride/dilation");
  check(workspace != nullptr, Status::kBadParam, "Winograd requires workspace");
  const std::int64_t th = tiles_h(p), tw = tiles_w(p);
  const std::int64_t nt = p.x.n * th * tw;
  const std::int64_t kc = p.w.k * p.w.c;

  // Layout: u_xi[xi][K][C], v_xi[xi][C][NT], m_xi[xi][K][NT].
  auto* u_xi = static_cast<float*>(workspace);
  float* v_xi = u_xi + 16 * kc;
  float* m_xi = v_xi + 16 * p.w.c * nt;

  // Filter transforms, scattered per frequency index xi.
  parallel_for_each(kc, [&](std::int64_t idx) {
    const std::int64_t k = idx / p.w.c;
    const std::int64_t c = idx % p.w.c;
    float g[9];
    for (int r = 0; r < 3; ++r) {
      for (int s = 0; s < 3; ++s) g[r * 3 + s] = filter_at(p, w, k, c, r, s);
    }
    float u[16];
    transform_filter(g, u);
    for (int e = 0; e < 16; ++e) u_xi[e * kc + k * p.w.c + c] = u[e];
  });

  // Input transforms, scattered per xi.
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  parallel_for_each(nt, [&](std::int64_t idx) {
    const std::int64_t n = idx / (th * tw);
    const std::int64_t ti = (idx / tw) % th;
    const std::int64_t tj = idx % tw;
    const std::int64_t i0 = 2 * ti - p.geom.pad_h;
    const std::int64_t j0 = 2 * tj - p.geom.pad_w;
    for (std::int64_t c = 0; c < p.w.c; ++c) {
      float d[16], v[16];
      load_patch(x + n * image_x + c * p.x.h * p.x.w, p.x.h, p.x.w, i0, j0, d);
      transform_input(d, v);
      for (int e = 0; e < 16; ++e) v_xi[(e * p.w.c + c) * nt + idx] = v[e];
    }
  });

  // 16 large GEMMs: M_xi[K][NT] = U_xi[K][C] x V_xi[C][NT].
  for (int e = 0; e < 16; ++e) {
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, p.w.k, nt, p.w.c, 1.0f,
                u_xi + e * kc, p.w.c, v_xi + e * p.w.c * nt, nt, 0.0f,
                m_xi + e * p.w.k * nt, nt);
  }

  // Inverse transforms and scatter.
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  parallel_for_each(nt, [&](std::int64_t idx) {
    const std::int64_t n = idx / (th * tw);
    const std::int64_t ti = (idx / tw) % th;
    const std::int64_t tj = idx % tw;
    for (std::int64_t k = 0; k < p.w.k; ++k) {
      float m[16];
      for (int e = 0; e < 16; ++e) m[e] = m_xi[(e * p.w.k + k) * nt + idx];
      float out[4];
      transform_output(m, out);
      float* y_plane = y + n * image_y + k * p.y.h * p.y.w;
      for (int a = 0; a < 2; ++a) {
        const std::int64_t oh = 2 * ti + a;
        if (oh >= p.y.h) continue;
        for (int b = 0; b < 2; ++b) {
          const std::int64_t ow = 2 * tj + b;
          if (ow >= p.y.w) continue;
          float& dst = y_plane[oh * p.y.w + ow];
          dst = alpha * out[a * 2 + b] + (beta == 0.0f ? 0.0f : beta * dst);
        }
      }
    }
  });
}

std::size_t winograd_bwd_data_workspace(const ConvProblem& p) {
  check(winograd_bwd_data_supported(p), Status::kNotSupported,
        "Winograd backward-data unsupported for this problem");
  ConvGeometry geom;
  geom.pad_h = 2 - p.geom.pad_h;
  geom.pad_w = 2 - p.geom.pad_w;
  const ConvProblem lowered(p.y, FilterDesc{p.w.c, p.w.k, 3, 3}, geom);
  return static_cast<std::size_t>(p.w.count()) * sizeof(float) +
         winograd_fwd_workspace(lowered);
}

void winograd_backward_data(const ConvProblem& p, const float* dy,
                            const float* w, float* dx, float alpha, float beta,
                            void* workspace) {
  check(winograd_bwd_data_supported(p), Status::kNotSupported,
        "Winograd backward-data unsupported for this problem");
  check(workspace != nullptr, Status::kBadParam, "Winograd requires workspace");
  auto* w_prime = static_cast<float*>(workspace);
  const ConvProblem lowered = lower_backward_data(p, w, w_prime);
  winograd_forward(lowered, dy, w_prime, dx, alpha, beta,
                   w_prime + p.w.count());
}

std::size_t winograd_nonfused_bwd_data_workspace(const ConvProblem& p) {
  check(winograd_bwd_data_supported(p), Status::kNotSupported,
        "Winograd backward-data unsupported for this problem");
  ConvGeometry geom;
  geom.pad_h = 2 - p.geom.pad_h;
  geom.pad_w = 2 - p.geom.pad_w;
  const ConvProblem lowered(p.y, FilterDesc{p.w.c, p.w.k, 3, 3}, geom);
  return static_cast<std::size_t>(p.w.count()) * sizeof(float) +
         winograd_nonfused_fwd_workspace(lowered);
}

void winograd_nonfused_backward_data(const ConvProblem& p, const float* dy,
                                     const float* w, float* dx, float alpha,
                                     float beta, void* workspace) {
  check(winograd_bwd_data_supported(p), Status::kNotSupported,
        "Winograd backward-data unsupported for this problem");
  check(workspace != nullptr, Status::kBadParam, "Winograd requires workspace");
  auto* w_prime = static_cast<float*>(workspace);
  const ConvProblem lowered = lower_backward_data(p, w, w_prime);
  winograd_nonfused_forward(lowered, dy, w_prime, dx, alpha, beta,
                            w_prime + p.w.count());
}

}  // namespace ucudnn::kernels
