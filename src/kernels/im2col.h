// im2col / col2im lowering used by the GEMM-based convolution algorithms.
//
// Column layout: col[(c*R*S + r*S + s) * cols + column], where `column`
// enumerates output pixels. The per-image variant uses cols = OH*OW; the
// batched variant packs the whole (micro-)batch with cols = N*OH*OW so a
// single large GEMM can process it (the explicit-GEMM algorithm).
//
// ConvMode::kConvolution (flipped-kernel) is absorbed here: the (r, s)
// indices in the column layout always refer to *filter element* indices, and
// the input position is computed from the flipped spatial offset, so GEMM
// algorithms can use the filter tensor unmodified for both modes.
#pragma once

#include <cstdint>

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

/// Number of rows of the column matrix: C * R * S.
inline std::int64_t col_rows(const ConvProblem& p) noexcept {
  return p.w.c * p.w.r * p.w.s;
}

/// Lowers one image x_image[C][H][W] to col[C*R*S][OH*OW].
void im2col(const ConvProblem& p, const float* x_image, float* col);

/// Lowers a full batch x[N][C][H][W] to col[C*R*S][N*OH*OW]
/// (column index = n*OH*OW + oh*OW + ow). Thread-parallel over images.
void im2col_batched(const ConvProblem& p, const float* x, float* col);

/// Scatters col[C*R*S][OH*OW] back into one image, accumulating into
/// x_image (caller pre-scales x_image for beta semantics).
void col2im_accumulate(const ConvProblem& p, const float* col, float* x_image);

/// As above, but the column matrix rows are `row_stride` apart — used to
/// scatter one image's slice out of a batched [C*R*S][N*OH*OW] matrix
/// (pass col = base + n*OH*OW, row_stride = N*OH*OW).
void col2im_accumulate_strided(const ConvProblem& p, const float* col,
                               std::int64_t row_stride, float* x_image);

/// Precomputes the gather table used by IMPLICIT_PRECOMP_GEMM: for each
/// (c*R*S + r*S + s, oh*OW + ow) entry, the offset of the source element
/// within one image (c*H*W + ih*W + iw), or -1 for zero padding.
void build_gather_indices(const ConvProblem& p, std::int32_t* indices);

/// Lowers one image via a precomputed gather table.
void im2col_indexed(const ConvProblem& p, const std::int32_t* indices,
                    const float* x_image, float* col);

}  // namespace ucudnn::kernels
