// FFT-based convolution algorithms.
//
// Forward and BackwardData are both expressed as a stride-1 cross-correlation
// with an (optionally flipped / transposed) filter and a possibly negative
// padding, evaluated either with one full-image FFT (FFT) or tile-by-tile
// (FFT_TILING). BackwardFilter accumulates filter gradients in the frequency
// domain across the batch.
//
// Workspace grows linearly with the (micro-)batch size — the frequency-domain
// copies of the activations dominate — which is exactly why the paper's
// micro-batching makes these algorithms usable under tight workspace limits.
//
// Restrictions (mirroring cuDNN): stride 1 and dilation 1 only; FFT_TILING
// additionally requires the kernel window to be at most 32x32.
#pragma once

#include <cstddef>

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

bool fft_supported(const ConvProblem& p) noexcept;
bool fft_tiling_supported(const ConvProblem& p) noexcept;

std::size_t fft_fwd_workspace(const ConvProblem& p);
void fft_forward(const ConvProblem& p, const float* x, const float* w,
                 float* y, float alpha, float beta, void* workspace);

std::size_t fft_bwd_data_workspace(const ConvProblem& p);
void fft_backward_data(const ConvProblem& p, const float* dy, const float* w,
                       float* dx, float alpha, float beta, void* workspace);

std::size_t fft_bwd_filter_workspace(const ConvProblem& p);
void fft_backward_filter(const ConvProblem& p, const float* x, const float* dy,
                         float* dw, float alpha, float beta, void* workspace);

std::size_t fft_tiling_fwd_workspace(const ConvProblem& p);
void fft_tiling_forward(const ConvProblem& p, const float* x, const float* w,
                        float* y, float alpha, float beta, void* workspace);

std::size_t fft_tiling_bwd_data_workspace(const ConvProblem& p);
void fft_tiling_backward_data(const ConvProblem& p, const float* dy,
                              const float* w, float* dx, float alpha,
                              float beta, void* workspace);

/// FFT plan edge (padded transform size) used by the full-image FFT
/// algorithms for this problem; exposed for tests and the cost model.
std::int64_t fft_plan_edge_h(const ConvProblem& p) noexcept;
std::int64_t fft_plan_edge_w(const ConvProblem& p) noexcept;

/// Tile edge used by FFT_TILING (padded per-tile transform size).
std::int64_t fft_tile_edge(const ConvProblem& p) noexcept;

}  // namespace ucudnn::kernels
