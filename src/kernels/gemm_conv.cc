#include "kernels/gemm_conv.h"

#include <cstdint>
#include <cstring>

#include "common/status.h"
#include "common/thread_pool.h"
#include "gemm/gemm.h"
#include "kernels/im2col.h"

namespace ucudnn::kernels {

namespace {

// Pre-scales `out` (count elements) by beta: zero, keep, or scale.
void apply_beta(float* out, std::int64_t count, float beta) {
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < count; ++i) out[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < count; ++i) out[i] *= beta;
  }
}

// Gathers dy[n][k][p] into stage[k][n*P + p] (the transposed batched layout
// a single GEMM over the whole batch needs).
void gather_dy(const ConvProblem& p, const float* dy, float* stage) {
  const std::int64_t plane = p.y.h * p.y.w;
  const std::int64_t image = p.y.c * plane;
  const std::int64_t total = p.x.n * plane;
  parallel_for_each(p.x.n, [&](std::int64_t n) {
    for (std::int64_t k = 0; k < p.y.c; ++k) {
      std::memcpy(stage + k * total + n * plane, dy + n * image + k * plane,
                  static_cast<std::size_t>(plane) * sizeof(float));
    }
  });
}

}  // namespace

std::size_t precomp_fwd_workspace(const ConvProblem& p) {
  const std::size_t cells =
      static_cast<std::size_t>(col_rows(p)) * p.y.h * p.y.w;
  return cells * sizeof(std::int32_t) + cells * sizeof(float);
}

void precomp_gemm_forward(const ConvProblem& p, const float* x, const float* w,
                          float* y, float alpha, float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "precomp_gemm_forward requires workspace");
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  auto* indices = static_cast<std::int32_t*>(workspace);
  auto* col = reinterpret_cast<float*>(indices + rows * plane);

  build_gather_indices(p, indices);
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * plane;
  const std::int64_t group_x = p.w.c * p.x.h * p.x.w;  // input slice stride
  const std::int64_t kpg = p.k_per_group();
  for (std::int64_t n = 0; n < p.x.n; ++n) {
    // Grouped convolution runs one small GEMM per group; the gather table is
    // group-relative, so only the input base pointer shifts.
    for (std::int64_t g = 0; g < p.geom.groups; ++g) {
      im2col_indexed(p, indices, x + n * image_x + g * group_x, col);
      // y_n,g[K/g][P] = alpha * W_g[K/g][CRS] x col[CRS][P] + beta * y_n,g.
      gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, kpg, plane, rows, alpha,
                  w + g * kpg * rows, rows, col, plane, beta,
                  y + n * image_y + g * kpg * plane, plane);
    }
  }
}

std::size_t gemm_fwd_workspace(const ConvProblem& p) {
  const std::size_t col_cells = static_cast<std::size_t>(col_rows(p)) *
                                p.x.n * p.y.h * p.y.w;
  const std::size_t stage_cells =
      static_cast<std::size_t>(p.w.k) * p.x.n * p.y.h * p.y.w;
  return (col_cells + stage_cells) * sizeof(float);
}

void gemm_forward(const ConvProblem& p, const float* x, const float* w,
                  float* y, float alpha, float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "gemm_forward requires workspace");
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  const std::int64_t total = p.x.n * plane;
  auto* col = static_cast<float*>(workspace);
  float* stage = col + rows * total;

  im2col_batched(p, x, col);
  // stage[K][N*P] = alpha * W[K][CRS] x col[CRS][N*P].
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kNo, p.w.k, total, rows, alpha, w,
              rows, col, total, 0.0f, stage, total);

  // Scatter back to NCHW with beta semantics.
  const std::int64_t image_y = p.y.c * plane;
  parallel_for_each(p.x.n, [&](std::int64_t n) {
    for (std::int64_t k = 0; k < p.y.c; ++k) {
      const float* src = stage + k * total + n * plane;
      float* dst = y + n * image_y + k * plane;
      if (beta == 0.0f) {
        for (std::int64_t i = 0; i < plane; ++i) dst[i] = src[i];
      } else {
        for (std::int64_t i = 0; i < plane; ++i) {
          dst[i] = src[i] + beta * dst[i];
        }
      }
    }
  });
}

std::size_t gemm_bwd_data_workspace(const ConvProblem& p) {
  const std::size_t total = static_cast<std::size_t>(p.x.n) * p.y.h * p.y.w;
  const std::size_t stage_cells = static_cast<std::size_t>(p.y.c) * total;
  const std::size_t col_cells = static_cast<std::size_t>(col_rows(p)) * total;
  return (stage_cells + col_cells) * sizeof(float);
}

void gemm_backward_data(const ConvProblem& p, const float* dy, const float* w,
                        float* dx, float alpha, float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "gemm_backward_data requires workspace");
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  const std::int64_t total = p.x.n * plane;
  auto* stage = static_cast<float*>(workspace);
  float* dcol = stage + p.y.c * total;

  gather_dy(p, dy, stage);
  // dcol[CRS][N*P] = alpha * Wᵀ[CRS][K] x stage[K][N*P].
  gemm::sgemm(gemm::Trans::kYes, gemm::Trans::kNo, rows, total, p.w.k, alpha, w,
              rows, stage, total, 0.0f, dcol, total);

  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  parallel_for_each(p.x.n, [&](std::int64_t n) {
    float* dx_n = dx + n * image_x;
    apply_beta(dx_n, image_x, beta);
    col2im_accumulate_strided(p, dcol + n * plane, total, dx_n);
  });
}

std::size_t perimage_bwd_filter_workspace(const ConvProblem& p) {
  return static_cast<std::size_t>(col_rows(p)) * p.y.h * p.y.w * sizeof(float);
}

void perimage_backward_filter(const ConvProblem& p, const float* x,
                              const float* dy, float* dw, float alpha,
                              float beta, void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "perimage_backward_filter requires workspace");
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  auto* col = static_cast<float*>(workspace);

  apply_beta(dw, p.w.count(), beta);
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * plane;
  for (std::int64_t n = 0; n < p.x.n; ++n) {
    im2col(p, x + n * image_x, col);
    // dw[K][CRS] += alpha * dy_n[K][P] x colᵀ[P][CRS].
    gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, p.w.k, rows, plane, alpha,
                dy + n * image_y, plane, col, plane, 1.0f, dw, rows);
  }
}

std::size_t gemm_bwd_filter_workspace(const ConvProblem& p) {
  const std::size_t total = static_cast<std::size_t>(p.x.n) * p.y.h * p.y.w;
  const std::size_t col_cells = static_cast<std::size_t>(col_rows(p)) * total;
  const std::size_t stage_cells = static_cast<std::size_t>(p.y.c) * total;
  return (col_cells + stage_cells) * sizeof(float);
}

void gemm_backward_filter(const ConvProblem& p, const float* x,
                          const float* dy, float* dw, float alpha, float beta,
                          void* workspace) {
  check(workspace != nullptr, Status::kBadParam,
        "gemm_backward_filter requires workspace");
  const std::int64_t rows = col_rows(p);
  const std::int64_t plane = p.y.h * p.y.w;
  const std::int64_t total = p.x.n * plane;
  auto* col = static_cast<float*>(workspace);
  float* stage = col + rows * total;

  im2col_batched(p, x, col);
  gather_dy(p, dy, stage);
  // dw[K][CRS] = alpha * stage[K][N*P] x colᵀ[N*P][CRS] + beta * dw.
  gemm::sgemm(gemm::Trans::kNo, gemm::Trans::kYes, p.w.k, rows, total, alpha,
              stage, total, col, total, beta, dw, rows);
}

}  // namespace ucudnn::kernels
