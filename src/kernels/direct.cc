#include "kernels/direct.h"

#include "common/simd.h"
#include "common/thread_pool.h"

#if defined(__x86_64__) || defined(__i386__)
#define UCUDNN_DIRECT_X86 1
#include <immintrin.h>
#endif

namespace ucudnn::kernels {

namespace {

inline std::int64_t spatial_r(const ConvProblem& p, std::int64_t r) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? r : p.w.r - 1 - r;
}
inline std::int64_t spatial_s(const ConvProblem& p, std::int64_t s) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? s : p.w.s - 1 - s;
}

// One (n, k) output plane of implicit GEMM: y_nk += alpha * sum over
// (c, r, s) of shifted input rows scaled by the filter tap. The whole loop
// nest sits inside a single dispatched function so the AVX transition and
// call overhead are paid once per plane, not once per row (the interior row
// update is a plain axpy).
void implicit_gemm_plane_scalar(const ConvProblem& p, const float* x_n,
                                const float* w, std::int64_t k,
                                std::int64_t c_base, float alpha,
                                float* y_nk) {
  for (std::int64_t c = 0; c < p.w.c; ++c) {
    const float* x_nc = x_n + (c_base + c) * p.x.h * p.x.w;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      const std::int64_t rr = spatial_r(p, r);
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        const std::int64_t ss = spatial_s(p, s);
        const float wv = alpha * w[p.w.offset(k, c, r, s)];
        if (wv == 0.0f) continue;
        const std::int64_t base = ss * p.geom.dilation_w - p.geom.pad_w;
        for (std::int64_t i = 0; i < p.y.h; ++i) {
          const std::int64_t ih =
              i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
          if (ih < 0 || ih >= p.x.h) continue;
          const float* x_row = x_nc + ih * p.x.w;
          float* y_row = y_nk + i * p.y.w;
          // Hoist the iw bounds: valid j satisfy
          // 0 <= j*stride_w - pad_w + ss*dilation_w < x.w.
          std::int64_t j0 = 0;
          while (j0 < p.y.w && j0 * p.geom.stride_w + base < 0) ++j0;
          std::int64_t j1 = p.y.w;
          while (j1 > j0 && (j1 - 1) * p.geom.stride_w + base >= p.x.w) --j1;
          if (p.geom.stride_w == 1) {
            const float* x_base = x_row + base;
            for (std::int64_t j = j0; j < j1; ++j) {
              y_row[j] += wv * x_base[j];
            }
          } else {
            for (std::int64_t j = j0; j < j1; ++j) {
              y_row[j] += wv * x_row[j * p.geom.stride_w + base];
            }
          }
        }
      }
    }
  }
}

#if defined(UCUDNN_DIRECT_X86)

// Same nest with the stride-1 interior as 8-wide FMA. Kept structurally in
// sync with implicit_gemm_plane_scalar.
__attribute__((target("avx2,fma"))) void implicit_gemm_plane_avx2(
    const ConvProblem& p, const float* x_n, const float* w, std::int64_t k,
    std::int64_t c_base, float alpha, float* y_nk) {
  for (std::int64_t c = 0; c < p.w.c; ++c) {
    const float* x_nc = x_n + (c_base + c) * p.x.h * p.x.w;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      const std::int64_t rr = spatial_r(p, r);
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        const std::int64_t ss = spatial_s(p, s);
        const float wv = alpha * w[p.w.offset(k, c, r, s)];
        if (wv == 0.0f) continue;
        const std::int64_t base = ss * p.geom.dilation_w - p.geom.pad_w;
        const __m256 vw = _mm256_set1_ps(wv);
        for (std::int64_t i = 0; i < p.y.h; ++i) {
          const std::int64_t ih =
              i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
          if (ih < 0 || ih >= p.x.h) continue;
          const float* x_row = x_nc + ih * p.x.w;
          float* y_row = y_nk + i * p.y.w;
          std::int64_t j0 = 0;
          while (j0 < p.y.w && j0 * p.geom.stride_w + base < 0) ++j0;
          std::int64_t j1 = p.y.w;
          while (j1 > j0 && (j1 - 1) * p.geom.stride_w + base >= p.x.w) --j1;
          if (p.geom.stride_w == 1) {
            const float* x_base = x_row + base;
            std::int64_t j = j0;
            for (; j + 8 <= j1; j += 8) {
              _mm256_storeu_ps(
                  y_row + j,
                  _mm256_fmadd_ps(vw, _mm256_loadu_ps(x_base + j),
                                  _mm256_loadu_ps(y_row + j)));
            }
            for (; j < j1; ++j) y_row[j] += wv * x_base[j];
          } else {
            for (std::int64_t j = j0; j < j1; ++j) {
              y_row[j] += wv * x_row[j * p.geom.stride_w + base];
            }
          }
        }
      }
    }
  }
}

#endif

inline void implicit_gemm_plane(const ConvProblem& p, const float* x_n,
                                const float* w, std::int64_t k,
                                std::int64_t c_base, float alpha,
                                float* y_nk) {
#if defined(UCUDNN_DIRECT_X86)
  if (simd::vectorized()) {
    return implicit_gemm_plane_avx2(p, x_n, w, k, c_base, alpha, y_nk);
  }
#endif
  implicit_gemm_plane_scalar(p, x_n, w, k, c_base, alpha, y_nk);
}

}  // namespace

void direct_forward(const ConvProblem& p, const float* x, const float* w,
                    float* y, float alpha, float beta) {
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  parallel_for_each(p.x.n * p.y.c, [&](std::int64_t nk) {
    const std::int64_t n = nk / p.y.c;
    const std::int64_t k = nk % p.y.c;
    // Grouped convolution: output channel k reads only its group's slice of
    // the input channels.
    const std::int64_t c_base = (k / p.k_per_group()) * p.w.c;
    const float* x_n = x + n * image_x;
    float* y_nk = y + n * image_y + k * p.y.h * p.y.w;
    for (std::int64_t i = 0; i < p.y.h; ++i) {
      for (std::int64_t j = 0; j < p.y.w; ++j) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < p.w.c; ++c) {
          for (std::int64_t r = 0; r < p.w.r; ++r) {
            const std::int64_t ih = i * p.geom.stride_h - p.geom.pad_h +
                                    spatial_r(p, r) * p.geom.dilation_h;
            if (ih < 0 || ih >= p.x.h) continue;
            for (std::int64_t s = 0; s < p.w.s; ++s) {
              const std::int64_t iw = j * p.geom.stride_w - p.geom.pad_w +
                                      spatial_s(p, s) * p.geom.dilation_w;
              if (iw < 0 || iw >= p.x.w) continue;
              acc += static_cast<double>(
                         x_n[((c_base + c) * p.x.h + ih) * p.x.w + iw]) *
                     w[p.w.offset(k, c, r, s)];
            }
          }
        }
        float& out = y_nk[i * p.y.w + j];
        out = static_cast<float>(alpha * acc) + (beta == 0.0f ? 0.0f : beta * out);
      }
    }
  });
}

void direct_backward_data(const ConvProblem& p, const float* dy,
                          const float* w, float* dx, float alpha, float beta) {
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  parallel_for_each(p.x.n * p.x.c, [&](std::int64_t nc) {
    const std::int64_t n = nc / p.x.c;
    const std::int64_t c = nc % p.x.c;
    // Grouped convolution: input channel c receives gradients only from its
    // group's output channels, through filter column c - group * w.c.
    const std::int64_t group = c / p.w.c;
    const std::int64_t cg = c % p.w.c;
    const std::int64_t k0 = group * p.k_per_group();
    const std::int64_t k1 = k0 + p.k_per_group();
    const float* dy_n = dy + n * image_y;
    float* dx_nc = dx + n * image_x + c * p.x.h * p.x.w;
    for (std::int64_t ih = 0; ih < p.x.h; ++ih) {
      for (std::int64_t iw = 0; iw < p.x.w; ++iw) {
        double acc = 0.0;
        for (std::int64_t k = k0; k < k1; ++k) {
          const float* dy_nk = dy_n + k * p.y.h * p.y.w;
          for (std::int64_t r = 0; r < p.w.r; ++r) {
            const std::int64_t num_h =
                ih + p.geom.pad_h - spatial_r(p, r) * p.geom.dilation_h;
            if (num_h < 0 || num_h % p.geom.stride_h != 0) continue;
            const std::int64_t oh = num_h / p.geom.stride_h;
            if (oh >= p.y.h) continue;
            for (std::int64_t s = 0; s < p.w.s; ++s) {
              const std::int64_t num_w =
                  iw + p.geom.pad_w - spatial_s(p, s) * p.geom.dilation_w;
              if (num_w < 0 || num_w % p.geom.stride_w != 0) continue;
              const std::int64_t ow = num_w / p.geom.stride_w;
              if (ow >= p.y.w) continue;
              acc += static_cast<double>(dy_nk[oh * p.y.w + ow]) *
                     w[p.w.offset(k, cg, r, s)];
            }
          }
        }
        float& out = dx_nc[ih * p.x.w + iw];
        out = static_cast<float>(alpha * acc) + (beta == 0.0f ? 0.0f : beta * out);
      }
    }
  });
}

void direct_backward_filter(const ConvProblem& p, const float* x,
                            const float* dy, float* dw, float alpha,
                            float beta) {
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  parallel_for_each(p.w.k * p.w.c, [&](std::int64_t kc) {
    const std::int64_t k = kc / p.w.c;
    const std::int64_t c = kc % p.w.c;
    // Grouped convolution: filter column c addresses the group's slice.
    const std::int64_t c_in = (k / p.k_per_group()) * p.w.c + c;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        double acc = 0.0;
        const std::int64_t rr = spatial_r(p, r), ss = spatial_s(p, s);
        for (std::int64_t n = 0; n < p.x.n; ++n) {
          const float* x_nc = x + n * image_x + c_in * p.x.h * p.x.w;
          const float* dy_nk = dy + n * image_y + k * p.y.h * p.y.w;
          for (std::int64_t i = 0; i < p.y.h; ++i) {
            const std::int64_t ih =
                i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
            if (ih < 0 || ih >= p.x.h) continue;
            for (std::int64_t j = 0; j < p.y.w; ++j) {
              const std::int64_t iw =
                  j * p.geom.stride_w - p.geom.pad_w + ss * p.geom.dilation_w;
              if (iw < 0 || iw >= p.x.w) continue;
              acc += static_cast<double>(x_nc[ih * p.x.w + iw]) *
                     dy_nk[i * p.y.w + j];
            }
          }
        }
        float& out = dw[p.w.offset(k, c, r, s)];
        out = static_cast<float>(alpha * acc) + (beta == 0.0f ? 0.0f : beta * out);
      }
    }
  });
}

void implicit_gemm_forward(const ConvProblem& p, const float* x,
                           const float* w, float* y, float alpha, float beta) {
  const std::int64_t image_x = p.x.c * p.x.h * p.x.w;
  const std::int64_t image_y = p.y.c * p.y.h * p.y.w;
  const std::int64_t plane_y = p.y.h * p.y.w;
  parallel_for_each(p.x.n * p.y.c, [&](std::int64_t nk) {
    const std::int64_t n = nk / p.y.c;
    const std::int64_t k = nk % p.y.c;
    const std::int64_t c_base = (k / p.k_per_group()) * p.w.c;
    const float* x_n = x + n * image_x;
    float* y_nk = y + n * image_y + k * plane_y;

    // Initialize output with beta scaling, then accumulate contributions
    // ordered (c, r, s) with the inner loop running contiguously over ow.
    if (beta == 0.0f) {
      for (std::int64_t i = 0; i < plane_y; ++i) y_nk[i] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::int64_t i = 0; i < plane_y; ++i) y_nk[i] *= beta;
    }

    implicit_gemm_plane(p, x_n, w, k, c_base, alpha, y_nk);
  });
}

}  // namespace ucudnn::kernels
