// ConvProblem: a fully-specified 2-D convolution instance (shapes + geometry)
// shared by every algorithm implementation and by the μ-cuDNN optimizer.
#pragma once

#include <cstdint>
#include <string>

#include "common/mathutil.h"
#include "tensor/tensor.h"

namespace ucudnn {

/// The three convolution-related cuDNN operations (§II of the paper).
enum class ConvKernelType { kForward, kBackwardData, kBackwardFilter };

constexpr std::string_view to_string(ConvKernelType t) noexcept {
  switch (t) {
    case ConvKernelType::kForward: return "Forward";
    case ConvKernelType::kBackwardData: return "BackwardData";
    case ConvKernelType::kBackwardFilter: return "BackwardFilter";
  }
  return "Unknown";
}

namespace kernels {

/// A concrete convolution problem. `x` is the input activation shape (its
/// `n` is the batch — or micro-batch — size), `w` the filter bank, `geom`
/// the padding/stride/dilation, and `y` the derived output shape.
struct ConvProblem {
  TensorShape x;
  FilterDesc w;
  ConvGeometry geom;
  TensorShape y;

  ConvProblem() = default;
  ConvProblem(const TensorShape& x_, const FilterDesc& w_,
              const ConvGeometry& geom_)
      : x(x_), w(w_), geom(geom_), y(geom_.output_shape(x_, w_)) {}

  std::int64_t batch() const noexcept { return x.n; }

  /// Same problem with a different (micro-)batch size.
  ConvProblem with_batch(std::int64_t micro_batch) const {
    return ConvProblem(x.with_batch(micro_batch), w, geom);
  }

  bool operator==(const ConvProblem&) const = default;

  /// Multiply-accumulate count of the mathematical convolution (used by the
  /// device performance model as the baseline work measure).
  double macs() const noexcept {
    return static_cast<double>(y.n) * static_cast<double>(y.c) *
           static_cast<double>(y.h) * static_cast<double>(y.w) *
           static_cast<double>(w.c) * static_cast<double>(w.r) *
           static_cast<double>(w.s);
  }

  bool is_grouped() const noexcept { return geom.groups > 1; }
  /// Output channels per group.
  std::int64_t k_per_group() const noexcept { return w.k / geom.groups; }

  bool is_unit_stride() const noexcept {
    return geom.stride_h == 1 && geom.stride_w == 1;
  }
  bool is_unit_dilation() const noexcept {
    return geom.dilation_h == 1 && geom.dilation_w == 1;
  }

  std::string to_string() const {
    return "x" + x.to_string() + " w" + w.to_string() + " pad(" +
           std::to_string(geom.pad_h) + "," + std::to_string(geom.pad_w) +
           ") stride(" + std::to_string(geom.stride_h) + "," +
           std::to_string(geom.stride_w) + ")" +
           (geom.groups > 1 ? " groups(" + std::to_string(geom.groups) + ")"
                            : "");
  }

  /// Stable hash over all parameters (used by the configuration cache).
  std::size_t hash() const noexcept {
    std::size_t seed = 0;
    for (std::int64_t v :
         {x.n, x.c, x.h, x.w, w.k, w.r, w.s, geom.pad_h, geom.pad_w,
          geom.stride_h, geom.stride_w, geom.dilation_h, geom.dilation_w,
          geom.groups, static_cast<std::int64_t>(geom.mode)}) {
      hash_combine(seed, static_cast<std::size_t>(v));
    }
    return seed;
  }
};

}  // namespace kernels
}  // namespace ucudnn
