// GEMM-based convolution algorithms (im2col lowering + SGEMM).
//
//  * IMPLICIT_PRECOMP_GEMM forward — precomputed gather table plus a
//    one-image column buffer; workspace is batch-INDEPENDENT.
//  * GEMM forward — whole-batch column + staging buffers, one large GEMM;
//    workspace grows LINEARLY with the (micro-)batch size. This is the
//    classic "fast but memory-hungry" algorithm micro-batching unlocks.
//  * BackwardData ALGO_1 — dcol = Wᵀ·dy then col2im; batch-linear workspace.
//  * BackwardFilter ALGO_1 — per-image im2col + accumulating GEMM;
//    batch-independent workspace.
//  * BackwardFilter ALGO_3 — whole-batch im2col + one GEMM; batch-linear.
//
// All functions follow out = alpha * op(inputs) + beta * out and require a
// caller-provided workspace of at least the advertised size.
#pragma once

#include <cstddef>

#include "kernels/conv_problem.h"

namespace ucudnn::kernels {

std::size_t precomp_fwd_workspace(const ConvProblem& p);
void precomp_gemm_forward(const ConvProblem& p, const float* x, const float* w,
                          float* y, float alpha, float beta, void* workspace);

std::size_t gemm_fwd_workspace(const ConvProblem& p);
void gemm_forward(const ConvProblem& p, const float* x, const float* w,
                  float* y, float alpha, float beta, void* workspace);

std::size_t gemm_bwd_data_workspace(const ConvProblem& p);
void gemm_backward_data(const ConvProblem& p, const float* dy, const float* w,
                        float* dx, float alpha, float beta, void* workspace);

std::size_t perimage_bwd_filter_workspace(const ConvProblem& p);
void perimage_backward_filter(const ConvProblem& p, const float* x,
                              const float* dy, float* dw, float alpha,
                              float beta, void* workspace);

std::size_t gemm_bwd_filter_workspace(const ConvProblem& p);
void gemm_backward_filter(const ConvProblem& p, const float* x,
                          const float* dy, float* dw, float alpha, float beta,
                          void* workspace);

}  // namespace ucudnn::kernels
