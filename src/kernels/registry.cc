#include "kernels/registry.h"

#include <cmath>
#include <deque>

#include "analysis/workspace_audit.h"
#include "common/status.h"
#include "kernels/direct.h"
#include "kernels/fft_conv.h"
#include "kernels/gemm_conv.h"
#include "kernels/winograd.h"

namespace ucudnn::kernels {

namespace {

// Registered test kernels, indexed by kernel type. A deque keeps elements
// (and therefore the string_views algo_name hands out) stable across
// registrations.
std::deque<TestKernel>& test_kernels(ConvKernelType type) {
  static std::deque<TestKernel> tables[3];
  return tables[static_cast<int>(type)];
}

int builtin_algo_count(ConvKernelType type) noexcept {
  switch (type) {
    case ConvKernelType::kForward: return fwd_algo::kCount;
    case ConvKernelType::kBackwardData: return bwd_data_algo::kCount;
    case ConvKernelType::kBackwardFilter: return bwd_filter_algo::kCount;
  }
  return 0;
}

// Non-null when `algo` addresses a registered test kernel.
const TestKernel* test_kernel_for(ConvKernelType type, int algo) noexcept {
  const int base = builtin_algo_count(type);
  auto& table = test_kernels(type);
  if (algo < base || algo >= base + static_cast<int>(table.size())) {
    return nullptr;
  }
  return &table[static_cast<std::size_t>(algo - base)];
}

void check_algo_range(ConvKernelType type, int algo) {
  check_param(algo >= 0 && algo < algo_count(type),
              "algorithm id out of range: " + std::to_string(algo) + " for " +
                  std::string(to_string(type)));
}

double log2d(double v) { return std::log2(std::max(2.0, v)); }

// Modeled cost of one complex 2-D FFT of `cells` points.
double fft2d_flops(double cells) { return 5.0 * cells * log2d(cells); }

// FFT algorithm cost: transforms of source/filter/output planes plus the
// frequency-domain pointwise stage (8 flops per complex MAC).
double fft_cost(double n, double cs, double co, double cells) {
  const double transforms = (n * cs + cs * co + n * co) * fft2d_flops(cells);
  const double pointwise = 8.0 * n * co * cs * cells;
  return transforms + pointwise;
}

double winograd_cost(const ConvProblem& p) {
  const double nt = static_cast<double>(p.x.n) * winograd_tiles(p);
  const double elementwise =
      2.0 * nt * static_cast<double>(p.w.k) * static_cast<double>(p.w.c) * 16.0;
  const double transforms =
      nt * (48.0 * static_cast<double>(p.w.c) + 24.0 * static_cast<double>(p.w.k)) +
      28.0 * static_cast<double>(p.w.k) * static_cast<double>(p.w.c);
  return elementwise + transforms;
}

// Baseline operand traffic: read both operands, write the output once.
double operand_traffic(ConvKernelType type, const ConvProblem& p) {
  const double x = static_cast<double>(p.x.bytes());
  const double w = static_cast<double>(p.w.bytes());
  const double y = static_cast<double>(p.y.bytes());
  switch (type) {
    case ConvKernelType::kForward: return x + w + y;
    case ConvKernelType::kBackwardData: return y + w + x;
    case ConvKernelType::kBackwardFilter: return x + y + w;
  }
  return 0.0;
}

}  // namespace

int algo_count(ConvKernelType type) noexcept {
  return builtin_algo_count(type) + static_cast<int>(test_kernels(type).size());
}

int register_test_kernel(ConvKernelType type, TestKernel kernel) {
  check_param(kernel.workspace != nullptr && kernel.run != nullptr,
              "test kernel needs workspace and run functions");
  auto& table = test_kernels(type);
  table.push_back(std::move(kernel));
  return builtin_algo_count(type) + static_cast<int>(table.size()) - 1;
}

void clear_test_kernels() noexcept {
  for (ConvKernelType type :
       {ConvKernelType::kForward, ConvKernelType::kBackwardData,
        ConvKernelType::kBackwardFilter}) {
    test_kernels(type).clear();
  }
}

std::string_view algo_name(ConvKernelType type, int algo) {
  check_algo_range(type, algo);
  if (const TestKernel* kernel = test_kernel_for(type, algo)) {
    return kernel->name;
  }
  switch (type) {
    case ConvKernelType::kForward: {
      static constexpr std::string_view kNames[] = {
          "IMPLICIT_GEMM", "IMPLICIT_PRECOMP_GEMM", "GEMM",
          "DIRECT",        "FFT",                   "FFT_TILING",
          "WINOGRAD",      "WINOGRAD_NONFUSED"};
      return kNames[algo];
    }
    case ConvKernelType::kBackwardData: {
      static constexpr std::string_view kNames[] = {
          "ALGO_0", "ALGO_1", "FFT", "FFT_TILING", "WINOGRAD",
          "WINOGRAD_NONFUSED"};
      return kNames[algo];
    }
    case ConvKernelType::kBackwardFilter: {
      static constexpr std::string_view kNames[] = {"ALGO_0", "ALGO_1", "FFT",
                                                    "ALGO_3"};
      return kNames[algo];
    }
  }
  return "UNKNOWN";
}

bool algo_supported(ConvKernelType type, int algo,
                    const ConvProblem& p) noexcept {
  if (algo < 0 || algo >= algo_count(type)) return false;
  if (test_kernel_for(type, algo) != nullptr) return true;
  // Grouped convolutions run only on the implicit/direct family (matching
  // cuDNN, where grouped support landed on the implicit algorithms first).
  if (p.is_grouped()) {
    switch (type) {
      case ConvKernelType::kForward:
        return algo == fwd_algo::kImplicitGemm ||
               algo == fwd_algo::kImplicitPrecompGemm ||
               algo == fwd_algo::kDirect;
      case ConvKernelType::kBackwardData:
        return algo == bwd_data_algo::kAlgo0;
      case ConvKernelType::kBackwardFilter:
        return algo == bwd_filter_algo::kAlgo0;
    }
    return false;
  }
  switch (type) {
    case ConvKernelType::kForward:
      switch (algo) {
        case fwd_algo::kFft: return fft_supported(p);
        case fwd_algo::kFftTiling: return fft_tiling_supported(p);
        case fwd_algo::kWinograd:
        case fwd_algo::kWinogradNonfused: return winograd_supported(p);
        default: return true;
      }
    case ConvKernelType::kBackwardData:
      switch (algo) {
        case bwd_data_algo::kFft: return fft_supported(p);
        case bwd_data_algo::kFftTiling: return fft_tiling_supported(p);
        case bwd_data_algo::kWinograd:
        case bwd_data_algo::kWinogradNonfused:
          return winograd_bwd_data_supported(p);
        default: return true;
      }
    case ConvKernelType::kBackwardFilter:
      switch (algo) {
        case bwd_filter_algo::kFft: return fft_supported(p);
        default: return true;
      }
  }
  return false;
}

std::size_t algo_workspace(ConvKernelType type, int algo,
                           const ConvProblem& p) {
  check_algo_range(type, algo);
  check(algo_supported(type, algo, p), Status::kNotSupported,
        std::string(algo_name(type, algo)) + " unsupported for " +
            p.to_string());
  if (const TestKernel* kernel = test_kernel_for(type, algo)) {
    return kernel->workspace(p);
  }
  switch (type) {
    case ConvKernelType::kForward:
      switch (algo) {
        case fwd_algo::kImplicitGemm: return 0;
        case fwd_algo::kImplicitPrecompGemm: return precomp_fwd_workspace(p);
        case fwd_algo::kGemm: return gemm_fwd_workspace(p);
        case fwd_algo::kDirect: return 0;
        case fwd_algo::kFft: return fft_fwd_workspace(p);
        case fwd_algo::kFftTiling: return fft_tiling_fwd_workspace(p);
        case fwd_algo::kWinograd: return winograd_fwd_workspace(p);
        case fwd_algo::kWinogradNonfused:
          return winograd_nonfused_fwd_workspace(p);
      }
      break;
    case ConvKernelType::kBackwardData:
      switch (algo) {
        case bwd_data_algo::kAlgo0: return 0;
        case bwd_data_algo::kAlgo1: return gemm_bwd_data_workspace(p);
        case bwd_data_algo::kFft: return fft_bwd_data_workspace(p);
        case bwd_data_algo::kFftTiling: return fft_tiling_bwd_data_workspace(p);
        case bwd_data_algo::kWinograd: return winograd_bwd_data_workspace(p);
        case bwd_data_algo::kWinogradNonfused:
          return winograd_nonfused_bwd_data_workspace(p);
      }
      break;
    case ConvKernelType::kBackwardFilter:
      switch (algo) {
        case bwd_filter_algo::kAlgo0: return 0;
        case bwd_filter_algo::kAlgo1: return perimage_bwd_filter_workspace(p);
        case bwd_filter_algo::kFft: return fft_bwd_filter_workspace(p);
        case bwd_filter_algo::kAlgo3: return gemm_bwd_filter_workspace(p);
      }
      break;
  }
  throw Error(Status::kInternalError, "unreachable algorithm dispatch");
}

double algo_flops(ConvKernelType type, int algo, const ConvProblem& p) {
  check_algo_range(type, algo);
  const double mac_flops = 2.0 * p.macs();
  switch (type) {
    case ConvKernelType::kForward:
      switch (algo) {
        case fwd_algo::kFft: {
          const double cells = static_cast<double>(fft_plan_edge_h(p)) *
                               static_cast<double>(fft_plan_edge_w(p));
          return fft_cost(static_cast<double>(p.x.n),
                          static_cast<double>(p.x.c),
                          static_cast<double>(p.w.k), cells);
        }
        case fwd_algo::kFftTiling: {
          const double edge = static_cast<double>(fft_tile_edge(p));
          const double cells = edge * edge;
          const double tile_out = std::min<double>(
              32.0, static_cast<double>(next_pow2(static_cast<std::size_t>(
                        std::max(p.y.h, p.y.w)))));
          const double tiles = std::ceil(static_cast<double>(p.y.h) / tile_out) *
                               std::ceil(static_cast<double>(p.y.w) / tile_out);
          return tiles * fft_cost(static_cast<double>(p.x.n),
                                  static_cast<double>(p.x.c),
                                  static_cast<double>(p.w.k), cells);
        }
        case fwd_algo::kWinograd:
        case fwd_algo::kWinogradNonfused: return winograd_cost(p);
        default: return mac_flops;
      }
    case ConvKernelType::kBackwardData:
      switch (algo) {
        case bwd_data_algo::kFft: {
          // Same plan as forward up to the pad shift; close enough for cost.
          const double cells = static_cast<double>(fft_plan_edge_h(p)) *
                               static_cast<double>(fft_plan_edge_w(p));
          return fft_cost(static_cast<double>(p.x.n),
                          static_cast<double>(p.w.k),
                          static_cast<double>(p.x.c), cells);
        }
        case bwd_data_algo::kFftTiling: {
          const double edge = static_cast<double>(fft_tile_edge(p));
          return fft_cost(static_cast<double>(p.x.n),
                          static_cast<double>(p.w.k),
                          static_cast<double>(p.x.c), edge * edge);
        }
        case bwd_data_algo::kWinograd:
        case bwd_data_algo::kWinogradNonfused: return winograd_cost(p);
        default: return mac_flops;
      }
    case ConvKernelType::kBackwardFilter:
      switch (algo) {
        case bwd_filter_algo::kFft: {
          const double cells = static_cast<double>(fft_plan_edge_h(p)) *
                               static_cast<double>(fft_plan_edge_w(p));
          return fft_cost(static_cast<double>(p.x.n),
                          static_cast<double>(p.x.c),
                          static_cast<double>(p.w.k), cells);
        }
        default: return mac_flops;
      }
  }
  return mac_flops;
}

double algo_traffic_bytes(ConvKernelType type, int algo,
                          const ConvProblem& p) {
  const double base = operand_traffic(type, p);
  if (!algo_supported(type, algo, p)) return base;
  // Workspace-heavy algorithms stream their staging buffers roughly twice
  // (write + read); that is their bandwidth price.
  const double ws = static_cast<double>(algo_workspace(type, algo, p));
  return base + 2.0 * ws;
}

namespace {

// The raw algorithm dispatch; `workspace` is already validated (and, under
// the workspace audit, red-zoned) by execute().
void dispatch(ConvKernelType type, int algo, const ConvProblem& p,
              const float* a, const float* b, float* out, float alpha,
              float beta, void* workspace, std::size_t workspace_bytes) {
  if (const TestKernel* kernel = test_kernel_for(type, algo)) {
    kernel->run(p, a, b, out, alpha, beta, workspace, workspace_bytes);
    return;
  }
  switch (type) {
    case ConvKernelType::kForward:
      switch (algo) {
        case fwd_algo::kImplicitGemm:
          implicit_gemm_forward(p, a, b, out, alpha, beta);
          return;
        case fwd_algo::kImplicitPrecompGemm:
          precomp_gemm_forward(p, a, b, out, alpha, beta, workspace);
          return;
        case fwd_algo::kGemm:
          gemm_forward(p, a, b, out, alpha, beta, workspace);
          return;
        case fwd_algo::kDirect:
          direct_forward(p, a, b, out, alpha, beta);
          return;
        case fwd_algo::kFft:
          fft_forward(p, a, b, out, alpha, beta, workspace);
          return;
        case fwd_algo::kFftTiling:
          fft_tiling_forward(p, a, b, out, alpha, beta, workspace);
          return;
        case fwd_algo::kWinograd:
          winograd_forward(p, a, b, out, alpha, beta, workspace);
          return;
        case fwd_algo::kWinogradNonfused:
          winograd_nonfused_forward(p, a, b, out, alpha, beta, workspace);
          return;
      }
      break;
    case ConvKernelType::kBackwardData:
      switch (algo) {
        case bwd_data_algo::kAlgo0:
          direct_backward_data(p, a, b, out, alpha, beta);
          return;
        case bwd_data_algo::kAlgo1:
          gemm_backward_data(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_data_algo::kFft:
          fft_backward_data(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_data_algo::kFftTiling:
          fft_tiling_backward_data(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_data_algo::kWinograd:
          winograd_backward_data(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_data_algo::kWinogradNonfused:
          winograd_nonfused_backward_data(p, a, b, out, alpha, beta, workspace);
          return;
      }
      break;
    case ConvKernelType::kBackwardFilter:
      switch (algo) {
        case bwd_filter_algo::kAlgo0:
          direct_backward_filter(p, a, b, out, alpha, beta);
          return;
        case bwd_filter_algo::kAlgo1:
          perimage_backward_filter(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_filter_algo::kFft:
          fft_backward_filter(p, a, b, out, alpha, beta, workspace);
          return;
        case bwd_filter_algo::kAlgo3:
          gemm_backward_filter(p, a, b, out, alpha, beta, workspace);
          return;
      }
      break;
  }
  throw Error(Status::kInternalError, "unreachable algorithm dispatch");
}

}  // namespace

void execute(ConvKernelType type, int algo, const ConvProblem& p,
             const float* a, const float* b, float* out, float alpha,
             float beta, void* workspace, std::size_t workspace_bytes) {
  check_algo_range(type, algo);
  const std::size_t required = algo_workspace(type, algo, p);
  check(workspace_bytes >= required, Status::kBadParam,
        std::string(algo_name(type, algo)) + " needs " +
            std::to_string(required) + " workspace bytes, got " +
            std::to_string(workspace_bytes));
  check(required == 0 || workspace != nullptr, Status::kBadParam,
        "null workspace for workspace-requiring algorithm");

  if (analysis::workspace_audit_enabled()) {
    // Run against a red-zoned buffer of EXACTLY the declared size, not the
    // (possibly larger) caller buffer: a kernel that touches one byte more
    // than it declared hits the trailing red-zone. Workspace is scratch by
    // contract, so the substitution is invisible to the caller.
    analysis::AuditedBuffer audited(
        required, std::string(algo_name(type, algo)) + "(" +
                      std::string(to_string(type)) + ") " + p.to_string());
    dispatch(type, algo, p, a, b, out, alpha, beta, audited.data(), required);
    audited.verify();
    analysis::record_audit(std::string(to_string(type)) + ":" +
                               std::string(algo_name(type, algo)),
                           required, audited.touched_bytes());
    return;
  }
  dispatch(type, algo, p, a, b, out, alpha, beta, workspace, workspace_bytes);
}

}  // namespace ucudnn::kernels
