#include "kernels/im2col.h"

#include "common/thread_pool.h"

namespace ucudnn::kernels {

namespace {

// Spatial kernel offset for filter element r: identity for cross-correlation,
// flipped for true convolution.
inline std::int64_t spatial_r(const ConvProblem& p, std::int64_t r) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? r : p.w.r - 1 - r;
}
inline std::int64_t spatial_s(const ConvProblem& p, std::int64_t s) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? s : p.w.s - 1 - s;
}

}  // namespace

void im2col(const ConvProblem& p, const float* x_image, float* col) {
  const std::int64_t oh = p.y.h, ow = p.y.w;
  const std::int64_t cols = oh * ow;
  for (std::int64_t c = 0; c < p.w.c; ++c) {
    const float* x_channel = x_image + c * p.x.h * p.x.w;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      const std::int64_t rr = spatial_r(p, r);
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        const std::int64_t ss = spatial_s(p, s);
        float* out = col + ((c * p.w.r + r) * p.w.s + s) * cols;
        for (std::int64_t i = 0; i < oh; ++i) {
          const std::int64_t ih = i * p.geom.stride_h - p.geom.pad_h +
                                  rr * p.geom.dilation_h;
          float* out_row = out + i * ow;
          if (ih < 0 || ih >= p.x.h) {
            for (std::int64_t j = 0; j < ow; ++j) out_row[j] = 0.0f;
            continue;
          }
          const float* x_row = x_channel + ih * p.x.w;
          for (std::int64_t j = 0; j < ow; ++j) {
            const std::int64_t iw = j * p.geom.stride_w - p.geom.pad_w +
                                    ss * p.geom.dilation_w;
            out_row[j] = (iw >= 0 && iw < p.x.w) ? x_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void im2col_batched(const ConvProblem& p, const float* x, float* col) {
  const std::int64_t image = p.x.c * p.x.h * p.x.w;
  const std::int64_t per_image_cols = p.y.h * p.y.w;
  const std::int64_t total_cols = p.x.n * per_image_cols;
  const std::int64_t rows = col_rows(p);
  parallel_for_each(p.x.n, [&](std::int64_t n) {
    // Lower image n, then spread its columns into the batched layout.
    // To avoid a temporary we lower directly with strided writes.
    const float* x_image = x + n * image;
    for (std::int64_t row = 0; row < rows; ++row) {
      const std::int64_t c = row / (p.w.r * p.w.s);
      const std::int64_t r = (row / p.w.s) % p.w.r;
      const std::int64_t s = row % p.w.s;
      const std::int64_t rr = spatial_r(p, r);
      const std::int64_t ss = spatial_s(p, s);
      const float* x_channel = x_image + c * p.x.h * p.x.w;
      float* out = col + row * total_cols + n * per_image_cols;
      for (std::int64_t i = 0; i < p.y.h; ++i) {
        const std::int64_t ih =
            i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
        float* out_row = out + i * p.y.w;
        if (ih < 0 || ih >= p.x.h) {
          for (std::int64_t j = 0; j < p.y.w; ++j) out_row[j] = 0.0f;
          continue;
        }
        const float* x_row = x_channel + ih * p.x.w;
        for (std::int64_t j = 0; j < p.y.w; ++j) {
          const std::int64_t iw =
              j * p.geom.stride_w - p.geom.pad_w + ss * p.geom.dilation_w;
          out_row[j] = (iw >= 0 && iw < p.x.w) ? x_row[iw] : 0.0f;
        }
      }
    }
  });
}

void col2im_accumulate(const ConvProblem& p, const float* col, float* x_image) {
  col2im_accumulate_strided(p, col, p.y.h * p.y.w, x_image);
}

void col2im_accumulate_strided(const ConvProblem& p, const float* col,
                               std::int64_t row_stride, float* x_image) {
  const std::int64_t oh = p.y.h, ow = p.y.w;
  const std::int64_t cols = row_stride;
  for (std::int64_t c = 0; c < p.w.c; ++c) {
    float* x_channel = x_image + c * p.x.h * p.x.w;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      const std::int64_t rr = spatial_r(p, r);
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        const std::int64_t ss = spatial_s(p, s);
        const float* in = col + ((c * p.w.r + r) * p.w.s + s) * cols;
        for (std::int64_t i = 0; i < oh; ++i) {
          const std::int64_t ih = i * p.geom.stride_h - p.geom.pad_h +
                                  rr * p.geom.dilation_h;
          if (ih < 0 || ih >= p.x.h) continue;
          const float* in_row = in + i * ow;
          float* x_row = x_channel + ih * p.x.w;
          for (std::int64_t j = 0; j < ow; ++j) {
            const std::int64_t iw = j * p.geom.stride_w - p.geom.pad_w +
                                    ss * p.geom.dilation_w;
            if (iw >= 0 && iw < p.x.w) x_row[iw] += in_row[j];
          }
        }
      }
    }
  }
}

void build_gather_indices(const ConvProblem& p, std::int32_t* indices) {
  const std::int64_t oh = p.y.h, ow = p.y.w;
  const std::int64_t cols = oh * ow;
  const std::int64_t rows = col_rows(p);
  for (std::int64_t row = 0; row < rows; ++row) {
    const std::int64_t c = row / (p.w.r * p.w.s);
    const std::int64_t r = (row / p.w.s) % p.w.r;
    const std::int64_t s = row % p.w.s;
    const std::int64_t rr = spatial_r(p, r);
    const std::int64_t ss = spatial_s(p, s);
    std::int32_t* out = indices + row * cols;
    for (std::int64_t i = 0; i < oh; ++i) {
      const std::int64_t ih =
          i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
      for (std::int64_t j = 0; j < ow; ++j) {
        const std::int64_t iw =
            j * p.geom.stride_w - p.geom.pad_w + ss * p.geom.dilation_w;
        const bool inside = ih >= 0 && ih < p.x.h && iw >= 0 && iw < p.x.w;
        out[i * ow + j] =
            inside ? static_cast<std::int32_t>((c * p.x.h + ih) * p.x.w + iw)
                   : -1;
      }
    }
  }
}

void im2col_indexed(const ConvProblem& p, const std::int32_t* indices,
                    const float* x_image, float* col) {
  const std::int64_t count = col_rows(p) * p.y.h * p.y.w;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int32_t idx = indices[i];
    col[i] = idx >= 0 ? x_image[idx] : 0.0f;
  }
}

}  // namespace ucudnn::kernels
