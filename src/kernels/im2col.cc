#include "kernels/im2col.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"
#include "common/thread_pool.h"

namespace ucudnn::kernels {

namespace {

// Spatial kernel offset for filter element r: identity for cross-correlation,
// flipped for true convolution.
inline std::int64_t spatial_r(const ConvProblem& p, std::int64_t r) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? r : p.w.r - 1 - r;
}
inline std::int64_t spatial_s(const ConvProblem& p, std::int64_t s) noexcept {
  return p.geom.mode == ConvMode::kCrossCorrelation ? s : p.w.s - 1 - s;
}

// In-bounds output column range for one lowered row: iw = j * stride + base
// stays inside [0, xw) exactly for j in [j_lo, j_hi). Hoisting the bounds out
// of the inner loop leaves a branch-free interior (memcpy when stride == 1).
struct ColRange {
  std::int64_t lo, hi;
};

inline ColRange col_range(std::int64_t ow, std::int64_t stride,
                          std::int64_t base, std::int64_t xw) noexcept {
  std::int64_t lo = base >= 0 ? 0 : (-base + stride - 1) / stride;
  lo = std::min(lo, ow);
  std::int64_t hi = xw > base ? (xw - base - 1) / stride + 1 : 0;
  hi = std::min(hi, ow);
  return {lo, std::max(lo, hi)};
}

// One output row of im2col: out_row[j] = x_row[j * stride + base] with zero
// padding outside [0, xw).
inline void lower_row(float* out_row, const float* x_row, std::int64_t ow,
                      std::int64_t stride, std::int64_t base,
                      std::int64_t xw) noexcept {
  const ColRange jr = col_range(ow, stride, base, xw);
  std::fill(out_row, out_row + jr.lo, 0.0f);
  if (stride == 1) {
    if (jr.hi > jr.lo) {
      std::memcpy(out_row + jr.lo, x_row + jr.lo + base,
                  static_cast<std::size_t>(jr.hi - jr.lo) * sizeof(float));
    }
  } else {
    for (std::int64_t j = jr.lo; j < jr.hi; ++j) {
      out_row[j] = x_row[j * stride + base];
    }
  }
  std::fill(out_row + jr.hi, out_row + ow, 0.0f);
}

// Accumulating transpose of lower_row: x_row[j * stride + base] += in_row[j].
inline void scatter_row(float* x_row, const float* in_row, std::int64_t ow,
                        std::int64_t stride, std::int64_t base,
                        std::int64_t xw) noexcept {
  const ColRange jr = col_range(ow, stride, base, xw);
  if (stride == 1) {
    simd::add(x_row + jr.lo + base, in_row + jr.lo, jr.hi - jr.lo);
  } else {
    for (std::int64_t j = jr.lo; j < jr.hi; ++j) {
      x_row[j * stride + base] += in_row[j];
    }
  }
}

// Lowers one (c, r, s) row of the column matrix for one image.
void lower_one_row(const ConvProblem& p, const float* x_image,
                   std::int64_t row, float* out) {
  const std::int64_t c = row / (p.w.r * p.w.s);
  const std::int64_t r = (row / p.w.s) % p.w.r;
  const std::int64_t s = row % p.w.s;
  const std::int64_t rr = spatial_r(p, r);
  const std::int64_t ss = spatial_s(p, s);
  const std::int64_t base_w = ss * p.geom.dilation_w - p.geom.pad_w;
  const float* x_channel = x_image + c * p.x.h * p.x.w;
  for (std::int64_t i = 0; i < p.y.h; ++i) {
    const std::int64_t ih =
        i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
    float* out_row = out + i * p.y.w;
    if (ih < 0 || ih >= p.x.h) {
      std::fill(out_row, out_row + p.y.w, 0.0f);
      continue;
    }
    lower_row(out_row, x_channel + ih * p.x.w, p.y.w, p.geom.stride_w, base_w,
              p.x.w);
  }
}

}  // namespace

void im2col(const ConvProblem& p, const float* x_image, float* col) {
  const std::int64_t cols = p.y.h * p.y.w;
  const std::int64_t rows = col_rows(p);
  // Rows write disjoint output ranges; when called from inside an outer
  // parallel region the chunks are shared with idle workers.
  parallel_for_each(rows, [&](std::int64_t row) {
    lower_one_row(p, x_image, row, col + row * cols);
  });
}

void im2col_batched(const ConvProblem& p, const float* x, float* col) {
  const std::int64_t image = p.x.c * p.x.h * p.x.w;
  const std::int64_t per_image_cols = p.y.h * p.y.w;
  const std::int64_t total_cols = p.x.n * per_image_cols;
  const std::int64_t rows = col_rows(p);
  parallel_for_each(p.x.n, [&](std::int64_t n) {
    // Lower image n directly into the batched layout with strided writes.
    const float* x_image = x + n * image;
    for (std::int64_t row = 0; row < rows; ++row) {
      lower_one_row(p, x_image, row,
                    col + row * total_cols + n * per_image_cols);
    }
  });
}

void col2im_accumulate(const ConvProblem& p, const float* col, float* x_image) {
  col2im_accumulate_strided(p, col, p.y.h * p.y.w, x_image);
}

void col2im_accumulate_strided(const ConvProblem& p, const float* col,
                               std::int64_t row_stride, float* x_image) {
  const std::int64_t cols = row_stride;
  // Parallel over channels: rows of a channel scatter into that channel's
  // plane only, so channel chunks never race.
  parallel_for_each(p.w.c, [&](std::int64_t c) {
    float* x_channel = x_image + c * p.x.h * p.x.w;
    for (std::int64_t r = 0; r < p.w.r; ++r) {
      const std::int64_t rr = spatial_r(p, r);
      for (std::int64_t s = 0; s < p.w.s; ++s) {
        const std::int64_t ss = spatial_s(p, s);
        const std::int64_t base_w = ss * p.geom.dilation_w - p.geom.pad_w;
        const float* in = col + ((c * p.w.r + r) * p.w.s + s) * cols;
        for (std::int64_t i = 0; i < p.y.h; ++i) {
          const std::int64_t ih =
              i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
          if (ih < 0 || ih >= p.x.h) continue;
          scatter_row(x_channel + ih * p.x.w, in + i * p.y.w, p.y.w,
                      p.geom.stride_w, base_w, p.x.w);
        }
      }
    }
  });
}

void build_gather_indices(const ConvProblem& p, std::int32_t* indices) {
  const std::int64_t oh = p.y.h, ow = p.y.w;
  const std::int64_t cols = oh * ow;
  const std::int64_t rows = col_rows(p);
  for (std::int64_t row = 0; row < rows; ++row) {
    const std::int64_t c = row / (p.w.r * p.w.s);
    const std::int64_t r = (row / p.w.s) % p.w.r;
    const std::int64_t s = row % p.w.s;
    const std::int64_t rr = spatial_r(p, r);
    const std::int64_t ss = spatial_s(p, s);
    std::int32_t* out = indices + row * cols;
    for (std::int64_t i = 0; i < oh; ++i) {
      const std::int64_t ih =
          i * p.geom.stride_h - p.geom.pad_h + rr * p.geom.dilation_h;
      for (std::int64_t j = 0; j < ow; ++j) {
        const std::int64_t iw =
            j * p.geom.stride_w - p.geom.pad_w + ss * p.geom.dilation_w;
        const bool inside = ih >= 0 && ih < p.x.h && iw >= 0 && iw < p.x.w;
        out[i * ow + j] =
            inside ? static_cast<std::int32_t>((c * p.x.h + ih) * p.x.w + iw)
                   : -1;
      }
    }
  }
}

void im2col_indexed(const ConvProblem& p, const std::int32_t* indices,
                    const float* x_image, float* col) {
  const std::int64_t count = col_rows(p) * p.y.h * p.y.w;
  // The precomp path calls this once per image from a serial loop; chunk the
  // flat gather so idle workers help, with a floor that keeps small layers
  // inline.
  ThreadPool::global().parallel_for(
      count,
      [&](std::int64_t begin, std::int64_t end, std::size_t) {
        for (std::int64_t i = begin; i < end; ++i) {
          const std::int32_t idx = indices[i];
          col[i] = idx >= 0 ? x_image[idx] : 0.0f;
        }
      },
      /*min_chunk=*/std::int64_t{1} << 14);
}

}  // namespace ucudnn::kernels
