#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/env.h"
#include "common/logging.h"
#include "common/mathutil.h"

namespace ucudnn {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // A manual predicate loop (not a wait(lock, pred) lambda) keeps the
      // guarded accesses inside this function where the thread-safety
      // analysis can see the held capability.
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

// Shared state of one parallel_for. Heap-allocated and owned via shared_ptr
// by the caller AND every helper task: a helper that only gets dequeued after
// the loop already finished must still be able to (cheaply) look at the
// cursor, long after the caller's stack frame is gone.
struct ThreadPool::ForState {
  ForState(const std::function<void(std::int64_t, std::int64_t, std::size_t)>&
               body_fn,
           std::int64_t total, std::int64_t chunk_size, std::int64_t chunks)
      : body(body_fn), count(total), chunk(chunk_size), num_chunks(chunks) {
    remaining.store(chunks, std::memory_order_relaxed);
  }

  // Only dereferenced after a successful cursor claim; every claim happens
  // strictly before the caller (who owns the referenced function) returns.
  const std::function<void(std::int64_t, std::int64_t, std::size_t)>& body;
  const std::int64_t count;
  const std::int64_t chunk;
  const std::int64_t num_chunks;

  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> remaining;
  Mutex done_mutex{"ThreadPool.parallel_for.done"};
  CondVar done_cv;
  Mutex error_mutex{"ThreadPool.parallel_for.error"};
  std::exception_ptr error GUARDED_BY(error_mutex);
};

void ThreadPool::run_chunks(ForState& state) {
  for (;;) {
    const std::int64_t index =
        state.cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= state.num_chunks) return;
    const std::int64_t begin = index * state.chunk;
    const std::int64_t end = std::min(state.count, begin + state.chunk);
    try {
      state.body(begin, end, static_cast<std::size_t>(index));
    } catch (...) {
      MutexLock lock(state.error_mutex);
      if (!state.error) state.error = std::current_exception();
    }
    // The decrement and the notify both happen under done_mutex so the
    // waiter cannot observe remaining == 0 between them and miss the wake.
    MutexLock lock(state.done_mutex);
    if (state.remaining.fetch_sub(1) == 1) {
      state.done_cv.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t, std::size_t)>& body,
    std::int64_t min_chunk) {
  if (count <= 0) return;
  min_chunk = std::max<std::int64_t>(1, min_chunk);
  const std::int64_t nthreads = static_cast<std::int64_t>(num_threads());
  const std::int64_t max_chunks =
      std::min<std::int64_t>(nthreads, ceil_div(count, min_chunk));
  if (max_chunks <= 1) {
    body(0, count, 0);
    return;
  }
  const std::int64_t chunk = ceil_div(count, max_chunks);
  const std::int64_t num_chunks = ceil_div(count, chunk);

  auto state = std::make_shared<ForState>(body, count, chunk, num_chunks);

  // Helpers beyond num_chunks - 1 could never claim anything: the caller
  // takes chunks too. A helper that loses every claim exits immediately.
  const std::int64_t helpers = std::min(num_chunks - 1, nthreads);
  for (std::int64_t i = 0; i < helpers; ++i) {
    submit([state] { run_chunks(*state); });
  }

  // Caller participation: claim and execute chunks alongside the workers
  // instead of blocking idle. In a nested call (body of another parallel_for
  // running on a pool worker) this also guarantees forward progress when no
  // worker is free — the caller simply runs every chunk itself.
  run_chunks(*state);

  {
    MutexLock lock(state->done_mutex);
    while (state->remaining.load() != 0) state->done_cv.wait(state->done_mutex);
  }
  MutexLock error_lock(state->error_mutex);
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t ThreadPool::num_threads_from_env() noexcept {
  const std::int64_t fallback = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::int64_t value = fallback;
  try {
    value = env_int("UCUDNN_NUM_THREADS", fallback);
  } catch (const std::exception& e) {
    UCUDNN_LOG_WARN << "UCUDNN_NUM_THREADS is not a valid integer ("
                    << e.what() << "); using " << fallback << " threads";
    value = fallback;
  }
  if (value < 1) {
    // A negative value cast straight to std::size_t would wrap to ~2^64 and
    // the constructor would try to spawn that many workers.
    UCUDNN_LOG_WARN << "UCUDNN_NUM_THREADS=" << value
                    << " is out of range; using " << fallback << " threads";
    value = fallback;
  } else if (value > kMaxThreads) {
    UCUDNN_LOG_WARN << "UCUDNN_NUM_THREADS=" << value << " clamped to "
                    << kMaxThreads;
    value = kMaxThreads;
  }
  return static_cast<std::size_t>(value);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(num_threads_from_env());
  return pool;
}

void parallel_for_each(std::int64_t count,
                       const std::function<void(std::int64_t)>& body,
                       std::int64_t min_chunk) {
  ThreadPool::global().parallel_for(
      count,
      [&body](std::int64_t begin, std::int64_t end, std::size_t) {
        for (std::int64_t i = begin; i < end; ++i) body(i);
      },
      min_chunk);
}

}  // namespace ucudnn
