#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.h"
#include "common/mathutil.h"

namespace ucudnn {

namespace {
// True on threads owned by a ThreadPool; nested parallel_for calls from a
// worker run inline to avoid exhausting the pool and deadlocking.
thread_local bool t_is_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_is_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // A manual predicate loop (not a wait(lock, pred) lambda) keeps the
      // guarded accesses inside this function where the thread-safety
      // analysis can see the held capability.
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t count,
    const std::function<void(std::int64_t, std::int64_t, std::size_t)>& body,
    std::int64_t min_chunk) {
  if (count <= 0) return;
  if (t_is_pool_worker) {
    body(0, count, 0);
    return;
  }
  min_chunk = std::max<std::int64_t>(1, min_chunk);
  const std::size_t max_chunks = std::min<std::size_t>(
      num_threads(), static_cast<std::size_t>(ceil_div(count, min_chunk)));
  if (max_chunks <= 1) {
    body(0, count, 0);
    return;
  }

  const std::int64_t chunk = ceil_div(count, static_cast<std::int64_t>(max_chunks));
  struct State {
    std::atomic<std::size_t> remaining;
    Mutex done_mutex{"ThreadPool.parallel_for.done"};
    CondVar done_cv;
    Mutex error_mutex{"ThreadPool.parallel_for.error"};
    std::exception_ptr error GUARDED_BY(error_mutex);
  } state;

  std::size_t num_chunks = 0;
  for (std::int64_t begin = 0; begin < count; begin += chunk) ++num_chunks;
  state.remaining.store(num_chunks);

  std::size_t chunk_index = 0;
  for (std::int64_t begin = 0; begin < count; begin += chunk, ++chunk_index) {
    const std::int64_t end = std::min(count, begin + chunk);
    submit([&state, &body, begin, end, chunk_index] {
      try {
        body(begin, end, chunk_index);
      } catch (...) {
        MutexLock lock(state.error_mutex);
        if (!state.error) state.error = std::current_exception();
      }
      // The decrement and the notify must both happen under done_mutex: if
      // the count dropped to zero before the lock, a spuriously woken waiter
      // could observe remaining == 0, return, and destroy the stack-local
      // State while this worker is still about to lock state.done_mutex.
      // Holding the lock means the waiter cannot re-check the predicate
      // until the worker — which touches nothing after the unlock — is done.
      MutexLock lock(state.done_mutex);
      if (state.remaining.fetch_sub(1) == 1) {
        state.done_cv.notify_one();
      }
    });
  }

  {
    MutexLock lock(state.done_mutex);
    while (state.remaining.load() != 0) state.done_cv.wait(state.done_mutex);
  }
  MutexLock error_lock(state.error_mutex);
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<std::size_t>(
      env_int("UCUDNN_NUM_THREADS",
              std::max(1u, std::thread::hardware_concurrency()))));
  return pool;
}

void parallel_for_each(std::int64_t count,
                       const std::function<void(std::int64_t)>& body,
                       std::int64_t min_chunk) {
  ThreadPool::global().parallel_for(
      count,
      [&body](std::int64_t begin, std::int64_t end, std::size_t) {
        for (std::int64_t i = begin; i < end; ++i) body(i);
      },
      min_chunk);
}

}  // namespace ucudnn
