// Deterministic fault-injection framework (see docs/robustness.md).
//
// μ-cuDNN's premise is that cuDNN fails ungracefully one byte short of its
// workspace; this reproduction must not repeat the mistake one level up.
// The FaultInjector lets tests (and soak runs) provoke the recoverable
// failure classes — device-memory exhaustion, transient kernel failures,
// corrupt/interrupted cache files — on a deterministic schedule so the
// graceful-degradation chain in src/core can be exercised and its
// "same computational semantics" guarantee asserted.
//
// Configuration comes from UCUDNN_FAULTS (or programmatically via
// configure()). The spec is a ';'-separated list of site clauses:
//
//   UCUDNN_FAULTS="alloc:every=7;kernel:p=0.02,seed=42;cache:corrupt-load"
//
// Sites: alloc (Device::allocate), kernel (mcudnn::convolution and
// find_algorithms), cache-load / cache-save (BenchmarkCache file I/O).
// The site "cache" requires one or both of the flags `corrupt-load` /
// `fail-save` and applies its parameters to the flagged sub-sites.
// Parameters per clause:
//   every=N   trigger on every Nth check (deterministic)
//   p=X       trigger with probability X in [0,1] (seeded PRNG — never
//             the wall clock, so a given seed replays exactly)
//   seed=S    PRNG seed for p (default 42)
//   after=N   skip the first N checks before arming
//   count=N   stop after N triggers (default unlimited)
// A clause with neither `every` nor `p` defaults to every=1.
//
// Counter semantics: `checks` counts how many times an armed, enabled site
// was consulted (the injection point was reached); `triggered` counts how
// many of those checks actually injected a fault. Disabled sites count
// nothing, and an unarmed injector adds only one relaxed atomic load to the
// hot paths.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"

namespace ucudnn {

enum class FaultSite : int {
  kAlloc = 0,
  kKernel = 1,
  kCacheLoad = 2,
  kCacheSave = 3,
};
inline constexpr std::size_t kFaultSiteCount = 4;

constexpr std::string_view to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kKernel: return "kernel";
    case FaultSite::kCacheLoad: return "cache-load";
    case FaultSite::kCacheSave: return "cache-save";
  }
  return "unknown";
}

/// Per-site schedule parsed from one spec clause.
struct FaultSpec {
  bool enabled = false;
  std::uint64_t every = 0;     // fire on every Nth check (0 = off)
  double probability = 0.0;    // fire with p from the seeded PRNG
  std::uint64_t after = 0;     // checks skipped before arming
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t seed = 42;
};

struct FaultSiteStats {
  std::uint64_t checks = 0;     // injection-point visits while enabled
  std::uint64_t triggered = 0;  // faults actually injected
};

/// Process-wide injector. Thread-safe; deterministic for a fixed spec and a
/// fixed sequence of per-site checks.
class FaultInjector {
 public:
  /// The singleton, configured from UCUDNN_FAULTS on first use. A malformed
  /// env spec is logged and ignored (fail-safe: it must not abort from
  /// inside an allocation path); programmatic configure() throws instead.
  static FaultInjector& instance();

  /// Replaces the whole configuration, resets all counters, and reseeds the
  /// per-site PRNGs. An empty spec disarms everything.
  /// Throws Error(kInvalidValue) on a malformed spec.
  void configure(const std::string& spec);

  /// True when any site is enabled; the single hot-path cost when idle.
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Consults `site`'s schedule; counts the check and (maybe) the trigger.
  bool should_fail(FaultSite site);

  /// Throws the site's mapped Error if should_fail(site): kAllocFailed for
  /// alloc, kExecutionFailed for kernel, kInternalError for the cache sites.
  void fail_point(FaultSite site);

  FaultSpec spec(FaultSite site) const;
  FaultSiteStats stats(FaultSite site) const;

  /// Zeroes counters and reseeds PRNGs without touching the schedules.
  void reset_counters();

 private:
  FaultInjector();

  mutable Mutex mutex_{"FaultInjector"};
  std::array<FaultSpec, kFaultSiteCount> specs_ GUARDED_BY(mutex_){};
  std::array<FaultSiteStats, kFaultSiteCount> stats_ GUARDED_BY(mutex_){};
  std::array<std::mt19937_64, kFaultSiteCount> rngs_ GUARDED_BY(mutex_){};
  std::atomic<bool> armed_{false};
};

}  // namespace ucudnn
