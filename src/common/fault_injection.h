// Deterministic fault-injection framework (see docs/robustness.md).
//
// μ-cuDNN's premise is that cuDNN fails ungracefully one byte short of its
// workspace; this reproduction must not repeat the mistake one level up.
// The FaultInjector lets tests (and soak runs) provoke the recoverable
// failure classes — device-memory exhaustion, transient kernel failures,
// corrupt/interrupted cache files, serving-layer hiccups — on a
// deterministic schedule so the graceful-degradation chain in src/core and
// the overload ladder in src/serve can be exercised and their guarantees
// asserted.
//
// Configuration comes from UCUDNN_FAULTS (or programmatically via
// configure()). The spec is a ';'-separated list of site clauses:
//
//   UCUDNN_FAULTS="alloc:every=7;kernel:p=0.02,seed=42;cache:corrupt-load"
//
// Built-in sites: alloc (Device::allocate), kernel (mcudnn::convolution and
// find_algorithms), cache-load / cache-save (BenchmarkCache file I/O).
// The site "cache" requires one or both of the flags `corrupt-load` /
// `fail-save` and applies its parameters to the flagged sub-sites.
//
// The site table is ADDITIVE: subsystems register further sites at runtime
// with register_site() (the serving layer registers serve.enqueue /
// serve.batch / serve.exec this way). Registration order and configure
// order are independent — a clause naming a not-yet-registered dotted site
// (every registered site name is namespaced like "serve.exec") is parsed,
// validated, and parked; it arms the moment the site registers. Non-dotted
// unknown names are still rejected as typos.
//
// Parameters per clause:
//   every=N   trigger on every Nth check (deterministic)
//   p=X       trigger with probability X in [0,1] (seeded PRNG — never
//             the wall clock, so a given seed replays exactly)
//   seed=S    PRNG seed for p (default 42)
//   after=N   skip the first N checks before arming
//   count=N   stop after N triggers (default unlimited)
// A clause with neither `every` nor `p` defaults to every=1.
//
// Counter semantics: `checks` counts how many times an armed, enabled site
// was consulted (the injection point was reached); `triggered` counts how
// many of those checks actually injected a fault. Disabled sites count
// nothing, and an unarmed injector adds only one relaxed atomic load to the
// hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ucudnn {

/// The built-in sites, pre-registered by the FaultInjector constructor. The
/// enumerator value doubles as the site's FaultSiteId.
enum class FaultSite : int {
  kAlloc = 0,
  kKernel = 1,
  kCacheLoad = 2,
  kCacheSave = 3,
};
inline constexpr std::size_t kBuiltinFaultSiteCount = 4;

/// Stable handle for a registered site (index into the site table).
using FaultSiteId = std::size_t;

constexpr std::string_view to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kKernel: return "kernel";
    case FaultSite::kCacheLoad: return "cache-load";
    case FaultSite::kCacheSave: return "cache-save";
  }
  return "unknown";
}

/// Per-site schedule parsed from one spec clause.
struct FaultSpec {
  bool enabled = false;
  std::uint64_t every = 0;     // fire on every Nth check (0 = off)
  double probability = 0.0;    // fire with p from the seeded PRNG
  std::uint64_t after = 0;     // checks skipped before arming
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t seed = 42;
};

struct FaultSiteStats {
  std::uint64_t checks = 0;     // injection-point visits while enabled
  std::uint64_t triggered = 0;  // faults actually injected
};

/// Process-wide injector. Thread-safe; deterministic for a fixed spec and a
/// fixed sequence of per-site checks.
class FaultInjector {
 public:
  /// The singleton, configured from UCUDNN_FAULTS on first use. A malformed
  /// env spec is logged and ignored (fail-safe: it must not abort from
  /// inside an allocation path); programmatic configure() throws instead.
  static FaultInjector& instance();

  /// Adds `name` to the site table (idempotent: re-registering returns the
  /// existing id without touching its schedule or counters). `status` is the
  /// Status thrown by fail_point() when the site fires. New sites must use a
  /// namespaced, dotted name ("serve.exec") so UCUDNN_FAULTS clauses for
  /// them can be distinguished from typos before registration; a parked
  /// clause from an earlier configure()/env parse arms immediately.
  /// Throws Error(kInvalidValue) for an un-dotted name.
  FaultSiteId register_site(const std::string& name, Status status);

  /// The id of a registered site, or nullopt.
  std::optional<FaultSiteId> find_site(const std::string& name) const;

  /// Replaces the whole configuration, resets all counters, and reseeds the
  /// per-site PRNGs. An empty spec disarms everything (including parked
  /// clauses). Throws Error(kInvalidValue) on a malformed spec.
  void configure(const std::string& spec);

  /// True when any site is enabled; the single hot-path cost when idle.
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Consults the site's schedule; counts the check and (maybe) the trigger.
  bool should_fail(FaultSiteId id);
  bool should_fail(FaultSite site) {
    return should_fail(static_cast<FaultSiteId>(site));
  }

  /// Throws the site's registered Error when should_fail(): kAllocFailed for
  /// alloc, kExecutionFailed for kernel, kInternalError for the cache sites,
  /// whatever register_site declared for dynamic sites.
  void fail_point(FaultSiteId id);
  void fail_point(FaultSite site) {
    fail_point(static_cast<FaultSiteId>(site));
  }

  FaultSpec spec(FaultSiteId id) const;
  FaultSpec spec(FaultSite site) const {
    return spec(static_cast<FaultSiteId>(site));
  }
  FaultSiteStats stats(FaultSiteId id) const;
  FaultSiteStats stats(FaultSite site) const {
    return stats(static_cast<FaultSiteId>(site));
  }

  /// Number of registered sites (built-ins + dynamic).
  std::size_t site_count() const;

  /// Zeroes counters and reseeds PRNGs without touching the schedules.
  void reset_counters();

 private:
  struct Site {
    std::string name;
    Status status = Status::kInternalError;
    FaultSpec spec;
    FaultSiteStats stats;
    std::mt19937_64 rng;
  };

  FaultInjector();

  FaultSiteId register_site_locked(const std::string& name, Status status)
      REQUIRES(mutex_);
  void refresh_armed_locked() REQUIRES(mutex_);

  mutable Mutex mutex_{"FaultInjector"};
  std::vector<Site> sites_ GUARDED_BY(mutex_);
  std::map<std::string, FaultSiteId> ids_ GUARDED_BY(mutex_);
  // Clauses parsed for dotted sites that have not registered yet; applied
  // (and removed) by register_site. configure() replaces this wholesale.
  std::map<std::string, FaultSpec> parked_ GUARDED_BY(mutex_);
  std::atomic<bool> armed_{false};
};

}  // namespace ucudnn
