#include "common/simd.h"

#include <exception>

#include "common/env.h"
#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define UCUDNN_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define UCUDNN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ucudnn::simd {

namespace {

// ------------------------------ scalar --------------------------------------

void add_scalar(float* dst, const float* src, std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void mul_acc_scalar(float* dst, const float* a, const float* b,
                    std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void dot16_acc_scalar(const float* u, const float* v, std::int64_t groups,
                      float m[16]) noexcept {
  for (std::int64_t g = 0; g < groups; ++g) {
    const float* ug = u + g * 16;
    const float* vg = v + g * 16;
    for (int e = 0; e < 16; ++e) m[e] += ug[e] * vg[e];
  }
}

void dot16_acc_batch_scalar(const float* u, const float* v,
                            std::int64_t groups, std::int64_t k,
                            float* m) noexcept {
  for (std::int64_t f = 0; f < k; ++f) {
    dot16_acc_scalar(u + f * groups * 16, v, groups, m + f * 16);
  }
}

// Explicit real arithmetic: unlike std::complex operator*, this never routes
// through __mulsc3 and vectorizes.
void cmul_acc_scalar(float* y, const float* a, const float* b,
                     std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) {
    const float ar = a[2 * i], ai = a[2 * i + 1];
    const float br = b[2 * i], bi = b[2 * i + 1];
    y[2 * i] += ar * br - ai * bi;
    y[2 * i + 1] += ar * bi + ai * br;
  }
}

void cmul_conj_acc_scalar(float* y, const float* a, const float* b,
                          std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) {
    const float ar = a[2 * i], ai = a[2 * i + 1];
    const float br = b[2 * i], bi = b[2 * i + 1];
    y[2 * i] += ar * br + ai * bi;
    y[2 * i + 1] += ai * br - ar * bi;
  }
}

void fft_butterfly_scalar(float* d0, float* d1, const float* w,
                          std::int64_t half, bool inverse) noexcept {
  const float s = inverse ? -1.0f : 1.0f;
  for (std::int64_t i = 0; i < half; ++i) {
    const float wr = w[2 * i], wi = s * w[2 * i + 1];
    const float xr = d1[2 * i], xi = d1[2 * i + 1];
    const float vr = xr * wr - xi * wi;
    const float vi = xr * wi + xi * wr;
    const float ur = d0[2 * i], ui = d0[2 * i + 1];
    d0[2 * i] = ur + vr;
    d0[2 * i + 1] = ui + vi;
    d1[2 * i] = ur - vr;
    d1[2 * i + 1] = ui - vi;
  }
}

void fft_stages_scalar(float* data, std::int64_t n, const float* w,
                       bool inverse) noexcept {
  const float* stage_w = w;
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const std::int64_t half = len / 2;
    for (std::int64_t i = 0; i < n; i += len) {
      fft_butterfly_scalar(data + 2 * i, data + 2 * (i + half), stage_w, half,
                           inverse);
    }
    stage_w += 2 * half;
  }
}

#if defined(UCUDNN_SIMD_X86)

// ------------------------------ AVX2 + FMA ----------------------------------

__attribute__((target("avx2,fma"))) void add_avx2(float* dst, const float* src,
                                                  std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2,fma"))) void mul_acc_avx2(float* dst,
                                                      const float* a,
                                                      const float* b,
                                                      std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                                 _mm256_loadu_ps(dst + i)));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

__attribute__((target("avx2,fma"))) void dot16_acc_avx2(const float* u,
                                                        const float* v,
                                                        std::int64_t groups,
                                                        float m[16]) noexcept {
  __m256 acc0 = _mm256_loadu_ps(m);
  __m256 acc1 = _mm256_loadu_ps(m + 8);
  for (std::int64_t g = 0; g < groups; ++g) {
    const float* ug = u + g * 16;
    const float* vg = v + g * 16;
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ug), _mm256_loadu_ps(vg), acc0);
    acc1 =
        _mm256_fmadd_ps(_mm256_loadu_ps(ug + 8), _mm256_loadu_ps(vg + 8), acc1);
  }
  _mm256_storeu_ps(m, acc0);
  _mm256_storeu_ps(m + 8, acc1);
}

// Two filters per pass share each v load and give the FMA units four
// independent accumulator chains.
__attribute__((target("avx2,fma"))) void dot16_acc_batch_avx2(
    const float* u, const float* v, std::int64_t groups, std::int64_t k,
    float* m) noexcept {
  std::int64_t f = 0;
  for (; f + 2 <= k; f += 2) {
    const float* u0 = u + f * groups * 16;
    const float* u1 = u0 + groups * 16;
    float* m0 = m + f * 16;
    float* m1 = m0 + 16;
    __m256 a00 = _mm256_loadu_ps(m0);
    __m256 a01 = _mm256_loadu_ps(m0 + 8);
    __m256 a10 = _mm256_loadu_ps(m1);
    __m256 a11 = _mm256_loadu_ps(m1 + 8);
    for (std::int64_t g = 0; g < groups; ++g) {
      const __m256 v0 = _mm256_loadu_ps(v + g * 16);
      const __m256 v1 = _mm256_loadu_ps(v + g * 16 + 8);
      a00 = _mm256_fmadd_ps(_mm256_loadu_ps(u0 + g * 16), v0, a00);
      a01 = _mm256_fmadd_ps(_mm256_loadu_ps(u0 + g * 16 + 8), v1, a01);
      a10 = _mm256_fmadd_ps(_mm256_loadu_ps(u1 + g * 16), v0, a10);
      a11 = _mm256_fmadd_ps(_mm256_loadu_ps(u1 + g * 16 + 8), v1, a11);
    }
    _mm256_storeu_ps(m0, a00);
    _mm256_storeu_ps(m0 + 8, a01);
    _mm256_storeu_ps(m1, a10);
    _mm256_storeu_ps(m1 + 8, a11);
  }
  for (; f < k; ++f) {
    dot16_acc_avx2(u + f * groups * 16, v, groups, m + f * 16);
  }
}

// 4 complexes per vector: with b_re/b_im lane-duplicated and a's pairs
// swapped, fmaddsub produces (ar*br - ai*bi, ar*bi + ai*br) in one step.
__attribute__((target("avx2,fma"))) void cmul_acc_avx2(float* y, const float* a,
                                                       const float* b,
                                                       std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(a + 2 * i);
    const __m256 vb = _mm256_loadu_ps(b + 2 * i);
    const __m256 br = _mm256_moveldup_ps(vb);
    const __m256 bi = _mm256_movehdup_ps(vb);
    const __m256 aswap = _mm256_permute_ps(va, 0xB1);
    const __m256 prod =
        _mm256_fmaddsub_ps(va, br, _mm256_mul_ps(aswap, bi));
    _mm256_storeu_ps(y + 2 * i,
                     _mm256_add_ps(_mm256_loadu_ps(y + 2 * i), prod));
  }
  if (i < n) cmul_acc_scalar(y + 2 * i, a + 2 * i, b + 2 * i, n - i);
}

__attribute__((target("avx2,fma"))) void cmul_conj_acc_avx2(
    float* y, const float* a, const float* b, std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(a + 2 * i);
    const __m256 vb = _mm256_loadu_ps(b + 2 * i);
    const __m256 br = _mm256_moveldup_ps(vb);
    const __m256 bi = _mm256_movehdup_ps(vb);
    const __m256 aswap = _mm256_permute_ps(va, 0xB1);
    // fmsubadd: even lanes a*b + c, odd lanes a*b - c ->
    // (ar*br + ai*bi, ai*br - ar*bi) = a * conj(b).
    const __m256 prod =
        _mm256_fmsubadd_ps(va, br, _mm256_mul_ps(aswap, bi));
    _mm256_storeu_ps(y + 2 * i,
                     _mm256_add_ps(_mm256_loadu_ps(y + 2 * i), prod));
  }
  if (i < n) cmul_conj_acc_scalar(y + 2 * i, a + 2 * i, b + 2 * i, n - i);
}

__attribute__((target("avx2,fma"))) void fft_butterfly_avx2(
    float* d0, float* d1, const float* w, std::int64_t half,
    bool inverse) noexcept {
  // Conjugating w means negating its imaginary lanes; xor with +0.0 is a
  // no-op, so one mask covers both directions without a branch in the loop.
  const __m256 conj_mask =
      inverse ? _mm256_set1_ps(-0.0f) : _mm256_set1_ps(0.0f);
  std::int64_t i = 0;
  for (; i + 4 <= half; i += 4) {
    const __m256 vw = _mm256_loadu_ps(w + 2 * i);
    const __m256 wr = _mm256_moveldup_ps(vw);
    const __m256 wi = _mm256_xor_ps(_mm256_movehdup_ps(vw), conj_mask);
    const __m256 vx = _mm256_loadu_ps(d1 + 2 * i);
    const __m256 xswap = _mm256_permute_ps(vx, 0xB1);
    const __m256 v = _mm256_fmaddsub_ps(vx, wr, _mm256_mul_ps(xswap, wi));
    const __m256 u = _mm256_loadu_ps(d0 + 2 * i);
    _mm256_storeu_ps(d0 + 2 * i, _mm256_add_ps(u, v));
    _mm256_storeu_ps(d1 + 2 * i, _mm256_sub_ps(u, v));
  }
  if (i < half) {
    fft_butterfly_scalar(d0 + 2 * i, d1 + 2 * i, w + 2 * i, half - i, inverse);
  }
}

// The whole transform runs inside one target("avx2") function: per-stage
// dispatch would pay the SSE<->AVX transition and call overhead once per
// butterfly block, which dominates for the short early stages.
__attribute__((target("avx2,fma"))) void fft_stages_avx2(
    float* data, std::int64_t n, const float* w, bool inverse) noexcept {
  const float conj_s = inverse ? -1.0f : 1.0f;
  const __m256 conj_mask =
      inverse ? _mm256_set1_ps(-0.0f) : _mm256_set1_ps(0.0f);
  const float* stage_w = w;
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const std::int64_t half = len / 2;
    if (half == 1 && n >= 4) {
      // len == 2: twiddle is 1, butterfly pairs are adjacent. Each 128-bit
      // lane holds one (u, v) pair; swap halves, add/sub, blend to (u+v, u-v).
      for (std::int64_t i = 0; i < n; i += 4) {
        const __m256 x = _mm256_loadu_ps(data + 2 * i);
        const __m256 t = _mm256_permute_ps(x, 0x4E);
        const __m256 add = _mm256_add_ps(x, t);
        // t - x puts u - v (not v - u) in the high half of each lane, where
        // the blend takes it from.
        const __m256 sub = _mm256_sub_ps(t, x);
        _mm256_storeu_ps(data + 2 * i, _mm256_blend_ps(add, sub, 0xCC));
      }
    } else if (half < 4) {
      for (std::int64_t i = 0; i < n; i += len) {
        float* d0 = data + 2 * i;
        float* d1 = data + 2 * (i + half);
        for (std::int64_t j = 0; j < half; ++j) {
          const float wr = stage_w[2 * j], wi = conj_s * stage_w[2 * j + 1];
          const float xr = d1[2 * j], xi = d1[2 * j + 1];
          const float vr = xr * wr - xi * wi;
          const float vi = xr * wi + xi * wr;
          const float ur = d0[2 * j], ui = d0[2 * j + 1];
          d0[2 * j] = ur + vr;
          d0[2 * j + 1] = ui + vi;
          d1[2 * j] = ur - vr;
          d1[2 * j + 1] = ui - vi;
        }
      }
    } else {
      // half is a multiple of 4: no scalar tail.
      for (std::int64_t i = 0; i < n; i += len) {
        float* d0 = data + 2 * i;
        float* d1 = data + 2 * (i + half);
        for (std::int64_t j = 0; j < half; j += 4) {
          const __m256 vw = _mm256_loadu_ps(stage_w + 2 * j);
          const __m256 wr = _mm256_moveldup_ps(vw);
          const __m256 wi = _mm256_xor_ps(_mm256_movehdup_ps(vw), conj_mask);
          const __m256 vx = _mm256_loadu_ps(d1 + 2 * j);
          const __m256 xswap = _mm256_permute_ps(vx, 0xB1);
          const __m256 v =
              _mm256_fmaddsub_ps(vx, wr, _mm256_mul_ps(xswap, wi));
          const __m256 u = _mm256_loadu_ps(d0 + 2 * j);
          _mm256_storeu_ps(d0 + 2 * j, _mm256_add_ps(u, v));
          _mm256_storeu_ps(d1 + 2 * j, _mm256_sub_ps(u, v));
        }
      }
    }
    stage_w += 2 * half;
  }
}

#elif defined(UCUDNN_SIMD_NEON)

// ------------------------------ NEON ----------------------------------------

void add_neon(float* dst, const float* src, std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void mul_acc_neon(float* dst, const float* a, const float* b,
                  std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vfmaq_f32(vld1q_f32(dst + i), vld1q_f32(a + i),
                                 vld1q_f32(b + i)));
  }
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void dot16_acc_neon(const float* u, const float* v, std::int64_t groups,
                    float m[16]) noexcept {
  float32x4_t acc0 = vld1q_f32(m);
  float32x4_t acc1 = vld1q_f32(m + 4);
  float32x4_t acc2 = vld1q_f32(m + 8);
  float32x4_t acc3 = vld1q_f32(m + 12);
  for (std::int64_t g = 0; g < groups; ++g) {
    const float* ug = u + g * 16;
    const float* vg = v + g * 16;
    acc0 = vfmaq_f32(acc0, vld1q_f32(ug), vld1q_f32(vg));
    acc1 = vfmaq_f32(acc1, vld1q_f32(ug + 4), vld1q_f32(vg + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(ug + 8), vld1q_f32(vg + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(ug + 12), vld1q_f32(vg + 12));
  }
  vst1q_f32(m, acc0);
  vst1q_f32(m + 4, acc1);
  vst1q_f32(m + 8, acc2);
  vst1q_f32(m + 12, acc3);
}

void dot16_acc_batch_neon(const float* u, const float* v, std::int64_t groups,
                          std::int64_t k, float* m) noexcept {
  for (std::int64_t f = 0; f < k; ++f) {
    dot16_acc_neon(u + f * groups * 16, v, groups, m + f * 16);
  }
}

void cmul_acc_neon(float* y, const float* a, const float* b,
                   std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4x2_t va = vld2q_f32(a + 2 * i);  // val[0] = re, val[1] = im
    const float32x4x2_t vb = vld2q_f32(b + 2 * i);
    float32x4x2_t vy = vld2q_f32(y + 2 * i);
    vy.val[0] = vfmaq_f32(vy.val[0], va.val[0], vb.val[0]);
    vy.val[0] = vfmsq_f32(vy.val[0], va.val[1], vb.val[1]);
    vy.val[1] = vfmaq_f32(vy.val[1], va.val[0], vb.val[1]);
    vy.val[1] = vfmaq_f32(vy.val[1], va.val[1], vb.val[0]);
    vst2q_f32(y + 2 * i, vy);
  }
  if (i < n) cmul_acc_scalar(y + 2 * i, a + 2 * i, b + 2 * i, n - i);
}

void cmul_conj_acc_neon(float* y, const float* a, const float* b,
                        std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4x2_t va = vld2q_f32(a + 2 * i);
    const float32x4x2_t vb = vld2q_f32(b + 2 * i);
    float32x4x2_t vy = vld2q_f32(y + 2 * i);
    vy.val[0] = vfmaq_f32(vy.val[0], va.val[0], vb.val[0]);
    vy.val[0] = vfmaq_f32(vy.val[0], va.val[1], vb.val[1]);
    vy.val[1] = vfmaq_f32(vy.val[1], va.val[1], vb.val[0]);
    vy.val[1] = vfmsq_f32(vy.val[1], va.val[0], vb.val[1]);
    vst2q_f32(y + 2 * i, vy);
  }
  if (i < n) cmul_conj_acc_scalar(y + 2 * i, a + 2 * i, b + 2 * i, n - i);
}

void fft_butterfly_neon(float* d0, float* d1, const float* w,
                        std::int64_t half, bool inverse) noexcept {
  std::int64_t i = 0;
  for (; i + 4 <= half; i += 4) {
    const float32x4x2_t vw = vld2q_f32(w + 2 * i);
    const float32x4_t wr = vw.val[0];
    const float32x4_t wi = inverse ? vnegq_f32(vw.val[1]) : vw.val[1];
    const float32x4x2_t vx = vld2q_f32(d1 + 2 * i);
    const float32x4_t vr =
        vfmsq_f32(vmulq_f32(vx.val[0], wr), vx.val[1], wi);
    const float32x4_t vi =
        vfmaq_f32(vmulq_f32(vx.val[0], wi), vx.val[1], wr);
    float32x4x2_t u = vld2q_f32(d0 + 2 * i);
    float32x4x2_t lo, hi;
    lo.val[0] = vaddq_f32(u.val[0], vr);
    lo.val[1] = vaddq_f32(u.val[1], vi);
    hi.val[0] = vsubq_f32(u.val[0], vr);
    hi.val[1] = vsubq_f32(u.val[1], vi);
    vst2q_f32(d0 + 2 * i, lo);
    vst2q_f32(d1 + 2 * i, hi);
  }
  if (i < half) {
    fft_butterfly_scalar(d0 + 2 * i, d1 + 2 * i, w + 2 * i, half - i, inverse);
  }
}

void fft_stages_neon(float* data, std::int64_t n, const float* w,
                     bool inverse) noexcept {
  const float* stage_w = w;
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const std::int64_t half = len / 2;
    if (half >= 4) {
      for (std::int64_t i = 0; i < n; i += len) {
        fft_butterfly_neon(data + 2 * i, data + 2 * (i + half), stage_w, half,
                           inverse);
      }
    } else {
      for (std::int64_t i = 0; i < n; i += len) {
        fft_butterfly_scalar(data + 2 * i, data + 2 * (i + half), stage_w,
                             half, inverse);
      }
    }
    stage_w += 2 * half;
  }
}

#endif

// Resolved once; UCUDNN_SIMD=0 (or any falsy value) forces the scalar path.
bool simd_enabled_by_env() noexcept {
  try {
    return env_bool("UCUDNN_SIMD", true);
  } catch (const std::exception& e) {
    UCUDNN_LOG_WARN << "UCUDNN_SIMD ignored (" << e.what()
                    << "); SIMD stays enabled";
    return true;
  }
}

bool use_vector_path() noexcept {
#if defined(UCUDNN_SIMD_X86)
  static const bool use = simd_enabled_by_env() &&
                          __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma");
#elif defined(UCUDNN_SIMD_NEON)
  static const bool use = simd_enabled_by_env();
#else
  static const bool use = false;
#endif
  return use;
}

}  // namespace

const char* active_isa() noexcept {
  if (!use_vector_path()) return "scalar";
#if defined(UCUDNN_SIMD_X86)
  return "avx2-fma";
#elif defined(UCUDNN_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool vectorized() noexcept { return use_vector_path(); }

void add(float* dst, const float* src, std::int64_t n) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return add_avx2(dst, src, n);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return add_neon(dst, src, n);
#endif
  add_scalar(dst, src, n);
}

void mul_acc(float* dst, const float* a, const float* b,
             std::int64_t n) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return mul_acc_avx2(dst, a, b, n);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return mul_acc_neon(dst, a, b, n);
#endif
  mul_acc_scalar(dst, a, b, n);
}

void dot16_acc(const float* u, const float* v, std::int64_t groups,
               float m[16]) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return dot16_acc_avx2(u, v, groups, m);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return dot16_acc_neon(u, v, groups, m);
#endif
  dot16_acc_scalar(u, v, groups, m);
}

void dot16_acc_batch(const float* u, const float* v, std::int64_t groups,
                     std::int64_t k, float* m) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return dot16_acc_batch_avx2(u, v, groups, k, m);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return dot16_acc_batch_neon(u, v, groups, k, m);
#endif
  dot16_acc_batch_scalar(u, v, groups, k, m);
}

void cmul_acc(float* y, const float* a, const float* b,
              std::int64_t n) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return cmul_acc_avx2(y, a, b, n);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return cmul_acc_neon(y, a, b, n);
#endif
  cmul_acc_scalar(y, a, b, n);
}

void cmul_conj_acc(float* y, const float* a, const float* b,
                   std::int64_t n) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return cmul_conj_acc_avx2(y, a, b, n);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return cmul_conj_acc_neon(y, a, b, n);
#endif
  cmul_conj_acc_scalar(y, a, b, n);
}

void fft_butterfly(float* d0, float* d1, const float* w, std::int64_t half,
                   bool inverse) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return fft_butterfly_avx2(d0, d1, w, half, inverse);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return fft_butterfly_neon(d0, d1, w, half, inverse);
#endif
  fft_butterfly_scalar(d0, d1, w, half, inverse);
}

void fft_stages(float* data, std::int64_t n, const float* w,
                bool inverse) noexcept {
#if defined(UCUDNN_SIMD_X86)
  if (use_vector_path()) return fft_stages_avx2(data, n, w, inverse);
#elif defined(UCUDNN_SIMD_NEON)
  if (use_vector_path()) return fft_stages_neon(data, n, w, inverse);
#endif
  fft_stages_scalar(data, n, w, inverse);
}

}  // namespace ucudnn::simd
