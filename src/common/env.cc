#include "common/env.h"

#include <cctype>
#include <cstdlib>

#include "common/status.h"

namespace ucudnn {

std::optional<std::string> env_raw(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::string env_string(const std::string& name, const std::string& fallback) {
  return env_raw(name).value_or(fallback);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(*raw, &pos);
    check(pos == raw->size(), Status::kInvalidValue,
          "trailing characters in " + name + "=" + *raw);
    return value;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error(Status::kInvalidValue, "malformed integer " + name + "=" + *raw);
  }
}

std::size_t parse_bytes(const std::string& text) {
  check(!text.empty(), Status::kInvalidValue, "empty size string");
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw Error(Status::kInvalidValue, "malformed size: " + text);
  }
  std::size_t multiplier = 1;
  if (pos < text.size()) {
    check(pos + 1 == text.size(), Status::kInvalidValue,
          "malformed size suffix: " + text);
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': multiplier = std::size_t{1} << 10; break;
      case 'M': multiplier = std::size_t{1} << 20; break;
      case 'G': multiplier = std::size_t{1} << 30; break;
      default:
        throw Error(Status::kInvalidValue, "unknown size suffix: " + text);
    }
  }
  return static_cast<std::size_t>(value) * multiplier;
}

std::size_t env_bytes(const std::string& name, std::size_t fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  return parse_bytes(*raw);
}

bool env_bool(const std::string& name, bool fallback) {
  const auto raw = env_raw(name);
  if (!raw) return fallback;
  const std::string& v = *raw;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error(Status::kInvalidValue, "malformed boolean " + name + "=" + v);
}

}  // namespace ucudnn
