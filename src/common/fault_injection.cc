#include "common/fault_injection.h"

#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace ucudnn {
namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(trim(part));
  return parts;
}

std::uint64_t parse_u64(const std::string& site, const std::string& key,
                        const std::string& value) {
  check(!value.empty() &&
            value.find_first_not_of("0123456789") == std::string::npos,
        Status::kInvalidValue,
        "UCUDNN_FAULTS: " + site + ":" + key +
            " expects a non-negative integer, got '" + value + "'");
  return std::stoull(value);
}

double parse_probability(const std::string& site, const std::string& value) {
  std::istringstream stream(value);
  double p = 0.0;
  stream >> p;
  check(!stream.fail() && stream.eof() && p >= 0.0 && p <= 1.0,
        Status::kInvalidValue,
        "UCUDNN_FAULTS: " + site + ":p expects a probability in [0, 1], got '" +
            value + "'");
  return p;
}

/// A dotted name like "serve.exec": registrable by a subsystem at runtime,
/// so a clause naming one may precede its registration.
bool is_dynamic_site_name(const std::string& name) {
  return name.find('.') != std::string::npos;
}

}  // namespace

FaultInjector::FaultInjector() {
  {
    MutexLock lock(mutex_);
    // Built-ins first, in enum order, so FaultSite casts straight to the id.
    register_site_locked("alloc", Status::kAllocFailed);
    register_site_locked("kernel", Status::kExecutionFailed);
    register_site_locked("cache-load", Status::kInternalError);
    register_site_locked("cache-save", Status::kInternalError);
  }
  const std::optional<std::string> env = env_raw("UCUDNN_FAULTS");
  if (!env || trim(*env).empty()) return;
  try {
    configure(*env);
  } catch (const Error& e) {
    // Fail safe: a typo in UCUDNN_FAULTS must not abort the process from
    // inside an allocation path; injection simply stays disarmed.
    UCUDNN_LOG_ERROR << "ignoring malformed UCUDNN_FAULTS: " << e.what();
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultSiteId FaultInjector::register_site_locked(const std::string& name,
                                                Status status) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const FaultSiteId id = sites_.size();
  Site site;
  site.name = name;
  site.status = status;
  const auto parked = parked_.find(name);
  if (parked != parked_.end()) {
    site.spec = parked->second;
    site.rng.seed(site.spec.seed);
    parked_.erase(parked);
  }
  sites_.push_back(std::move(site));
  ids_.emplace(name, id);
  return id;
}

FaultSiteId FaultInjector::register_site(const std::string& name,
                                         Status status) {
  check(is_dynamic_site_name(name), Status::kInvalidValue,
        "fault site '" + name +
            "' must be namespaced (contain a '.') to be registrable");
  bool armed_now = false;
  FaultSiteId id = 0;
  {
    MutexLock lock(mutex_);
    id = register_site_locked(name, status);
    refresh_armed_locked();
    armed_now = sites_[id].spec.enabled;
  }
  if (armed_now) {
    UCUDNN_LOG_INFO << "fault site " << name << " armed at registration";
  }
  return id;
}

std::optional<FaultSiteId> FaultInjector::find_site(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void FaultInjector::refresh_armed_locked() {
  bool any_enabled = !parked_.empty();
  for (const Site& site : sites_) {
    any_enabled = any_enabled || site.spec.enabled;
  }
  armed_.store(any_enabled, std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec) {
  // Parse into name -> spec first; nothing is applied until the whole spec
  // validates, so a failed configure never leaves the injector half-armed.
  std::map<std::string, FaultSpec> parsed_by_name;
  std::map<std::string, FaultSpec> parked;
  {
    MutexLock lock(mutex_);
    for (const std::string& clause : split(spec, ';')) {
      if (clause.empty()) continue;
      const std::size_t colon = clause.find(':');
      const std::string site = trim(clause.substr(0, colon));
      std::vector<std::string> targets;
      const bool is_cache_group = site == "cache";
      const bool known = ids_.count(site) != 0;
      if (known) {
        targets.push_back(site);
      } else {
        check(is_cache_group || is_dynamic_site_name(site),
              Status::kInvalidValue,
              "UCUDNN_FAULTS: unknown site '" + site + "' in clause '" +
                  clause +
                  "' (expected alloc, kernel, cache, cache-load, cache-save, "
                  "or a registered dotted site like serve.exec)");
        if (!is_cache_group) targets.push_back(site);  // parked until
                                                       // registration
      }

      FaultSpec parsed;
      parsed.enabled = true;
      if (colon != std::string::npos) {
        for (const std::string& param : split(clause.substr(colon + 1), ',')) {
          if (param.empty()) continue;
          const std::size_t eq = param.find('=');
          if (eq == std::string::npos) {
            // Bare flags select the cache sub-sites.
            check(is_cache_group &&
                      (param == "corrupt-load" || param == "fail-save"),
                  Status::kInvalidValue,
                  "UCUDNN_FAULTS: unknown flag '" + param + "' in clause '" +
                      clause + "'");
            targets.push_back(param == "corrupt-load" ? "cache-load"
                                                      : "cache-save");
            continue;
          }
          const std::string key = trim(param.substr(0, eq));
          const std::string value = trim(param.substr(eq + 1));
          if (key == "every") {
            parsed.every = parse_u64(site, key, value);
            check(parsed.every >= 1, Status::kInvalidValue,
                  "UCUDNN_FAULTS: " + site + ":every must be >= 1");
          } else if (key == "p") {
            parsed.probability = parse_probability(site, value);
          } else if (key == "seed") {
            parsed.seed = parse_u64(site, key, value);
          } else if (key == "after") {
            parsed.after = parse_u64(site, key, value);
          } else if (key == "count") {
            parsed.count = parse_u64(site, key, value);
          } else {
            throw Error(Status::kInvalidValue,
                        "UCUDNN_FAULTS: unknown parameter '" + key +
                            "' in clause '" + clause + "'");
          }
        }
      }
      check(!targets.empty(), Status::kInvalidValue,
            "UCUDNN_FAULTS: site 'cache' needs a corrupt-load or fail-save "
            "flag in clause '" +
                clause + "'");
      if (parsed.every == 0 && parsed.probability == 0.0) parsed.every = 1;
      for (const std::string& target : targets) {
        if (ids_.count(target) != 0) {
          parsed_by_name[target] = parsed;
        } else {
          parked[target] = parsed;
        }
      }
    }

    // Validation done; apply. Sites without a clause are disarmed, all
    // counters reset, and the parked set is replaced wholesale.
    for (Site& site : sites_) {
      const auto it = parsed_by_name.find(site.name);
      site.spec = it == parsed_by_name.end() ? FaultSpec{} : it->second;
      site.stats = FaultSiteStats{};
      site.rng.seed(site.spec.seed);
    }
    parked_ = std::move(parked);
    refresh_armed_locked();
  }
  if (armed()) {
    UCUDNN_LOG_INFO << "fault injection armed: " << trim(spec);
  }
}

bool FaultInjector::should_fail(FaultSiteId id) {
  if (!armed()) return false;
  bool fire = false;
  const char* flight_name = nullptr;
  std::uint64_t triggered = 0;
  {
    MutexLock lock(mutex_);
    check(id < sites_.size(), Status::kInvalidValue,
          "fault site id " + std::to_string(id) + " out of range");
    Site& site = sites_[id];
    if (!site.spec.enabled) return false;
    const FaultSpec& spec = site.spec;
    FaultSiteStats& stats = site.stats;
    ++stats.checks;
    if (stats.triggered >= spec.count) return false;
    if (stats.checks <= spec.after) return false;
    fire = spec.every > 0 && (stats.checks - spec.after) % spec.every == 0;
    if (!fire && spec.probability > 0.0) {
      fire = std::uniform_real_distribution<double>(0.0, 1.0)(site.rng) <
             spec.probability;
    }
    if (fire) {
      triggered = ++stats.triggered;
      if (telemetry::FlightRecorder::armed()) {
        // Interned outside the slot protocol: the ring stores name pointers,
        // and site names are dynamic strings.
        flight_name = telemetry::FlightRecorder::instance().intern(site.name);
      }
    }
  }
  if (flight_name != nullptr) {
    // Outside the injector lock: the recorder takes its own mutex for
    // auto_dump, and a fault trigger is exactly the moment the black box
    // must be preserved.
    telemetry::FlightRecorder& recorder = telemetry::FlightRecorder::instance();
    recorder.record(telemetry::FlightEventKind::kFault, flight_name,
                    telemetry::current_trace_id(),
                    static_cast<std::int64_t>(triggered), 0);
    recorder.auto_dump(flight_name);
  }
  return fire;
}

void FaultInjector::fail_point(FaultSiteId id) {
  if (!armed() || !should_fail(id)) return;
  Status status = Status::kInternalError;
  std::string name;
  {
    MutexLock lock(mutex_);
    status = sites_[id].status;
    name = sites_[id].name;
  }
  throw Error(status, "injected fault at site " + name);
}

FaultSpec FaultInjector::spec(FaultSiteId id) const {
  MutexLock lock(mutex_);
  check(id < sites_.size(), Status::kInvalidValue,
        "fault site id " + std::to_string(id) + " out of range");
  return sites_[id].spec;
}

FaultSiteStats FaultInjector::stats(FaultSiteId id) const {
  MutexLock lock(mutex_);
  check(id < sites_.size(), Status::kInvalidValue,
        "fault site id " + std::to_string(id) + " out of range");
  return sites_[id].stats;
}

std::size_t FaultInjector::site_count() const {
  MutexLock lock(mutex_);
  return sites_.size();
}

void FaultInjector::reset_counters() {
  MutexLock lock(mutex_);
  for (Site& site : sites_) {
    site.stats = FaultSiteStats{};
    site.rng.seed(site.spec.seed);
  }
}

}  // namespace ucudnn
