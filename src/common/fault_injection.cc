#include "common/fault_injection.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/status.h"

namespace ucudnn {
namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(trim(part));
  return parts;
}

std::uint64_t parse_u64(const std::string& site, const std::string& key,
                        const std::string& value) {
  check(!value.empty() &&
            value.find_first_not_of("0123456789") == std::string::npos,
        Status::kInvalidValue,
        "UCUDNN_FAULTS: " + site + ":" + key +
            " expects a non-negative integer, got '" + value + "'");
  return std::stoull(value);
}

double parse_probability(const std::string& site, const std::string& value) {
  std::istringstream stream(value);
  double p = 0.0;
  stream >> p;
  check(!stream.fail() && stream.eof() && p >= 0.0 && p <= 1.0,
        Status::kInvalidValue,
        "UCUDNN_FAULTS: " + site + ":p expects a probability in [0, 1], got '" +
            value + "'");
  return p;
}

}  // namespace

FaultInjector::FaultInjector() {
  const std::optional<std::string> env = env_raw("UCUDNN_FAULTS");
  if (!env || trim(*env).empty()) return;
  try {
    configure(*env);
  } catch (const Error& e) {
    // Fail safe: a typo in UCUDNN_FAULTS must not abort the process from
    // inside an allocation path; injection simply stays disarmed.
    UCUDNN_LOG_ERROR << "ignoring malformed UCUDNN_FAULTS: " << e.what();
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  std::array<FaultSpec, kFaultSiteCount> specs{};
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    const std::string site = trim(clause.substr(0, colon));
    std::vector<FaultSite> targets;
    const bool is_cache_group = site == "cache";
    if (site == "alloc") {
      targets.push_back(FaultSite::kAlloc);
    } else if (site == "kernel") {
      targets.push_back(FaultSite::kKernel);
    } else if (site == "cache-load") {
      targets.push_back(FaultSite::kCacheLoad);
    } else if (site == "cache-save") {
      targets.push_back(FaultSite::kCacheSave);
    } else {
      check(is_cache_group, Status::kInvalidValue,
            "UCUDNN_FAULTS: unknown site '" + site + "' in clause '" + clause +
                "' (expected alloc, kernel, cache, cache-load, or cache-save)");
    }

    FaultSpec parsed;
    parsed.enabled = true;
    if (colon != std::string::npos) {
      for (const std::string& param : split(clause.substr(colon + 1), ',')) {
        if (param.empty()) continue;
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos) {
          // Bare flags select the cache sub-sites.
          check(is_cache_group &&
                    (param == "corrupt-load" || param == "fail-save"),
                Status::kInvalidValue,
                "UCUDNN_FAULTS: unknown flag '" + param + "' in clause '" +
                    clause + "'");
          targets.push_back(param == "corrupt-load" ? FaultSite::kCacheLoad
                                                    : FaultSite::kCacheSave);
          continue;
        }
        const std::string key = trim(param.substr(0, eq));
        const std::string value = trim(param.substr(eq + 1));
        if (key == "every") {
          parsed.every = parse_u64(site, key, value);
          check(parsed.every >= 1, Status::kInvalidValue,
                "UCUDNN_FAULTS: " + site + ":every must be >= 1");
        } else if (key == "p") {
          parsed.probability = parse_probability(site, value);
        } else if (key == "seed") {
          parsed.seed = parse_u64(site, key, value);
        } else if (key == "after") {
          parsed.after = parse_u64(site, key, value);
        } else if (key == "count") {
          parsed.count = parse_u64(site, key, value);
        } else {
          throw Error(Status::kInvalidValue,
                      "UCUDNN_FAULTS: unknown parameter '" + key +
                          "' in clause '" + clause + "'");
        }
      }
    }
    check(!targets.empty(), Status::kInvalidValue,
          "UCUDNN_FAULTS: site 'cache' needs a corrupt-load or fail-save "
          "flag in clause '" +
              clause + "'");
    if (parsed.every == 0 && parsed.probability == 0.0) parsed.every = 1;
    for (const FaultSite target : targets) {
      specs[static_cast<std::size_t>(target)] = parsed;
    }
  }

  bool any_enabled = false;
  {
    MutexLock lock(mutex_);
    specs_ = specs;
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
      stats_[i] = FaultSiteStats{};
      rngs_[i].seed(specs_[i].seed);
      any_enabled = any_enabled || specs_[i].enabled;
    }
    armed_.store(any_enabled, std::memory_order_relaxed);
  }
  if (any_enabled) {
    UCUDNN_LOG_INFO << "fault injection armed: " << trim(spec);
  }
}

bool FaultInjector::should_fail(FaultSite site) {
  if (!armed()) return false;
  const auto i = static_cast<std::size_t>(site);
  MutexLock lock(mutex_);
  const FaultSpec& spec = specs_[i];
  if (!spec.enabled) return false;
  FaultSiteStats& stats = stats_[i];
  ++stats.checks;
  if (stats.triggered >= spec.count) return false;
  if (stats.checks <= spec.after) return false;
  bool fire = spec.every > 0 && (stats.checks - spec.after) % spec.every == 0;
  if (!fire && spec.probability > 0.0) {
    fire = std::uniform_real_distribution<double>(0.0, 1.0)(rngs_[i]) <
           spec.probability;
  }
  if (fire) ++stats.triggered;
  return fire;
}

void FaultInjector::fail_point(FaultSite site) {
  if (!armed() || !should_fail(site)) return;
  switch (site) {
    case FaultSite::kAlloc:
      throw Error(Status::kAllocFailed, "injected fault at site alloc");
    case FaultSite::kKernel:
      throw Error(Status::kExecutionFailed, "injected fault at site kernel");
    case FaultSite::kCacheLoad:
      throw Error(Status::kInternalError, "injected fault at site cache-load");
    case FaultSite::kCacheSave:
      throw Error(Status::kInternalError, "injected fault at site cache-save");
  }
}

FaultSpec FaultInjector::spec(FaultSite site) const {
  MutexLock lock(mutex_);
  return specs_[static_cast<std::size_t>(site)];
}

FaultSiteStats FaultInjector::stats(FaultSite site) const {
  MutexLock lock(mutex_);
  return stats_[static_cast<std::size_t>(site)];
}

void FaultInjector::reset_counters() {
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    stats_[i] = FaultSiteStats{};
    rngs_[i].seed(specs_[i].seed);
  }
}

}  // namespace ucudnn
