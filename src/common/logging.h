// Minimal leveled logger. Level is taken from UCUDNN_LOG_LEVEL
// (error|warn|info|debug) and defaults to warn.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/thread_annotations.h"

namespace ucudnn {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Process-wide logger configuration and sink.
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }

  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) <= static_cast<int>(this->level());
  }

  /// Writes one formatted line to stderr (thread-safe).
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  // Atomic: enabled() runs unlocked on every UCUDNN_LOG site while
  // set_level may race from another thread (the old plain enum raced).
  std::atomic<LogLevel> level_;
  Mutex mutex_{"Logger"};
};

namespace detail {

/// RAII line builder: streams into a buffer, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ucudnn

#define UCUDNN_LOG(level_enum)                                        \
  if (!::ucudnn::Logger::instance().enabled(level_enum)) {            \
  } else                                                              \
    ::ucudnn::detail::LogLine(level_enum)

#define UCUDNN_LOG_ERROR UCUDNN_LOG(::ucudnn::LogLevel::kError)
#define UCUDNN_LOG_WARN UCUDNN_LOG(::ucudnn::LogLevel::kWarn)
#define UCUDNN_LOG_INFO UCUDNN_LOG(::ucudnn::LogLevel::kInfo)
#define UCUDNN_LOG_DEBUG UCUDNN_LOG(::ucudnn::LogLevel::kDebug)
