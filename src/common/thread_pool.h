// Fixed-size thread pool with a blocking parallel_for. Used by the CPU
// convolution kernels and the SGEMM substrate; sized from UCUDNN_NUM_THREADS
// (default: hardware concurrency).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ucudnn {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Splits [0, count) into contiguous chunks and runs
  /// `body(begin, end, chunk_index)` on the pool, blocking until all chunks
  /// complete. Runs inline when count is small or the pool has one thread.
  /// Exceptions from `body` are rethrown (first one wins).
  void parallel_for(
      std::int64_t count,
      const std::function<void(std::int64_t, std::int64_t, std::size_t)>& body,
      std::int64_t min_chunk = 1);

  /// Process-wide shared pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only by the constructor
  Mutex mutex_{"ThreadPool"};
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over the global pool: body(index) for each i in
/// [0, count), parallelized across chunks.
void parallel_for_each(std::int64_t count,
                       const std::function<void(std::int64_t)>& body,
                       std::int64_t min_chunk = 1);

}  // namespace ucudnn
