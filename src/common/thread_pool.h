// Fixed-size thread pool with a blocking, work-sharing parallel_for. Used by
// the CPU convolution kernels and the SGEMM substrate; sized from
// UCUDNN_NUM_THREADS (default: hardware concurrency; invalid values are
// rejected with a warning instead of wrapping to a huge worker count).
//
// parallel_for chunks are claimed from a shared atomic cursor, so
//  - the calling thread executes chunks itself instead of blocking idle, and
//  - nested calls (a parallel_for issued from inside a pool worker) share
//    their chunks with any idle workers instead of collapsing to a single
//    inline chunk. The caller of a nested loop can always finish the whole
//    range alone, so nesting never deadlocks even when every worker is busy.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ucudnn {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Splits [0, count) into contiguous chunks and runs
  /// `body(begin, end, chunk_index)` until all chunks complete. Chunk indices
  /// are dense in [0, chunks) with chunks <= num_threads(), and each index
  /// executes on exactly one thread (workspace scratch indexed by
  /// chunk_index stays race-free). The calling thread participates: it claims
  /// and runs chunks alongside the workers, then waits for stragglers. Runs
  /// inline when count is small or the pool has one thread. Exceptions from
  /// `body` are rethrown (first one wins); all chunks still execute.
  void parallel_for(
      std::int64_t count,
      const std::function<void(std::int64_t, std::int64_t, std::size_t)>& body,
      std::int64_t min_chunk = 1);

  /// Process-wide shared pool.
  static ThreadPool& global();

  /// Resolves the worker count for the global pool from UCUDNN_NUM_THREADS:
  /// unset -> hardware concurrency; malformed or < 1 -> hardware concurrency
  /// with a warning; values above kMaxThreads are clamped. Never throws.
  static std::size_t num_threads_from_env() noexcept;

  /// Upper bound accepted from UCUDNN_NUM_THREADS before clamping.
  static constexpr std::int64_t kMaxThreads = 1024;

 private:
  struct ForState;

  void worker_loop();
  static void run_chunks(ForState& state);

  std::vector<std::thread> workers_;  // written only by the constructor
  Mutex mutex_{"ThreadPool"};
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over the global pool: body(index) for each i in
/// [0, count), parallelized across chunks.
void parallel_for_each(std::int64_t count,
                       const std::function<void(std::int64_t)>& body,
                       std::int64_t min_chunk = 1);

}  // namespace ucudnn
