// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace ucudnn {

/// Monotonic stopwatch; result in (fractional) milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double elapsed_us() const { return elapsed_ms() * 1e3; }
  double elapsed_s() const { return elapsed_ms() * 1e-3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ucudnn
