// Thread-safety annotations + the locking vocabulary of the whole library.
//
// Two tiers of concurrency checking share this header (docs/analysis.md):
//
//  * STATIC: portable wrappers for Clang Thread Safety Analysis attributes
//    (GUARDED_BY, REQUIRES, ACQUIRE/RELEASE, ...) plus capability-annotated
//    Mutex / MutexLock / CondVar wrappers around the std primitives. Under
//    the `tsa` CMake preset (Clang, -Wthread-safety -Werror=thread-safety)
//    every access to a GUARDED_BY member is proven to hold its mutex at
//    compile time; under GCC the attributes expand to nothing and the
//    wrappers cost exactly what the std types cost.
//
//  * RUNTIME: in builds compiling with UCUDNN_LOCK_ORDER_DETECTOR (Debug and
//    sanitizer presets; compiled out entirely otherwise), every Mutex feeds a
//    process-wide lock-order registry — a per-thread held-lock stack and a
//    global acquired-after edge graph with cycle detection at acquire time.
//    A potential-deadlock inversion (an A->B acquisition when B->A was ever
//    observed, transitively) reports both lock names and both held stacks,
//    then aborts (tests install a handler instead). Gated at runtime by
//    UCUDNN_LOCK_ORDER=1 or lockorder::set_enabled. Observed edges are
//    exported through the telemetry registry
//    (telemetry::sync_lock_order_metrics).
//
// Raw std::mutex / std::lock_guard / std::condition_variable declarations
// outside this header are rejected by tools/check_thread_safety.py (a ctest
// lint), so new code cannot bypass the analysis.
//
// Layering contract (tools/check_layering.py): this header is a leaf like
// src/telemetry — includable from every layer, itself including only system
// headers (environment gating therefore reads std::getenv directly).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>  // thread-safety: allow (wrapped below)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <mutex>  // thread-safety: allow (wrapped below)
#include <set>
#include <string>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. GCC (and Clang without the
// attribute) compile them away; the declarations they decorate are portable.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define UCUDNN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UCUDNN_THREAD_ANNOTATION
#define UCUDNN_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) UCUDNN_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY UCUDNN_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) UCUDNN_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) UCUDNN_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  UCUDNN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  UCUDNN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  UCUDNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  UCUDNN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) UCUDNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) UCUDNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  UCUDNN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) UCUDNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) UCUDNN_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  UCUDNN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ucudnn {

class Mutex;

// ---------------------------------------------------------------------------
// Runtime lock-order detector (see header comment). Everything in this
// namespace collapses to no-ops / empty results when the detector is not
// compiled in.
// ---------------------------------------------------------------------------
namespace lockorder {

#ifdef UCUDNN_LOCK_ORDER_DETECTOR
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// One observed acquired-after edge: `to` was acquired while `from` was held.
struct Edge {
  std::string from;      ///< name of the held lock
  std::string to;        ///< name of the lock acquired under it
  std::uint64_t count;   ///< how many acquisitions observed the edge
};

/// A detected potential-deadlock inversion.
struct Violation {
  std::string message;                   ///< one-line diagnosis
  std::vector<std::string> held_stack;   ///< names held at detection time
  std::vector<std::string> prior_stack;  ///< names held when the reverse
                                         ///< edge was first recorded
};

using ViolationHandler = void (*)(const Violation&);

#ifdef UCUDNN_LOCK_ORDER_DETECTOR

namespace detail {

struct HeldLock {
  const void* mutex;
  std::uint64_t id;
  const char* name;
};

/// True once this thread's held stack has been (or is being) destroyed.
/// A static singleton's Mutex can be locked from a static destructor AFTER
/// __call_tls_dtors has already destroyed the thread's TLS objects (e.g.
/// ~ThreadPool at exit); bookkeeping must be skipped then — the bool is
/// trivially destructible, so it stays readable in TLS storage forever.
inline bool& tls_stack_dead() {
  thread_local bool dead = false;
  return dead;
}

struct TlsStackGuard {
  ~TlsStackGuard() { tls_stack_dead() = true; }
};

inline std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  // Constructed after `stack`, so destroyed before it: `dead` is set before
  // the vector's heap buffer is freed.
  thread_local TlsStackGuard guard;
  return stack;
}

struct EdgeInfo {
  const char* from_name;
  const char* to_name;
  std::uint64_t count = 0;
  std::vector<std::string> first_stack;  // held names when first recorded
};

/// Process-wide edge graph. Intentionally leaked (never destroyed): Mutex
/// destructors of static singletons may run after any static registry would
/// have been torn down.
struct Registry {
  std::mutex mu;  // thread-safety: allow (the detector's own internal lock)
  std::uint64_t next_id = 1;
  std::map<const void*, std::uint64_t> ids;
  std::map<std::pair<std::uint64_t, std::uint64_t>, EdgeInfo> edges;
  std::map<std::uint64_t, std::set<std::uint64_t>> successors;
  ViolationHandler handler = nullptr;

  std::uint64_t intern(const void* mutex) {
    auto [it, inserted] = ids.emplace(mutex, next_id);
    if (inserted) ++next_id;
    return it->second;
  }

  /// Depth-first reachability over `successors` (is `target` reachable from
  /// `from`?). The graph is the set of observed acquired-after edges, so a
  /// hit means acquiring `from`'s lock while holding `target`'s reverses an
  /// established order somewhere in the process.
  bool reachable(std::uint64_t from, std::uint64_t target) const {
    std::vector<std::uint64_t> frontier{from};
    std::set<std::uint64_t> visited;
    while (!frontier.empty()) {
      const std::uint64_t node = frontier.back();
      frontier.pop_back();
      if (node == target) return true;
      if (!visited.insert(node).second) continue;
      const auto it = successors.find(node);
      if (it == successors.end()) continue;
      for (const std::uint64_t next : it->second) frontier.push_back(next);
    }
    return false;
  }
};

inline Registry& registry() {
  static Registry* r = new Registry();  // leaked, see struct comment
  return *r;
}

inline void default_violation_handler(const Violation& v) {
  std::fprintf(stderr, "[ucudnn lock-order] FATAL: %s\n", v.message.c_str());
  std::fprintf(stderr, "  held now:");
  for (const std::string& name : v.held_stack) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n  held when the reverse order was recorded:");
  for (const std::string& name : v.prior_stack) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace detail

/// Whether the detector is active: compiled in AND (programmatic override,
/// else UCUDNN_LOCK_ORDER env truthy). The env is read once per process.
inline std::atomic<int>& override_flag() {
  static std::atomic<int> flag{-1};  // -1 = defer to the environment
  return flag;
}

inline bool enabled() {
  const int forced = override_flag().load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = [] {
    // std::getenv, not common/env.h: this header is a leaf.
    const char* raw = std::getenv("UCUDNN_LOCK_ORDER");
    return raw != nullptr && raw[0] != '\0' && std::strcmp(raw, "0") != 0 &&
           std::strcmp(raw, "false") != 0 && std::strcmp(raw, "off") != 0;
  }();
  return from_env;
}

inline void set_enabled(bool on) {
  override_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Installs a handler invoked instead of report-and-abort (tests). Passing
/// nullptr restores the default.
inline void set_violation_handler(ViolationHandler handler) {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
  reg.handler = handler;
}

/// Called by Mutex just before blocking on an acquisition: records the
/// acquired-after edges from every currently-held lock, detects inversions,
/// and pushes the lock onto the calling thread's held stack. Recording
/// before the block means a true deadlock still gets diagnosed first.
inline void on_acquire(const void* mutex, const char* name) {
  if (!enabled()) return;
  if (detail::tls_stack_dead()) return;  // TLS teardown: lock works, no edges
  auto& stack = detail::held_stack();
  detail::Registry& reg = detail::registry();
  Violation violation;
  bool violated = false;
  ViolationHandler handler = nullptr;
  {
    const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
    const std::uint64_t id = reg.intern(mutex);
    for (const detail::HeldLock& held : stack) {
      if (held.id == id) continue;  // re-entrant paths are TSA's problem
      // Inversion: this thread wants held -> id, but id ->* held exists.
      if (reg.reachable(id, held.id)) {
        const auto reverse = reg.edges.find({id, held.id});
        violation.message = std::string("lock-order inversion: acquiring \"") +
                            name + "\" while holding \"" + held.name +
                            "\", but \"" + held.name +
                            "\" has been acquired while \"" + name +
                            "\" (transitively) was held";
        for (const detail::HeldLock& h : stack) {
          violation.held_stack.emplace_back(h.name);
        }
        violation.held_stack.emplace_back(name);
        if (reverse != reg.edges.end()) {
          violation.prior_stack = reverse->second.first_stack;
        }
        handler = reg.handler;
        violated = true;
        break;
      }
      detail::EdgeInfo& info = reg.edges[{held.id, id}];
      if (info.count == 0) {
        info.from_name = held.name;
        info.to_name = name;
        for (const detail::HeldLock& h : stack) {
          info.first_stack.emplace_back(h.name);
        }
        info.first_stack.emplace_back(name);
        reg.successors[held.id].insert(id);
      }
      ++info.count;
    }
    if (!violated) {
      stack.push_back(detail::HeldLock{mutex, id, name});
    }
  }
  if (violated) {
    if (handler != nullptr) {
      handler(violation);
      // A test handler that returns resumes normally; keep the stacks
      // consistent with the acquisition that is about to happen.
      const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
      stack.push_back(detail::HeldLock{mutex, reg.intern(mutex), name});
    } else {
      detail::default_violation_handler(violation);
    }
  }
}

/// Called by Mutex after releasing: drops the lock from the held stack
/// (search from the top — locks may be released out of order).
inline void on_release(const void* mutex) {
  if (!enabled()) return;
  if (detail::tls_stack_dead()) return;
  auto& stack = detail::held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mutex == mutex) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

/// Called by ~Mutex: forgets the address (heap reuse must not inherit the
/// dead lock's edges) and every edge touching it.
inline void on_destroy(const void* mutex) {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
  const auto it = reg.ids.find(mutex);
  if (it == reg.ids.end()) return;
  const std::uint64_t id = it->second;
  reg.ids.erase(it);
  for (auto edge = reg.edges.begin(); edge != reg.edges.end();) {
    if (edge->first.first == id || edge->first.second == id) {
      edge = reg.edges.erase(edge);
    } else {
      ++edge;
    }
  }
  reg.successors.erase(id);
  for (auto& [from, to_set] : reg.successors) to_set.erase(id);
}

/// Snapshot of the observed acquired-after edges.
inline std::vector<Edge> edges() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
  std::vector<Edge> out;
  out.reserve(reg.edges.size());
  for (const auto& [key, info] : reg.edges) {
    out.push_back(Edge{info.from_name, info.to_name, info.count});
  }
  return out;
}

inline std::size_t edge_count() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
  return reg.edges.size();
}

/// Clears the edge graph and id assignments (tests). Held stacks of live
/// threads are untouched — call only from quiescent points.
inline void reset() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);  // thread-safety: allow
  reg.ids.clear();
  reg.edges.clear();
  reg.successors.clear();
  if (!detail::tls_stack_dead()) detail::held_stack().clear();
}

#else  // !UCUDNN_LOCK_ORDER_DETECTOR — everything compiles away.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void set_violation_handler(ViolationHandler) {}
inline void on_acquire(const void*, const char*) {}
inline void on_release(const void*) {}
inline void on_destroy(const void*) {}
inline std::vector<Edge> edges() { return {}; }
inline std::size_t edge_count() { return 0; }
inline void reset() {}

#endif  // UCUDNN_LOCK_ORDER_DETECTOR

}  // namespace lockorder

// ---------------------------------------------------------------------------
// Capability-annotated mutex vocabulary. These are the ONLY lock types the
// library may use (tools/check_thread_safety.py enforces it).
// ---------------------------------------------------------------------------

/// std::mutex with a thread-safety capability, a diagnostic name, and (in
/// detector builds) lock-order bookkeeping.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` labels the lock in lock-order diagnostics and telemetry edges;
  /// it must outlive the Mutex (string literals only, by convention).
  explicit Mutex(const char* name = "mutex") noexcept : name_(name) {}
  ~Mutex() {
    if constexpr (lockorder::kCompiledIn) lockorder::on_destroy(this);
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    if constexpr (lockorder::kCompiledIn) lockorder::on_acquire(this, name_);
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
    if constexpr (lockorder::kCompiledIn) lockorder::on_release(this);
  }

  bool try_lock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if constexpr (lockorder::kCompiledIn) {
      // A try_lock cannot deadlock, so no edges are recorded — but the held
      // stack must know about it for edges of later blocking acquisitions.
      if (acquired) lockorder::on_acquire(this, name_);
    }
    return acquired;
  }

  const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // thread-safety: allow (the wrapped primitive)
  const char* name_;
};

/// RAII scoped lock over a Mutex (the std::lock_guard of this codebase).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable working directly on Mutex. wait() REQUIRES the mutex,
/// which keeps Clang's analysis sound without a lambda annotation: callers
/// loop `while (!pred) cv.wait(mu);` under a MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper keeps it. The lock-order
    // held stack deliberately keeps the mutex "held" across the wait: this
    // thread is blocked and can contribute no new edges meanwhile.
    std::unique_lock<std::mutex> native(  // thread-safety: allow
        mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait (the serving layer's batch window / watchdog waits). Returns
  /// false when the wait timed out without a notification. Same adopt/release
  /// dance and held-stack semantics as wait().
  bool wait_for_us(Mutex& mu, std::int64_t timeout_us) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // thread-safety: allow
        mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::microseconds(timeout_us));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // thread-safety: allow (the wrapped primitive)
};

}  // namespace ucudnn
