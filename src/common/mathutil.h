// Small integer/math helpers used across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace ucudnn {

/// ceil(a / b) for non-negative integers, b > 0.
template <typename T>
constexpr T ceil_div(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// Rounds `value` up to the next multiple of `alignment` (alignment > 0).
template <typename T>
constexpr T round_up(T value, T alignment) noexcept {
  return ceil_div(value, alignment) * alignment;
}

/// Smallest power of two >= value (value >= 1).
constexpr std::size_t next_pow2(std::size_t value) noexcept {
  std::size_t p = 1;
  while (p < value) p <<= 1;
  return p;
}

/// True if value is a power of two (value > 0).
constexpr bool is_pow2(std::size_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// floor(log2(value)) for value >= 1.
constexpr int ilog2(std::size_t value) noexcept {
  int result = 0;
  while (value > 1) {
    value >>= 1;
    ++result;
  }
  return result;
}

/// Combines a hash value into a running seed (boost::hash_combine style).
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace ucudnn
