// Runtime-dispatched SIMD primitives shared by the CPU kernel substrate
// (GEMM, FFT, Winograd, im2col). On x86-64 an AVX2+FMA path is selected at
// runtime via __builtin_cpu_supports; on AArch64 the NEON path is compiled
// in unconditionally; everywhere else (and under UCUDNN_SIMD=0) a portable
// scalar fallback with identical semantics is used. All pointers may be
// unaligned; ranges must not overlap unless stated otherwise.
#pragma once

#include <cstdint>

namespace ucudnn::simd {

/// Name of the active instruction set: "avx2-fma", "neon", or "scalar".
/// Resolved once per process (UCUDNN_SIMD=0 forces "scalar").
const char* active_isa() noexcept;

/// True when a vector path (AVX2 or NEON) is active.
bool vectorized() noexcept;

/// dst[i] += src[i] for i in [0, n).
void add(float* dst, const float* src, std::int64_t n) noexcept;

/// dst[i] += a[i] * b[i] for i in [0, n).
void mul_acc(float* dst, const float* a, const float* b,
             std::int64_t n) noexcept;

/// m[e] += sum_g u[g*16 + e] * v[g*16 + e] for e in [0, 16) — the Winograd
/// F(2x2, 3x3) per-tile channel reduction (16 strided dot products).
void dot16_acc(const float* u, const float* v, std::int64_t groups,
               float m[16]) noexcept;

/// Batched dot16_acc over k filters sharing one input-tile transform:
/// m[f*16 + e] += sum_g u[(f*groups + g)*16 + e] * v[g*16 + e] for every
/// f in [0, k). One dispatch covers the whole per-tile reduction.
void dot16_acc_batch(const float* u, const float* v, std::int64_t groups,
                     std::int64_t k, float* m) noexcept;

/// Interleaved complex (re, im pairs): y[i] += a[i] * b[i] over n complexes
/// (arrays hold 2*n floats).
void cmul_acc(float* y, const float* a, const float* b,
              std::int64_t n) noexcept;

/// Interleaved complex: y[i] += a[i] * conj(b[i]) over n complexes.
void cmul_conj_acc(float* y, const float* a, const float* b,
                   std::int64_t n) noexcept;

/// Radix-2 FFT butterfly stage over interleaved complex data: for i in
/// [0, half), v = d1[i] * w[i] (conj(w[i]) when `inverse`), then
/// d0[i], d1[i] = d0[i] + v, d0[i] - v. Arrays hold 2*half floats each.
void fft_butterfly(float* d0, float* d1, const float* w, std::int64_t half,
                   bool inverse) noexcept;

/// All radix-2 stages of an n-point FFT (n a power of two >= 2) over
/// bit-reversed interleaved complex `data` (2*n floats), using the
/// stage-concatenated forward twiddle table `w` (stage `len` contributes
/// len/2 entries starting at offset len/2 - 1; n - 1 complex entries total).
/// One dispatch per transform keeps short stages out of per-call overhead.
void fft_stages(float* data, std::int64_t n, const float* w,
                bool inverse) noexcept;

}  // namespace ucudnn::simd
