#include "common/logging.h"

#include <cstdio>

#include "common/env.h"

namespace ucudnn {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  const std::string value = env_string("UCUDNN_LOG_LEVEL", "warn");
  if (value == "error") {
    level_ = LogLevel::kError;
  } else if (value == "warn") {
    level_ = LogLevel::kWarn;
  } else if (value == "info") {
    level_ = LogLevel::kInfo;
  } else if (value == "debug") {
    level_ = LogLevel::kDebug;
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kTags[] = {"E", "W", "I", "D"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[ucudnn %s] %s\n",
               kTags[static_cast<int>(level)], message.c_str());
}

}  // namespace ucudnn
