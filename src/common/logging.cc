#include "common/logging.h"

#include <cstdio>

#include "common/env.h"

namespace ucudnn {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  const std::string value = env_string("UCUDNN_LOG_LEVEL", "warn");
  if (value == "error") {
    set_level(LogLevel::kError);
  } else if (value == "warn") {
    set_level(LogLevel::kWarn);
  } else if (value == "info") {
    set_level(LogLevel::kInfo);
  } else if (value == "debug") {
    set_level(LogLevel::kDebug);
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kTags[] = {"E", "W", "I", "D"};
  MutexLock lock(mutex_);
  std::fprintf(stderr, "[ucudnn %s] %s\n",
               kTags[static_cast<int>(level)], message.c_str());
}

}  // namespace ucudnn
