// Cache-line aligned owning float/byte buffers (RAII, move-only).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ucudnn {

inline constexpr std::size_t kBufferAlignment = 64;

/// Move-only aligned heap buffer of `T`. Contents are uninitialized unless
/// `zeroed` is requested.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count, bool zeroed = false) : count_(count) {
    if (count_ == 0) return;
    const std::size_t bytes =
        ((count_ * sizeof(T) + kBufferAlignment - 1) / kBufferAlignment) *
        kBufferAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kBufferAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    if (zeroed) {
      if constexpr (std::is_trivially_copyable_v<T>) {
        // One memset instead of an element loop; hot for large workspaces.
        std::memset(data_, 0, count_ * sizeof(T));
      } else {
        for (std::size_t i = 0; i < count_; ++i) data_[i] = T{};
      }
    }
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  /// Content size in bytes (size() * sizeof(T)), excluding alignment padding.
  std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace ucudnn
