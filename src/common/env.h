// Environment-variable helpers. μ-cuDNN is configured through UCUDNN_*
// variables (batch-size policy, workspace limits, cache database path, ...)
// exactly like the paper's implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ucudnn {

/// Raw lookup; empty optional when unset.
std::optional<std::string> env_raw(const std::string& name);

/// String with default.
std::string env_string(const std::string& name, const std::string& fallback);

/// Integer with default; throws Error(kInvalidValue) on malformed input.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Size in bytes with default. Accepts suffixes K/M/G (KiB/MiB/GiB),
/// e.g. "64M" == 64 MiB. Throws Error(kInvalidValue) on malformed input.
std::size_t env_bytes(const std::string& name, std::size_t fallback);

/// Boolean with default. Accepts 0/1/true/false/yes/no/on/off.
bool env_bool(const std::string& name, bool fallback);

/// Parses a size-with-suffix string such as "120M" or "8192".
std::size_t parse_bytes(const std::string& text);

}  // namespace ucudnn
