// Status codes and error machinery shared by the whole library.
//
// The mcudnn C-style API surfaces errors as Status values (mirroring
// cudnnStatus_t); internal C++ code throws ucudnn::Error, which carries a
// Status plus a human-readable message. The boundary functions translate.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ucudnn {

/// Result code of an mcudnn/ucudnn API call. Mirrors cudnnStatus_t.
/// [[nodiscard]] on the type: silently dropping a Status anywhere is a
/// build warning (an error under UCUDNN_WERROR) — the mcudnn API boundary
/// is exactly where ignored errors turn into the paper's silent-fallback
/// class of bug. Use tools/check_status_discipline.py to catch the
/// patterns the compiler cannot.
enum class [[nodiscard]] Status {
  kSuccess = 0,
  kNotInitialized,
  kAllocFailed,
  kBadParam,
  kInternalError,
  kInvalidValue,
  kArchMismatch,
  kMappingError,
  kExecutionFailed,
  kNotSupported,
  // Serving-layer terminal statuses (src/serve, docs/serving.md). Every
  // request submitted to the serving front-end resolves to kSuccess, an
  // execution error above, or exactly one of these three.
  kDeadlineExceeded,  ///< deadline passed before or during service
  kRejected,          ///< admission control refused (queue full / overload)
  kShuttingDown,      ///< server draining; queued request failed, not run
};

/// Human-readable name of a Status, e.g. "UCUDNN_STATUS_BAD_PARAM".
[[nodiscard]] constexpr std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kSuccess: return "UCUDNN_STATUS_SUCCESS";
    case Status::kNotInitialized: return "UCUDNN_STATUS_NOT_INITIALIZED";
    case Status::kAllocFailed: return "UCUDNN_STATUS_ALLOC_FAILED";
    case Status::kBadParam: return "UCUDNN_STATUS_BAD_PARAM";
    case Status::kInternalError: return "UCUDNN_STATUS_INTERNAL_ERROR";
    case Status::kInvalidValue: return "UCUDNN_STATUS_INVALID_VALUE";
    case Status::kArchMismatch: return "UCUDNN_STATUS_ARCH_MISMATCH";
    case Status::kMappingError: return "UCUDNN_STATUS_MAPPING_ERROR";
    case Status::kExecutionFailed: return "UCUDNN_STATUS_EXECUTION_FAILED";
    case Status::kNotSupported: return "UCUDNN_STATUS_NOT_SUPPORTED";
    case Status::kDeadlineExceeded: return "UCUDNN_STATUS_DEADLINE_EXCEEDED";
    case Status::kRejected: return "UCUDNN_STATUS_REJECTED";
    case Status::kShuttingDown: return "UCUDNN_STATUS_SHUTTING_DOWN";
  }
  return "UCUDNN_STATUS_UNKNOWN";
}

/// Exception thrown by internal C++ code; converted to Status at the
/// C-style API boundary.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Throws Error(status, message) if `cond` is false.
inline void check(bool cond, Status status, const std::string& message) {
  if (!cond) throw Error(status, message);
}

/// Throws Error(kBadParam, message) if `cond` is false.
inline void check_param(bool cond, const std::string& message) {
  check(cond, Status::kBadParam, message);
}

}  // namespace ucudnn

/// Propagates a non-success Status from an expression returning Status.
#define UCUDNN_RETURN_IF_ERROR(expr)                          \
  do {                                                        \
    ::ucudnn::Status _ucudnn_status = (expr);                 \
    if (_ucudnn_status != ::ucudnn::Status::kSuccess) {       \
      return _ucudnn_status;                                  \
    }                                                         \
  } while (false)

/// Converts exceptions to Status at a C-style API boundary.
#define UCUDNN_API_BODY(body)                                 \
  try {                                                       \
    body;                                                     \
    return ::ucudnn::Status::kSuccess;                        \
  } catch (const ::ucudnn::Error& e) {                        \
    return e.status();                                        \
  } catch (const std::bad_alloc&) {                           \
    return ::ucudnn::Status::kAllocFailed;                    \
  } catch (const std::exception&) {                           \
    return ::ucudnn::Status::kInternalError;                  \
  }
