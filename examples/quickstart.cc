// Quickstart: wrap a handle, run one convolution, see what μ-cuDNN did.
//
// The integration recipe is the paper's: swap the handle type (here:
// construct a UcudnnHandle instead of an mcudnn::Handle) and keep calling
// the same cuDNN-shaped API. μ-cuDNN answers workspace queries with zero,
// records the kernel, and at the first convolution call divides the
// mini-batch into micro-batches that unlock faster algorithms within the
// workspace limit.
#include <cstdio>
#include <memory>

#include "core/ucudnn.h"
#include "tensor/tensor.h"

using namespace ucudnn;

int main() {
  // 1. A device and a μ-cuDNN handle. HostCpu executes kernels for real;
  //    swap in device::p100_sxm2_spec() for the calibrated simulator.
  auto dev = std::make_shared<device::Device>(device::host_cpu_spec());
  core::Options options;
  options.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  options.workspace_limit = std::size_t{2} << 20;  // 2 MiB per kernel
  core::UcudnnHandle handle(dev, options);

  // 2. A convolution problem: 16 images, 16->32 channels, 3x3, pad 1.
  const kernels::ConvProblem problem({16, 16, 24, 24}, {32, 16, 3, 3},
                                     {.pad_h = 1, .pad_w = 1});
  Tensor x(problem.x), w(TensorShape{32, 16, 3, 3}), y(problem.y);
  fill_random(x, 1);
  fill_random(w, 2);

  // 3. The cuDNN-style dance. GetAlgorithm returns a virtual ID and
  //    GetWorkspaceSize returns 0 — μ-cuDNN owns the workspace.
  const int algo = handle.get_algorithm(
      ConvKernelType::kForward, problem,
      mcudnn::AlgoPreference::kSpecifyWorkspaceLimit, *options.workspace_limit);
  const std::size_t ws = handle.workspace_size(ConvKernelType::kForward,
                                               problem, algo);
  std::printf("virtual algorithm id: %d, reported workspace: %zu bytes\n",
              algo, ws);

  // 4. Run. The first call benchmarks micro-batch sizes, solves the WR DP,
  //    allocates the (bounded) workspace internally, and executes the
  //    optimized sequence of micro-batches.
  handle.convolution(ConvKernelType::kForward, problem, 1.0f, x.data(),
                     w.data(), 0.0f, y.data());

  const core::Configuration* config =
      handle.configuration_for(ConvKernelType::kForward, problem);
  std::printf("chosen configuration: %s\n",
              config->to_string(ConvKernelType::kForward).c_str());
  std::printf("workspace used: %.2f KiB (limit was %.2f KiB)\n",
              static_cast<double>(config->workspace) / 1024.0,
              static_cast<double>(*options.workspace_limit) / 1024.0);

  // 5. Verify against the zero-workspace direct kernel.
  Tensor y_ref(problem.y);
  kernels::execute(ConvKernelType::kForward, kernels::fwd_algo::kDirect,
                   problem, x.data(), w.data(), y_ref.data(), 1.0f, 0.0f,
                   nullptr, 0);
  std::printf("max relative error vs direct reference: %.2e\n",
              max_rel_diff(y.data(), y_ref.data(), problem.y.count()));
  std::printf("benchmarking took %.1f ms, optimization %.2f ms\n",
              handle.total_benchmark_ms(), handle.total_optimize_ms());
  return 0;
}
