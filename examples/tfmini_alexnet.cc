// Framework portability demo (§IV-B2): the same μ-cuDNN handle behind a
// TensorFlow-style deferred-graph framework. tfmini never announces a
// workspace limit before running, so μ-cuDNN takes it from its options —
// set UCUDNN_WORKSPACE_LIMIT (e.g. "64M") to steer it from the environment.
#include <cstdio>
#include <memory>

#include "common/env.h"
#include "frameworks/tfmini/models.h"

using namespace ucudnn;

int main() {
  tfmini::Graph graph;
  tfmini::build_alexnet(graph, 256);
  std::printf("tfmini AlexNet graph: %zu ops\n", graph.ops().size());

  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options options = core::Options::from_env();
  if (!options.workspace_limit) {
    options.workspace_limit = std::size_t{64} << 20;
  }
  core::UcudnnHandle handle(dev, options);

  tfmini::Session session(graph, handle);
  const auto times = session.time(3);

  std::printf("per-op breakdown (fwd+bwd > 1 ms):\n");
  for (const auto& ot : times) {
    const double total = ot.forward_ms + ot.backward_ms;
    if (total < 1.0) continue;
    std::printf("  %-14s %8.2f ms\n", ot.name.c_str(), total);
  }
  std::printf("iteration: %.2f ms at %.0f MiB/kernel workspace limit\n",
              session.last_iteration_ms(),
              static_cast<double>(*options.workspace_limit) / (1 << 20));
  std::printf("kernels recorded by u-cuDNN at run time: %zu\n",
              handle.recorded_kernels().size());
  return 0;
}
