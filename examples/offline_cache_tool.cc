// Offline benchmarking tool (§III-D): pre-benchmarks a model's convolution
// kernels into a file-based database that later runs — or other nodes of a
// homogeneous cluster, via a network filesystem — load instead of
// re-benchmarking.
//
// Usage: offline_cache_tool <cache.db> [model] [batch] [policy]
//   model:  alexnet | alexnet-grouped | resnet18 | resnet50 | densenet40
//   batch:  mini-batch size (default 256)
//   policy: undivided | powerOfTwo | all (default powerOfTwo)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/timer.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

namespace {

void build(caffepp::Net& net, const std::string& model, std::int64_t batch) {
  if (model == "alexnet") {
    caffepp::build_alexnet(net, batch);
  } else if (model == "alexnet-grouped") {
    caffepp::build_alexnet_grouped(net, batch);
  } else if (model == "resnet18") {
    caffepp::build_resnet18(net, batch);
  } else if (model == "resnet50") {
    caffepp::build_resnet50(net, batch);
  } else if (model == "densenet40") {
    caffepp::build_densenet40(net, batch);
  } else {
    throw Error(Status::kInvalidValue, "unknown model: " + model);
  }
}

double benchmark_model(const std::string& cache_path, const std::string& model,
                       std::int64_t batch, core::BatchSizePolicy policy,
                       std::size_t* cache_entries) {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options opts;
  opts.batch_size_policy = policy;
  opts.workspace_limit = std::size_t{64} << 20;
  opts.cache_path = cache_path;
  core::UcudnnHandle handle(dev, opts);
  caffepp::Net net(handle, model,
                   caffepp::NetOptions{std::size_t{64} << 20, true});
  build(net, model, batch);
  Timer timer;
  net.forward();  // triggers benchmarking + optimization of every kernel
  net.backward();
  const double elapsed = timer.elapsed_ms();
  *cache_entries = handle.cache()->size();
  return elapsed;  // handle destructor persists the database
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <cache.db> [model] [batch] [policy]\n", argv[0]);
    return 2;
  }
  const std::string cache_path = argv[1];
  const std::string model = argc > 2 ? argv[2] : "alexnet";
  const std::int64_t batch = argc > 3 ? std::atoll(argv[3]) : 256;
  const core::BatchSizePolicy policy =
      core::parse_batch_size_policy(argc > 4 ? argv[4] : "powerOfTwo");

  std::size_t entries = 0;
  std::printf("pass 1: benchmarking %s (batch %lld, policy %s) into %s\n",
              model.c_str(), static_cast<long long>(batch),
              std::string(to_string(policy)).c_str(), cache_path.c_str());
  const double cold = benchmark_model(cache_path, model, batch, policy,
                                      &entries);
  std::printf("  %.1f ms, database now holds %zu benchmark entries\n", cold,
              entries);

  std::printf("pass 2: same model, database preloaded (simulates another run "
              "or another cluster node)\n");
  const double warm = benchmark_model(cache_path, model, batch, policy,
                                      &entries);
  std::printf("  %.1f ms (%.1fx faster startup), %zu entries\n", warm,
              cold / warm, entries);
  return 0;
}
