// Workspace Division on an Inception module: the WD policy's motivating
// case (§III-A) — a group of convolutions with very different workspace
// appetites sharing one arena. The ILP gives the 5x5 and 3x3 branches big
// segments and starves the cheap 1x1 projections.
#include <cstdio>
#include <memory>

#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main() {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options options;
  options.workspace_policy = core::WorkspacePolicy::kWD;
  options.total_workspace_size = std::size_t{48} << 20;
  options.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  core::UcudnnHandle handle(dev, options);

  caffepp::Net net(handle, "inception");
  net.input("data", {64, 192, 28, 28});
  caffepp::build_inception_module(net, "data", "inc3a");

  net.time(2);
  std::printf("Inception module (batch 64) under WD, 48 MiB total arena\n\n");

  const core::WdPlan* plan = handle.wd_plan();
  std::printf("%-32s %10s %10s   %s\n", "kernel", "ws[MiB]", "time[ms]",
              "configuration");
  const auto& requests = handle.recorded_kernels();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& assignment = plan->assignments[i];
    std::printf("%-32s %10.2f %10.3f   %s\n", requests[i].label.c_str(),
                static_cast<double>(assignment.config.workspace) / (1 << 20),
                assignment.config.time_ms,
                assignment.config.to_string(requests[i].type).c_str());
  }
  std::printf("\narena: %.1f of 48 MiB used; ILP had %zu variables, solved in "
              "%.3f ms\n",
              static_cast<double>(plan->total_workspace) / (1 << 20),
              plan->num_variables, plan->solve_ms);
  std::printf("module iteration time: %.2f ms\n", net.last_iteration_ms());
  return 0;
}
