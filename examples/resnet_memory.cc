// Memory-footprint demo: ResNet-18 (batch 128) on the simulated P100,
// comparing μ-cuDNN's bounded workspace against the cuDNN-equivalent
// undivided run — the Fig. 12 story as a runnable example. Also shows the
// device's capacity enforcement (allocations fail past 16 GiB).
#include <cstdio>
#include <memory>

#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

namespace {

void report(const char* title, std::size_t ws_limit,
            core::BatchSizePolicy policy) {
  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options options;
  options.batch_size_policy = policy;
  options.workspace_limit = ws_limit;
  core::UcudnnHandle handle(dev, options);
  caffepp::NetOptions net_options;
  net_options.workspace_limit = ws_limit;
  caffepp::Net net(handle, "resnet18", net_options);
  caffepp::build_resnet18(net, 128);
  net.time(1);

  std::size_t ws_total = 0, data_total = 0, param_total = 0;
  for (const auto& [layer, m] : net.memory_report()) {
    ws_total += m.workspace;
    data_total += m.data;
    param_total += m.param;
  }
  std::printf("%-34s activations %7.0f MiB, params %5.0f MiB, workspace "
              "%7.1f MiB, iter %8.2f ms\n",
              title, static_cast<double>(data_total) / (1 << 20),
              static_cast<double>(param_total) / (1 << 20),
              static_cast<double>(ws_total) / (1 << 20),
              net.last_iteration_ms());
  std::printf("%-34s device peak usage: %.2f GiB of %.0f GiB\n", "",
              static_cast<double>(dev->peak_bytes()) / (1 << 30),
              static_cast<double>(dev->spec().memory_bytes) / (1 << 30));
}

}  // namespace

int main() {
  std::printf("ResNet-18, batch 128, P100-SXM2 (simulated)\n\n");
  report("cuDNN-equivalent (undivided, 512M)", std::size_t{512} << 20,
         core::BatchSizePolicy::kUndivided);
  report("u-cuDNN (powerOfTwo, 64M)", std::size_t{64} << 20,
         core::BatchSizePolicy::kPowerOfTwo);
  std::printf("\nSame statistical behaviour, same layer outputs — only the\n"
              "workspace footprint and the algorithm schedule differ.\n");
  return 0;
}
