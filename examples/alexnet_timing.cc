// `caffe time` equivalent on the simulated P100: builds AlexNet with the
// caffepp framework, times forward+backward per layer under a chosen
// batch-size policy and per-layer workspace limit.
//
// Usage: alexnet_timing [policy] [ws_mib] [batch]
//   policy: undivided | powerOfTwo | all   (default powerOfTwo)
//   ws_mib: per-layer workspace limit in MiB (default 64)
//   batch:  mini-batch size (default 256)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "powerOfTwo";
  const std::size_t ws_mib =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 64;
  const std::int64_t batch = argc > 3 ? std::atoll(argv[3]) : 256;

  auto dev = std::make_shared<device::Device>(device::p100_sxm2_spec());
  core::Options options;
  options.batch_size_policy = core::parse_batch_size_policy(policy_name);
  options.workspace_limit = ws_mib << 20;
  core::UcudnnHandle handle(dev, options);

  caffepp::NetOptions net_options;
  net_options.workspace_limit = ws_mib << 20;
  caffepp::Net net(handle, "alexnet", net_options);
  caffepp::build_alexnet(net, batch);

  std::printf("AlexNet, batch %lld, policy %s, %zu MiB/layer, device %s\n\n",
              static_cast<long long>(batch), policy_name.c_str(), ws_mib,
              dev->spec().name.c_str());
  const auto times = net.time(3);
  std::printf("%-12s %12s %12s\n", "layer", "forward[ms]", "backward[ms]");
  for (const auto& lt : times) {
    if (lt.forward_ms + lt.backward_ms < 0.05) continue;  // skip noise rows
    std::printf("%-12s %12.2f %12.2f\n", lt.name.c_str(), lt.forward_ms,
                lt.backward_ms);
  }
  std::printf("\ntotal per iteration: %.2f ms\n", net.last_iteration_ms());

  std::printf("\nchosen convolution configurations:\n");
  for (const auto& [name, problem] : net.conv_problems()) {
    const auto* config =
        handle.configuration_for(ConvKernelType::kForward, problem);
    if (config != nullptr) {
      std::printf("  %-8s %s\n", name.c_str(),
                  config->to_string(ConvKernelType::kForward).c_str());
    }
  }
  return 0;
}
