#!/usr/bin/env python3
"""Layering lint: enforces the include-direction contract of the
planner/executor split.

The core pipeline is layered facade -> planner -> plan IR <- executor: the
plan IR is the boundary object, the planner decides, the executor runs, and
only the UcudnnHandle facade may see both sides. Frameworks sit on top of the
facade and must never reach under it to mcudnn. C++ cannot express "this
translation unit must not include that header", so the contract is enforced
here:

  1. src/core/plan.{h,cc} must not include core/planner.h, core/executor.h
     or core/ucudnn.h (the IR depends only on the data model).
  2. src/core/executor.{h,cc} must not include core/planner.h or
     core/ucudnn.h (execution-time policy arrives via the ReplanFn callback).
  3. src/core/planner.{h,cc} must not include core/executor.h or
     core/ucudnn.h (the planner hands plans down, never calls up).
  4. src/frameworks/** must not include mcudnn/ headers directly — all
     convolution traffic goes through the core/ucudnn.h facade.
  5. src/telemetry/** is a leaf: every library may include it, but its own
     quoted includes must stay inside telemetry/ (system headers via <> are
     fine), with one exception — common/thread_annotations.h, the locking
     leaf below. Instrumentation must never create a cycle back into the
     layers it observes.
  6. src/common/thread_annotations.h is the locking leaf: includable from
     everywhere (including telemetry), it must itself include only system
     headers — no quoted project-local includes at all.
  7. src/serve/** sits on TOP of the facade: it may include serve/, core/,
     kernels/, common/ and telemetry/ headers, nothing else (no mcudnn/, no
     frameworks/ — serving talks to the library through UcudnnHandle only).
  8. Nothing outside src/serve includes serve/ headers back: the serving
     front-end is a top layer, not a dependency of the library.

Usage:  check_layering.py [--self-test] [ROOT]

Exits non-zero when findings exist. Suppression: append
// layering: allow  on the offending line or the line above it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SUPPRESS = "layering: allow"

INCLUDE = re.compile(r'^\s*#\s*include\s*(["<])([^">]+)[">]', re.MULTILINE)

# The telemetry leaf rule is an allowlist, not a forbidden-prefix list: any
# quoted (project-local) include from src/telemetry must itself be a
# telemetry/ header — or the locking leaf, which telemetry needs for its own
# mutexes. Angle includes are system headers and always allowed.
TELEMETRY_LEAF = re.compile(r"^src/telemetry/.+\.(h|cc)$")
TELEMETRY_LEAF_EXTRA = ("common/thread_annotations.h",)

# The locking leaf itself: includable from everywhere, so it may depend on
# nothing project-local (it reads its env gate with std::getenv directly).
LOCKING_LEAF = re.compile(r"^src/common/thread_annotations\.h$")

# The serving front-end is a TOP layer (rule 7): an allowlist of the quoted
# include prefixes it may use. Everything else — mcudnn/, frameworks/,
# device/ internals — must be reached through the core/ucudnn.h facade.
SERVE_LAYER = re.compile(r"^src/serve/.+\.(h|cc)$")
SERVE_ALLOWED_PREFIXES = (
    "serve/",
    "core/",
    "kernels/",
    "common/",
    "telemetry/",
)

# (file-selector, forbidden-include prefixes, rationale) — selectors are
# matched against the path relative to ROOT, with / separators.
RULES = [
    (
        re.compile(r"^src/core/plan\.(h|cc)$"),
        ("core/planner.h", "core/executor.h", "core/ucudnn.h"),
        "the plan IR depends only on the core data model",
    ),
    (
        re.compile(r"^src/core/executor\.(h|cc)$"),
        ("core/planner.h", "core/ucudnn.h"),
        "the executor receives policy via callback, never includes the planner",
    ),
    (
        re.compile(r"^src/core/planner\.(h|cc)$"),
        ("core/executor.h", "core/ucudnn.h"),
        "the planner hands plans down, never calls up into execution",
    ),
    (
        re.compile(r"^src/frameworks/.+\.(h|cc)$"),
        ("mcudnn/",),
        "frameworks integrate through the core/ucudnn.h facade only",
    ),
    # Rule 8: the serving front-end is a top layer — no library code may
    # include back into it (negative lookahead exempts serve itself).
    (
        re.compile(r"^src/(?!serve/).+\.(h|cc)$"),
        ("serve/",),
        "the serving front-end sits on top; the library never includes it",
    ),
]


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literal contents, preserving layout
    (so line arithmetic still works on the result). Include directives use
    quotes, so quoted include paths are preserved verbatim."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int) -> bool:
    for candidate in (line - 1, line - 2):  # the line itself, the line above
        if 0 <= candidate < len(raw_lines) and SUPPRESS in raw_lines[candidate]:
            return True
    return False


def check_text(rel: str, raw: str) -> list[str]:
    """Returns findings for one file's contents (rel is the ROOT-relative
    path with / separators)."""
    rules = [r for r in RULES if r[0].match(rel)]
    leaf = TELEMETRY_LEAF.match(rel) is not None
    locking_leaf = LOCKING_LEAF.match(rel) is not None
    serve = SERVE_LAYER.match(rel) is not None
    if not rules and not leaf and not locking_leaf and not serve:
        return []
    clean = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings = []
    for match in INCLUDE.finditer(clean):
        delim = match.group(1)
        header = match.group(2)
        line = line_of(clean, match.start())
        if suppressed(raw_lines, line):
            continue
        if (
            leaf
            and delim == '"'
            and not header.startswith("telemetry/")
            and header not in TELEMETRY_LEAF_EXTRA
        ):
            findings.append(
                f"{rel}:{line}: layering: {rel} must not include "
                f'"{header}" (telemetry is a leaf: only telemetry/, the '
                "locking leaf, and system headers)"
            )
        if (
            serve
            and delim == '"'
            and not header.startswith(SERVE_ALLOWED_PREFIXES)
        ):
            findings.append(
                f"{rel}:{line}: layering: {rel} must not include "
                f'"{header}" (serve sits on the facade: only serve/, core/, '
                "kernels/, common/, telemetry/, and system headers)"
            )
        if locking_leaf and delim == '"':
            findings.append(
                f"{rel}:{line}: layering: {rel} must not include "
                f'"{header}" (the locking leaf includes only system headers)'
            )
        for _, forbidden, why in rules:
            for prefix in forbidden:
                if header == prefix or header.startswith(prefix):
                    findings.append(
                        f"{rel}:{line}: layering: {rel} must not include "
                        f'"{header}" ({why})'
                    )
    return findings


def scan_tree(root: Path) -> list[str]:
    findings = []
    for base in (
        "src/common",
        "src/core",
        "src/frameworks",
        "src/serve",
        "src/telemetry",
    ):
        directory = root / base
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*")):
            if path.suffix in {".h", ".cc"} and path.is_file():
                rel = path.relative_to(root).as_posix()
                raw = path.read_text(encoding="utf-8", errors="replace")
                findings.extend(check_text(rel, raw))
    return findings


def self_test() -> int:
    cases = [
        # (rel path, contents, expected finding count)
        ("src/core/plan.h", '#include "core/planner.h"\n', 1),
        ("src/core/plan.cc", '#include "core/executor.h"\n', 1),
        ("src/core/plan.cc", '#include "core/types.h"\n', 0),
        ("src/core/executor.h", '#include "core/planner.h"\n', 1),
        ("src/core/executor.cc", '#include "core/ucudnn.h"\n', 1),
        # The executor may see the IR and the raw library.
        (
            "src/core/executor.h",
            '#include "core/plan.h"\n#include "mcudnn/mcudnn.h"\n',
            0,
        ),
        ("src/core/planner.cc", '#include "core/executor.h"\n', 1),
        ("src/core/planner.h", '#include "core/plan.h"\n', 0),
        ("src/frameworks/caffepp/net.cc", '#include "mcudnn/mcudnn.h"\n', 1),
        ("src/frameworks/tfmini/tfmini.h", '#include "core/ucudnn.h"\n', 0),
        # Commented-out includes and suppressions do not count.
        ("src/core/plan.h", '// #include "core/planner.h"\n', 0),
        (
            "src/core/plan.h",
            '#include "core/planner.h"  // layering: allow\n',
            0,
        ),
        # Other files are out of scope for the core rules.
        ("src/core/ucudnn.h", '#include "core/planner.h"\n', 0),
        # Telemetry is a leaf: system and telemetry/ includes are fine,
        # anything project-local outside telemetry/ is a violation.
        ("src/telemetry/metrics.cc", "#include <atomic>\n", 0),
        ("src/telemetry/trace.h", '#include "telemetry/metrics.h"\n', 0),
        ("src/telemetry/metrics.cc", '#include "common/env.h"\n', 1),
        ("src/telemetry/trace.cc", '#include "core/types.h"\n', 1),
        (
            "src/telemetry/trace.cc",
            '#include "common/env.h"  // layering: allow\n',
            0,
        ),
        # ...but everyone may include telemetry.
        ("src/core/planner.cc", '#include "telemetry/metrics.h"\n', 0),
        ("src/frameworks/caffepp/net.cc", '#include "telemetry/trace.h"\n', 0),
        # The report/json_writer pair is covered by the same leaf rule: they
        # may include each other but never reach back into core or common.
        ("src/telemetry/report.cc", '#include "telemetry/json_writer.h"\n', 0),
        ("src/telemetry/json_writer.cc",
         '#include "telemetry/json_writer.h"\n', 0),
        ("src/telemetry/report.cc", '#include "core/plan.h"\n', 1),
        ("src/telemetry/json_writer.h", '#include "common/env.h"\n', 1),
        # The locking leaf (common/thread_annotations.h) is the one
        # non-telemetry header telemetry may include...
        (
            "src/telemetry/metrics.h",
            '#include "common/thread_annotations.h"\n',
            0,
        ),
        # ...but other common/ headers remain forbidden there, and the
        # locking leaf itself may include only system headers.
        ("src/telemetry/metrics.h", '#include "common/env.h"\n', 1),
        ("src/common/thread_annotations.h", "#include <mutex>\n", 0),
        ("src/common/thread_annotations.h", '#include "common/env.h"\n', 1),
        (
            "src/common/thread_annotations.h",
            '#include "telemetry/metrics.h"\n',
            1,
        ),
        # Other common/ files are out of scope for the locking-leaf rule.
        ("src/common/thread_pool.h", '#include "common/env.h"\n', 0),
        # Rule 7: serve may include its allowed surface...
        (
            "src/serve/server.cc",
            '#include "serve/request_queue.h"\n'
            '#include "core/ucudnn.h"\n'
            '#include "kernels/conv_problem.h"\n'
            '#include "common/thread_pool.h"\n'
            '#include "telemetry/metrics.h"\n'
            "#include <atomic>\n",
            0,
        ),
        # ...but never reaches under the facade or sideways into frameworks.
        ("src/serve/server.cc", '#include "mcudnn/mcudnn.h"\n', 1),
        ("src/serve/batcher.h", '#include "frameworks/caffepp/net.h"\n', 1),
        ("src/serve/request.h", '#include "device/device.h"\n', 1),
        (
            "src/serve/server.cc",
            '#include "mcudnn/mcudnn.h"  // layering: allow\n',
            0,
        ),
        # Rule 8: nothing in the library includes serve/ back.
        ("src/core/ucudnn.cc", '#include "serve/server.h"\n', 1),
        ("src/common/thread_pool.h", '#include "serve/request.h"\n', 1),
        ("src/frameworks/tfmini/tfmini.cc", '#include "serve/server.h"\n', 1),
        # Telemetry including serve trips both the leaf and rule 8.
        ("src/telemetry/metrics.cc", '#include "serve/request.h"\n', 2),
        # serve including serve is of course fine.
        ("src/serve/batcher.cc", '#include "serve/batcher.h"\n', 0),
        # The flight recorder and watchdog are ordinary telemetry-leaf
        # citizens: telemetry + locking-leaf includes only...
        (
            "src/telemetry/flight_recorder.h",
            '#include "telemetry/metrics.h"\n'
            '#include "common/thread_annotations.h"\n'
            "#include <atomic>\n",
            0,
        ),
        ("src/telemetry/watchdog.cc", '#include "telemetry/flight_recorder.h"\n', 0),
        # ...never back into the stack they observe.
        ("src/telemetry/flight_recorder.cc", '#include "common/env.h"\n', 1),
        ("src/telemetry/watchdog.h", '#include "serve/server.h"\n', 2),
        ("src/telemetry/flight_recorder.cc", '#include "core/executor.h"\n', 1),
        # The serve layer and the fault injector may feed the black box.
        ("src/serve/request_queue.cc",
         '#include "telemetry/flight_recorder.h"\n', 0),
        ("src/serve/server.cc", '#include "telemetry/watchdog.h"\n', 0),
        ("src/common/fault_injection.cc",
         '#include "telemetry/flight_recorder.h"\n', 0),
    ]
    failures = []
    for rel, text, expected in cases:
        got = check_text(rel, text)
        if len(got) != expected:
            failures.append((rel, text, expected, got))
    if failures:
        print("self-test FAILED")
        for rel, text, expected, got in failures:
            print(f"  {rel!r} x {text!r}: expected {expected}, got {len(got)}")
            for f in got:
                print(f"    {f}")
        return 1
    print(f"self-test passed ({len(cases)} cases)")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--self-test"]
    if "--self-test" in argv[1:]:
        return self_test()
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    findings = scan_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} layering violation(s)")
        return 1
    print("layering clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
