#!/usr/bin/env python3
"""Diff two bench-artifact directories and flag performance regressions.

The bench binaries (bench/*.cc) write one BENCH_<name>.json per run when
given `--json-dir <dir>` (or UCUDNN_BENCH_JSON_DIR), schema "ucudnn-bench-v1":

    {
      "schema": "ucudnn-bench-v1",
      "name":   "fig09_wr_conv2",
      "config": {"device": "P100-SXM2", ...},        # scalars only
      "rows":   [{"policy": "powerOfTwo", "time_ms": 1.23, ...}, ...],
      "paper":  {"all_speedup": 2.33, ...}           # reference constants
    }

Rows are matched between the two runs by their string-valued cells (the row
identity: policy, layer, device, ...); rows sharing an identity (e.g. the
same device+policy at several workspace sizes) are paired by order of
occurrence. Numeric cells are metrics; regression rules by key name:

  *_ms / *_msec  : lower is better — regress when new > old * (1 + threshold)
  *speedup*      : higher is better — regress when new < old * (1 - threshold)
  anything else  : informational, never a regression

Modes:
  bench_compare.py OLD_DIR NEW_DIR [--threshold 0.10]   # diff two runs
  bench_compare.py OLD_DIR NEW_DIR --min-speedup 4.0    # speedup gate
  bench_compare.py --check DIR                          # schema validation
  bench_compare.py --self-test                          # built-in test cases

--min-speedup gates on the geometric mean of old/new over every paired
lower-is-better metric (*_ms): the run fails (exit 1) unless NEW_DIR is at
least that many times faster than OLD_DIR overall. Per-row thresholds are
not applied in this mode — only the aggregate gate.

Exit codes: 0 ok, 1 regression found, 2 schema/usage error.
"""

import argparse
import json
import math
import os
import sys
import tempfile

SCHEMA = "ucudnn-bench-v1"
DEFAULT_THRESHOLD = 0.10


def fail(msg):
    print("bench_compare: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def _scalar_ok(v):
    if isinstance(v, bool):
        return False
    if isinstance(v, (int, float)):
        return math.isfinite(v)
    return isinstance(v, str)


def validate_artifact(path, doc):
    """Returns a list of schema problems ([] = valid)."""
    problems = []
    base = os.path.basename(path)

    def bad(msg):
        problems.append("%s: %s" % (base, msg))

    if not isinstance(doc, dict):
        bad("top level is not an object")
        return problems
    if doc.get("schema") != SCHEMA:
        bad("schema is %r, expected %r" % (doc.get("schema"), SCHEMA))
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        bad("missing or non-string 'name'")
    elif base != "BENCH_%s.json" % name:
        bad("filename does not match name %r" % name)
    config = doc.get("config")
    if not isinstance(config, dict):
        bad("'config' is not an object")
    else:
        for k, v in config.items():
            if not _scalar_ok(v):
                bad("config[%r] is not a finite scalar" % k)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        bad("'rows' is not a non-empty list")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                bad("rows[%d] is not a non-empty object" % i)
                continue
            for k, v in row.items():
                if not _scalar_ok(v):
                    bad("rows[%d][%r] is not a finite scalar" % (i, k))
    paper = doc.get("paper")
    if not isinstance(paper, dict):
        bad("'paper' is not an object")
    else:
        for k, v in paper.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                bad("paper[%r] is not a number" % k)
    return problems


def load_dir(directory):
    """Returns {artifact name: doc}; exits 2 on unreadable/invalid files."""
    if not os.path.isdir(directory):
        fail("%s is not a directory" % directory)
    docs = {}
    problems = []
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            problems.append("%s: unreadable (%s)" % (entry, e))
            continue
        problems.extend(validate_artifact(path, doc))
        if isinstance(doc, dict) and isinstance(doc.get("name"), str):
            docs[doc["name"]] = doc
    if problems:
        for p in problems:
            print("bench_compare: %s" % p, file=sys.stderr)
        sys.exit(2)
    if not docs:
        fail("no BENCH_*.json artifacts in %s" % directory)
    return docs


def row_identity(row):
    """The row's string cells, as a hashable key."""
    return tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))


def metric_direction(key):
    """'lower', 'higher', or None (informational)."""
    lowered = key.lower()
    if lowered.endswith("_ms") or lowered.endswith("_msec"):
        return "lower"
    if "speedup" in lowered:
        return "higher"
    return None


def compare_dirs(old_dir, new_dir, threshold, min_speedup=None):
    old_docs = load_dir(old_dir)
    new_docs = load_dir(new_dir)
    regressions = []
    compared = 0
    # old/new ratios of every paired lower-is-better metric, for the
    # aggregate --min-speedup gate (geomean > 1 means new is faster).
    speedup_ratios = []
    for name, new_doc in sorted(new_docs.items()):
        old_doc = old_docs.get(name)
        if old_doc is None:
            print("bench_compare: note: %s only in %s" % (name, new_dir))
            continue
        old_rows = {}
        for row in old_doc["rows"]:
            old_rows.setdefault(row_identity(row), []).append(row)
        # Rows with the same identity (string cells) are paired in order of
        # occurrence, so e.g. repeated device+policy rows across workspace
        # sizes each diff against their own baseline.
        seen = {}
        for row in new_doc["rows"]:
            ident = row_identity(row)
            ordinal = seen.get(ident, 0)
            seen[ident] = ordinal + 1
            candidates = old_rows.get(ident, [])
            if ordinal >= len(candidates):
                continue  # new row with no baseline counterpart
            old_row = candidates[ordinal]
            for key, new_val in row.items():
                if isinstance(new_val, str):
                    continue
                direction = metric_direction(key)
                if direction is None:
                    continue
                old_val = old_row.get(key)
                if not isinstance(old_val, (int, float)) or isinstance(old_val, bool):
                    continue
                if old_val == 0:
                    continue  # no meaningful ratio
                compared += 1
                ratio = new_val / old_val
                label = ", ".join("%s=%s" % kv for kv in ident)
                if direction == "lower" and new_val > 0:
                    speedup_ratios.append(old_val / new_val)
                if min_speedup is not None:
                    continue  # aggregate gate only; no per-row thresholds
                if direction == "lower" and ratio > 1 + threshold:
                    regressions.append(
                        "%s [%s] %s: %.4g -> %.4g (+%.1f%%, threshold %.0f%%)"
                        % (name, label, key, old_val, new_val,
                           100 * (ratio - 1), 100 * threshold))
                elif direction == "higher" and ratio < 1 - threshold:
                    regressions.append(
                        "%s [%s] %s: %.4g -> %.4g (-%.1f%%, threshold %.0f%%)"
                        % (name, label, key, old_val, new_val,
                           100 * (1 - ratio), 100 * threshold))
    if min_speedup is not None:
        if not speedup_ratios:
            fail("--min-speedup: no paired *_ms metrics to compare")
        geomean = math.exp(
            sum(math.log(r) for r in speedup_ratios) / len(speedup_ratios))
        print("bench_compare: geomean speedup %.2fx over %d metric(s) "
              "(gate: >= %.2fx)" % (geomean, len(speedup_ratios), min_speedup))
        if geomean < min_speedup:
            print("bench_compare: REGRESSION: geomean speedup %.2fx below "
                  "required %.2fx" % (geomean, min_speedup))
            return 1
        return 0
    print("bench_compare: %d metric(s) compared, %d regression(s)"
          % (compared, len(regressions)))
    for r in regressions:
        print("bench_compare: REGRESSION: %s" % r)
    return 1 if regressions else 0


def check_dir(directory):
    docs = load_dir(directory)  # exits 2 on schema problems
    total_rows = sum(len(doc["rows"]) for doc in docs.values())
    print("bench_compare: %d artifact(s) valid (%d rows): %s"
          % (len(docs), total_rows, ", ".join(sorted(docs))))
    return 0


# --- self-test --------------------------------------------------------------

def _write_artifact(directory, name, rows, config=None, paper=None,
                    schema=SCHEMA, filename=None):
    doc = {
        "schema": schema,
        "name": name,
        "config": config if config is not None else {"device": "test"},
        "rows": rows,
        "paper": paper if paper is not None else {},
    }
    path = os.path.join(directory, filename or ("BENCH_%s.json" % name))
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def _run_in_subprocess(fn, *args):
    """Runs fn(*args) catching SystemExit; returns the exit code."""
    try:
        return fn(*args)
    except SystemExit as e:
        return e.code if isinstance(e.code, int) else 2


def self_test():
    failures = []

    def expect(label, got, want):
        if got != want:
            failures.append("%s: exit %r, wanted %r" % (label, got, want))

    with tempfile.TemporaryDirectory() as tmp:
        old = os.path.join(tmp, "old")
        new_ok = os.path.join(tmp, "new_ok")
        new_bad = os.path.join(tmp, "new_bad")
        broken = os.path.join(tmp, "broken")
        for d in (old, new_ok, new_bad, broken):
            os.mkdir(d)

        base_rows = [
            {"policy": "undivided", "time_ms": 10.0, "speedup": 1.0},
            {"policy": "all", "time_ms": 5.0, "speedup": 2.0},
        ]
        _write_artifact(old, "figX", base_rows)

        # Pass: within threshold (5% slower, 10% allowed), speedup improved.
        _write_artifact(new_ok, "figX", [
            {"policy": "undivided", "time_ms": 10.5, "speedup": 1.0},
            {"policy": "all", "time_ms": 4.8, "speedup": 2.08},
        ])
        expect("pass case", _run_in_subprocess(
            compare_dirs, old, new_ok, DEFAULT_THRESHOLD), 0)

        # Regress: time_ms +50% and speedup -25%.
        _write_artifact(new_bad, "figX", [
            {"policy": "undivided", "time_ms": 15.0, "speedup": 1.0},
            {"policy": "all", "time_ms": 5.0, "speedup": 1.5},
        ])
        expect("regress case", _run_in_subprocess(
            compare_dirs, old, new_bad, DEFAULT_THRESHOLD), 1)

        # A looser threshold lets the same diff pass.
        expect("loose threshold", _run_in_subprocess(
            compare_dirs, old, new_bad, 0.60), 0)

        # Check mode accepts the valid dir.
        expect("check valid", _run_in_subprocess(check_dir, old), 0)

        # --min-speedup gate: old times 10/5 ms vs new 2.5/1.25 ms is a 4x
        # geomean; the gate passes at 4x and fails at 4.5x. speedup columns
        # do not feed the geomean (only *_ms metrics do).
        fast = os.path.join(tmp, "fast")
        os.mkdir(fast)
        _write_artifact(fast, "figX", [
            {"policy": "undivided", "time_ms": 2.5, "speedup": 1.0},
            {"policy": "all", "time_ms": 1.25, "speedup": 2.0},
        ])
        expect("min-speedup pass", _run_in_subprocess(
            compare_dirs, old, fast, DEFAULT_THRESHOLD, 4.0), 0)
        expect("min-speedup fail", _run_in_subprocess(
            compare_dirs, old, fast, DEFAULT_THRESHOLD, 4.5), 1)
        # A doctored regression (new slower than old) trips any gate >= 1.
        expect("min-speedup doctored regression", _run_in_subprocess(
            compare_dirs, old, new_bad, DEFAULT_THRESHOLD, 1.0), 1)
        # Per-row thresholds are suspended in gate mode: new_bad's +50%
        # time_ms row alone doesn't fail a sufficiently low gate.
        expect("min-speedup ignores row thresholds", _run_in_subprocess(
            compare_dirs, old, new_bad, DEFAULT_THRESHOLD, 0.5), 0)

        # Rows sharing an identity (same string cells, different numeric
        # workspace column) pair by order of occurrence: a directory compared
        # against itself is clean, and a regression in the second duplicate
        # row is attributed to that row's own baseline.
        dup_old = os.path.join(tmp, "dup_old")
        dup_new = os.path.join(tmp, "dup_new")
        os.mkdir(dup_old)
        os.mkdir(dup_new)
        dup_rows = [
            {"policy": "all", "ws_mib": 8.0, "time_ms": 20.0},
            {"policy": "all", "ws_mib": 64.0, "time_ms": 5.0},
        ]
        _write_artifact(dup_old, "figD", dup_rows)
        _write_artifact(dup_new, "figD", dup_rows)
        expect("duplicate identity self-compare", _run_in_subprocess(
            compare_dirs, dup_old, dup_new, DEFAULT_THRESHOLD), 0)
        _write_artifact(dup_new, "figD", [
            {"policy": "all", "ws_mib": 8.0, "time_ms": 20.0},
            {"policy": "all", "ws_mib": 64.0, "time_ms": 9.0},
        ])
        expect("duplicate identity regression", _run_in_subprocess(
            compare_dirs, dup_old, dup_new, DEFAULT_THRESHOLD), 1)

        # Schema errors: wrong schema tag, empty rows, filename mismatch.
        _write_artifact(broken, "figY", base_rows, schema="bogus-v0")
        expect("check wrong schema", _run_in_subprocess(check_dir, broken), 2)
        os.remove(os.path.join(broken, "BENCH_figY.json"))
        _write_artifact(broken, "figZ", [])
        expect("check empty rows", _run_in_subprocess(check_dir, broken), 2)
        os.remove(os.path.join(broken, "BENCH_figZ.json"))
        _write_artifact(broken, "figW", base_rows,
                        filename="BENCH_other.json")
        expect("check name mismatch", _run_in_subprocess(check_dir, broken), 2)
        os.remove(os.path.join(broken, "BENCH_other.json"))
        with open(os.path.join(broken, "BENCH_junk.json"), "w",
                  encoding="utf-8") as f:
            f.write("{not json")
        expect("check unparseable", _run_in_subprocess(check_dir, broken), 2)

        # Unit checks on the classification helpers.
        if metric_direction("time_ms") != "lower":
            failures.append("time_ms should be lower-better")
        if metric_direction("conv_speedup") != "higher":
            failures.append("conv_speedup should be higher-better")
        if metric_direction("front_size") is not None:
            failures.append("front_size should be informational")
        if row_identity({"a": "x", "n": 1.0}) != (("a", "x"),):
            failures.append("row_identity should keep only string cells")

    if failures:
        for f in failures:
            print("bench_compare self-test FAIL: %s" % f, file=sys.stderr)
        return 1
    print("bench_compare self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare ucudnn bench artifacts (see module docstring).")
    parser.add_argument("dirs", nargs="*", metavar="DIR",
                        help="OLD_DIR NEW_DIR for comparison")
    parser.add_argument("--check", metavar="DIR",
                        help="validate every BENCH_*.json in DIR")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative regression threshold (default 0.10)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="require a geomean OLD/NEW speedup of at least "
                             "this factor over all paired *_ms metrics")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in test cases")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.check:
        if args.dirs:
            fail("--check takes no positional directories")
        sys.exit(check_dir(args.check))
    if len(args.dirs) != 2:
        fail("expected OLD_DIR NEW_DIR (or --check DIR / --self-test)")
    if args.threshold <= 0:
        fail("--threshold must be positive")
    if args.min_speedup is not None and args.min_speedup <= 0:
        fail("--min-speedup must be positive")
    sys.exit(compare_dirs(args.dirs[0], args.dirs[1], args.threshold,
                          args.min_speedup))


if __name__ == "__main__":
    main()
