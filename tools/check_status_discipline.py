#!/usr/bin/env python3
"""Status-discipline lint: catches dropped-Status and swallowed-exception
patterns that clang-tidy misses.

The mcudnn C-style API reports failures as ucudnn::Status return values, and
internal code reports them as ucudnn::Error exceptions translated at the API
boundary (UCUDNN_API_BODY). Status is [[nodiscard]], so the compiler flags
plain discards — but two classes of silent error-dropping survive compilation:

  1. ignored-status:  (void)mcudnnConvolutionForward(...) and
     expression-statement calls the compiler cannot see through macros.
  2. swallowed-exception: a catch block that neither rethrows, logs,
     converts to Status, records the exception, nor fails the test.

Usage:  check_status_discipline.py [--self-test] [ROOT]

Scans src/, tests/, examples/, bench/ under ROOT (default: repo root inferred
from this script's location). Exits non-zero when findings exist.

Suppression: append  // status-discipline: allow  on the offending line or
the line above it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "examples", "bench")
EXTENSIONS = {".cc", ".h"}
SUPPRESS = "status-discipline: allow"

# Functions whose Status result must not be dropped: the mcudnn C-style API.
STATUS_CALL = re.compile(r"\bmcudnn[A-Z]\w*\s*\(")

# Evidence inside a catch block that the exception was handled, not swallowed.
HANDLED = re.compile(
    r"throw|rethrow|current_exception|return|UCUDNN_LOG|Logger|FAIL\("
    r"|ADD_FAILURE|GTEST_|abort\(|exit\(|\.status\(\)|errors\["
)

CATCH = re.compile(r"\bcatch\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literal contents, preserving layout
    (so line/column arithmetic still works on the result)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  "[: min(2, n - i)])
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int) -> bool:
    for candidate in (line - 1, line - 2):  # the line itself, the line above
        if 0 <= candidate < len(raw_lines) and SUPPRESS in raw_lines[candidate]:
            return True
    return False


def find_ignored_status(clean: str, raw_lines: list[str], path: Path) -> list[str]:
    findings = []
    for match in STATUS_CALL.finditer(clean):
        start = match.start()
        # Text between the previous statement/block boundary and the call.
        boundary = max(clean.rfind(ch, 0, start) for ch in ";{}")
        prefix = clean[boundary + 1 : start].strip()
        line = line_of(clean, start)
        if suppressed(raw_lines, line):
            continue
        name = match.group(0).rstrip("(").strip()
        if prefix == "":
            findings.append(
                f"{path}:{line}: ignored-status: result of {name}() is "
                f"discarded (expression statement)"
            )
        elif re.fullmatch(r"\(\s*void\s*\)", prefix):
            findings.append(
                f"{path}:{line}: ignored-status: result of {name}() is "
                f"explicitly voided; handle or propagate the Status"
            )
    return findings


def matching_brace(clean: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(clean)):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(clean) - 1


def find_swallowed_exceptions(clean: str, raw_lines: list[str], path: Path) -> list[str]:
    findings = []
    for match in CATCH.finditer(clean):
        paren_close = clean.find(")", match.end())
        brace_open = clean.find("{", paren_close)
        if paren_close == -1 or brace_open == -1:
            continue
        brace_close = matching_brace(clean, brace_open)
        body = clean[brace_open + 1 : brace_close]
        line = line_of(clean, match.start())
        if suppressed(raw_lines, line):
            continue
        if not HANDLED.search(body):
            clause = clean[match.start() : paren_close + 1]
            findings.append(
                f"{path}:{line}: swallowed-exception: {' '.join(clause.split())}"
                f" block neither rethrows, logs, returns, nor records the error"
            )
    return findings


def scan_file(path: Path) -> list[str]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    clean = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    return find_ignored_status(clean, raw_lines, path) + find_swallowed_exceptions(
        clean, raw_lines, path
    )


def scan_tree(root: Path) -> list[str]:
    findings = []
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                findings.extend(scan_file(path))
    return findings


def self_test() -> int:
    bad = """
    void f() {
      mcudnnConvolutionForward(h, a, x);
      (void)mcudnnGetConvolutionAlgorithm(h, x);
      try { g(); } catch (...) {}
      try { g(); } catch (const std::exception& e) { count++; }
      for (;;) { try { g(); } catch (const Error& e) { ++failures; continue; } }
      try { g(); } catch (...) { MutexLock lock(mu); ++swallowed; }
      // Counting a serving-layer terminal status without resolving, logging,
      // or propagating it still swallows the error.
      try { g(); } catch (const Error& e) { ++deadline_exceeded_count; }
    }
    """
    good = """
    void f() {
      Status s = mcudnnConvolutionForward(h, a, x);  // used
      if (mcudnnGetConvolutionAlgorithm(h, x) != Status::kSuccess) fail();
      return mcudnnConvolutionBackwardData(h);
      try { g(); } catch (const Error& e) { return e.status(); }
      try { g(); } catch (...) { UCUDNN_LOG_WARN << "boom"; }
      try { g(); } catch (...) { throw; }
      try { g(); } catch (const Error& e) {
        if (e.status() != Status::kExecutionFailed) throw;
        ++retries;  // retry loop: selective rethrow is handling
      }
      // Serving-layer terminal statuses: converting an exception into a
      // ticket resolution (kDeadlineExceeded / kRejected / kShuttingDown)
      // is handling — the status is inspected, not dropped.
      try { g(); } catch (const Error& e) {
        if (e.status() == Status::kDeadlineExceeded) ++expired;
        ticket->resolve(e.status());
      }
      if (queue_full) return Status::kRejected;
      if (draining) return Status::kShuttingDown;
      try { g(); } catch (const Error& e) {
        UCUDNN_LOG_WARN << "shedding: " << to_string(Status::kRejected);
      }
      try { g(); } catch (...) {
        // Recording the exception under a lock (the ThreadPool::parallel_for
        // first-error pattern) is handling, not swallowing.
        MutexLock lock(mu);
        if (!error) error = std::current_exception();
      }
      mcudnnConvolutionForward(h, a, x);  // status-discipline: allow
    }
    """
    clean_bad = strip_comments_and_strings(bad)
    clean_good = strip_comments_and_strings(good)
    bad_findings = find_ignored_status(
        clean_bad, bad.splitlines(), Path("bad.cc")
    ) + find_swallowed_exceptions(clean_bad, bad.splitlines(), Path("bad.cc"))
    good_findings = find_ignored_status(
        clean_good, good.splitlines(), Path("good.cc")
    ) + find_swallowed_exceptions(clean_good, good.splitlines(), Path("good.cc"))
    ok = len(bad_findings) == 7 and not good_findings
    if not ok:
        print("self-test FAILED")
        print(f"  expected 7 findings in bad sample, got {len(bad_findings)}:")
        for f in bad_findings:
            print(f"    {f}")
        print(f"  expected 0 findings in good sample, got {len(good_findings)}:")
        for f in good_findings:
            print(f"    {f}")
        return 1
    print("self-test passed (7 positives caught, 0 false positives)")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--self-test"]
    if "--self-test" in argv[1:]:
        return self_test()
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    findings = scan_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} status-discipline violation(s)")
        return 1
    print("status discipline clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
