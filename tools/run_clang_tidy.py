#!/usr/bin/env python3
"""clang-tidy runner with a ratcheting baseline.

Drives clang-tidy (config: the repo's .clang-tidy) over every repo source
file listed in a CMake compile_commands.json and compares the findings
against tools/clang_tidy_baseline.txt:

  * a finding not in the baseline is NEW  -> printed, exit 1
  * a baseline entry with no finding is FIXED -> printed as informational
    (run with --update-baseline to ratchet the baseline down)

Findings are normalized to "file: [check] message" — no line/column — so
unrelated edits that shift code do not churn the baseline; only genuinely
new (file, check, message) triples fail the run.

Usage:
  run_clang_tidy.py [--build-dir DIR] [--update-baseline] [--self-test]
                    [--jobs N] [ROOT]

ROOT defaults to the repo root inferred from this script's location;
--build-dir defaults to ROOT/build. When clang-tidy is not installed or the
compile database is missing, exits 77 (the ctest SKIP_RETURN_CODE — this
container ships only gcc, so the wired check_clang_tidy test reports SKIP
rather than silently passing).
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

EXIT_SKIP = 77

# Sources the lint owns: repo code, not the vendored gtest / generated files.
SOURCE_PREFIXES = ("src/", "tests/", "examples/", "bench/")
EXCLUDE_PARTS = ("third_party", "_deps", "googletest")

# clang-tidy diagnostic line:  /abs/path/file.cc:12:5: warning: msg [check]
DIAGNOSTIC = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?P<severity>warning|error):\s*(?P<message>.*?)"
    r"\s*\[(?P<check>[\w.,-]+)\]$"
)


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15"):
        if shutil.which(name):
            return name
    return None


def repo_sources(compile_commands: Path, root: Path) -> list[Path]:
    """Repo-owned translation units from the compile database, deduplicated
    and sorted."""
    entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    sources = set()
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue  # outside the repo (system or generated)
        if any(part in rel.split("/") for part in EXCLUDE_PARTS):
            continue
        if rel.startswith(SOURCE_PREFIXES):
            sources.add(path.resolve())
    return sorted(sources)


def parse_diagnostics(output: str) -> list[dict[str, str]]:
    """Parses clang-tidy stdout into diagnostic dicts (file/line/col/
    severity/message/check). Notes and snippet lines are ignored."""
    diagnostics = []
    for line in output.splitlines():
        match = DIAGNOSTIC.match(line.strip())
        if match:
            diagnostics.append(match.groupdict())
    return diagnostics


def normalize(diag: dict[str, str], root: Path) -> str:
    """Stable baseline key: root-relative path, check, message — no
    line/column, so surrounding edits do not churn the baseline."""
    path = Path(diag["file"])
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return f"{rel}: [{diag['check']}] {diag['message']}"


def diff_against_baseline(
    findings: set[str], baseline: set[str]
) -> tuple[list[str], list[str]]:
    """Returns (new, fixed): findings not in the baseline, and baseline
    entries that no longer occur."""
    return sorted(findings - baseline), sorted(baseline - findings)


def read_baseline(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    lines = path.read_text(encoding="utf-8").splitlines()
    return {ln.strip() for ln in lines if ln.strip() and not ln.startswith("#")}


def write_baseline(path: Path, findings: set[str]) -> None:
    header = (
        "# clang-tidy baseline: known findings, one normalized entry per\n"
        "# line ('file: [check] message'). Regenerate with\n"
        "#   tools/run_clang_tidy.py --update-baseline\n"
        "# New findings (absent here) fail the lint; fix them instead of\n"
        "# adding entries unless the finding is a confirmed false positive.\n"
    )
    body = "".join(f"{entry}\n" for entry in sorted(findings))
    path.write_text(header + body, encoding="utf-8")


def run_clang_tidy(
    binary: str, sources: list[Path], build_dir: Path, jobs: int
) -> str:
    def one(source: Path) -> str:
        proc = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet", str(source)],
            capture_output=True,
            text=True,
        )
        return proc.stdout

    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        return "\n".join(pool.map(one, sources))


def self_test() -> int:
    root = Path("/repo")
    sample = """\
/repo/src/core/planner.cc:42:10: warning: use emplace_back [modernize-use-emplace]
    plans.push_back(std::make_shared<ExecutionPlan>());
         ^
/repo/src/core/planner.cc:48:3: note: expanded from macro
/repo/src/common/env.cc:7:1: error: redefinition of 'env_bool' [clang-diagnostic-error]
random console noise that is not a diagnostic
/other/tree/file.cc:1:1: warning: outside the repo [misc-unused]
/repo/tests/plan_test.cc:12:5: warning: narrowing conversion [bugprone-narrowing-conversions,cppcoreguidelines-narrowing-conversions]
"""
    diags = parse_diagnostics(sample)
    checks = []

    def expect(name: str, cond: bool) -> None:
        checks.append((name, cond))

    expect("parses 4 diagnostics, skips notes/noise", len(diags) == 4)
    expect(
        "captures fields",
        diags[0]["file"] == "/repo/src/core/planner.cc"
        and diags[0]["line"] == "42"
        and diags[0]["severity"] == "warning"
        and diags[0]["check"] == "modernize-use-emplace"
        and diags[0]["message"] == "use emplace_back",
    )
    expect(
        "multi-check names survive",
        diags[3]["check"]
        == "bugprone-narrowing-conversions,cppcoreguidelines-narrowing-conversions",
    )

    norm = [normalize(d, root) for d in diags]
    expect(
        "normalizes to relative path, no line/col",
        norm[0] == "src/core/planner.cc: [modernize-use-emplace] "
        "use emplace_back",
    )
    expect(
        "paths outside the root stay absolute",
        norm[2] == "/other/tree/file.cc: [misc-unused] outside the repo",
    )

    # Identical findings on different lines collapse to one baseline entry.
    moved = dict(diags[0], line="99", col="1")
    expect("line moves do not churn", normalize(moved, root) == norm[0])

    baseline = {norm[0], "src/core/gone.cc: [misc-unused] stale entry"}
    new, fixed = diff_against_baseline(set(norm), baseline)
    expect(
        "diff: new findings detected",
        len(new) == 3 and norm[1] in new and norm[2] in new and norm[3] in new,
    )
    expect(
        "diff: fixed entries detected",
        fixed == ["src/core/gone.cc: [misc-unused] stale entry"],
    )

    empty_new, empty_fixed = diff_against_baseline(set(norm), set(norm))
    expect("diff: clean when identical", not empty_new and not empty_fixed)

    expect(
        "baseline round-trip ignores comments/blanks",
        read_baseline_from_text("# comment\n\nsrc/a.cc: [c] m\n")
        == {"src/a.cc: [c] m"},
    )

    failed = [name for name, ok in checks if not ok]
    if failed:
        print("self-test FAILED")
        for name in failed:
            print(f"  {name}")
        return 1
    print(f"self-test passed ({len(checks)} cases)")
    return 0


def read_baseline_from_text(text: str) -> set[str]:
    return {ln.strip() for ln in text.splitlines()
            if ln.strip() and not ln.startswith("#")}


def main(argv: list[str]) -> int:
    args = argv[1:]
    if "--self-test" in args:
        return self_test()

    update = "--update-baseline" in args
    args = [a for a in args if a != "--update-baseline"]
    build_dir: Path | None = None
    jobs = 4
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--build-dir" and i + 1 < len(args):
            build_dir = Path(args[i + 1])
            i += 2
        elif args[i] == "--jobs" and i + 1 < len(args):
            jobs = int(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1

    root = (
        Path(positional[0])
        if positional
        else Path(__file__).resolve().parent.parent
    )
    if build_dir is None:
        build_dir = root / "build"
    baseline_path = root / "tools" / "clang_tidy_baseline.txt"

    binary = find_clang_tidy()
    if binary is None:
        print("run_clang_tidy: clang-tidy not installed; skipping (exit 77)")
        return EXIT_SKIP
    compile_commands = build_dir / "compile_commands.json"
    if not compile_commands.is_file():
        print(
            f"run_clang_tidy: {compile_commands} not found (configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON); skipping (exit 77)"
        )
        return EXIT_SKIP

    sources = repo_sources(compile_commands, root)
    if not sources:
        print("run_clang_tidy: no repo sources in the compile database")
        return 1
    print(f"run_clang_tidy: {binary} over {len(sources)} translation units")
    output = run_clang_tidy(binary, sources, build_dir, jobs)
    findings = {normalize(d, root) for d in parse_diagnostics(output)}

    if update:
        write_baseline(baseline_path, findings)
        print(f"baseline updated: {len(findings)} finding(s)")
        return 0

    baseline = read_baseline(baseline_path)
    new, fixed = diff_against_baseline(findings, baseline)
    for entry in fixed:
        print(f"FIXED (remove from baseline): {entry}")
    for entry in new:
        print(f"NEW: {entry}")
    if new:
        print(
            f"\n{len(new)} new clang-tidy finding(s); fix them or, for "
            "confirmed false positives, rerun with --update-baseline"
        )
        return 1
    print(f"clang-tidy clean ({len(baseline)} baselined finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
