#!/usr/bin/env python3
"""Raw-mutex lint: every lock in the tree must go through the annotated
wrappers in src/common/thread_annotations.h.

Clang Thread Safety Analysis (the `tsa` CMake preset) only sees state that
is guarded by a capability-annotated mutex, and the runtime lock-order
detector only sees acquisitions that pass through ucudnn::Mutex. A raw
std::mutex is invisible to both tiers, so this lint rejects the raw standard
synchronization vocabulary everywhere outside the wrapper header itself:

    std::mutex, std::recursive_mutex, std::timed_mutex,
    std::recursive_timed_mutex, std::shared_mutex, std::shared_timed_mutex,
    std::condition_variable, std::condition_variable_any,
    std::lock_guard, std::unique_lock, std::scoped_lock, std::shared_lock

Use ucudnn::Mutex / MutexLock / CondVar instead (docs/analysis.md describes
the conventions).

Usage:  check_thread_safety.py [--self-test] [ROOT]

Scans src/, tests/, examples/, bench/ under ROOT (default: repo root
inferred from this script's location). src/common/thread_annotations.h is
exempt — it is the one place allowed to touch the raw primitives. Exits
non-zero when findings exist.

Suppression: append  // thread-safety: allow  on the offending line or the
line above it (for deliberate raw usage, e.g. interop with external code).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "examples", "bench")
EXTENSIONS = {".cc", ".h"}
SUPPRESS = "thread-safety: allow"

# The wrapper header is the single sanctioned user of the raw primitives.
EXEMPT = {"src/common/thread_annotations.h"}

RAW_PRIMITIVE = re.compile(
    r"\bstd\s*::\s*("
    r"mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|condition_variable_any|condition_variable"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r")\b"
)

WRAPPER_FOR = {
    "mutex": "ucudnn::Mutex",
    "recursive_mutex": "ucudnn::Mutex (restructure to avoid recursion)",
    "timed_mutex": "ucudnn::Mutex",
    "recursive_timed_mutex": "ucudnn::Mutex",
    "shared_mutex": "ucudnn::Mutex",
    "shared_timed_mutex": "ucudnn::Mutex",
    "condition_variable": "ucudnn::CondVar",
    "condition_variable_any": "ucudnn::CondVar",
    "lock_guard": "ucudnn::MutexLock",
    "unique_lock": "ucudnn::MutexLock",
    "scoped_lock": "ucudnn::MutexLock",
    "shared_lock": "ucudnn::MutexLock",
}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literal contents, preserving layout
    (so line arithmetic still works on the result)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  "[: min(2, n - i)])
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int) -> bool:
    for candidate in (line - 1, line - 2):  # the line itself, the line above
        if 0 <= candidate < len(raw_lines) and SUPPRESS in raw_lines[candidate]:
            return True
    return False


def check_text(rel: str, raw: str) -> list[str]:
    """Returns findings for one file's contents (rel is the ROOT-relative
    path with / separators)."""
    if rel in EXEMPT:
        return []
    clean = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings = []
    for match in RAW_PRIMITIVE.finditer(clean):
        line = line_of(clean, match.start())
        if suppressed(raw_lines, line):
            continue
        primitive = match.group(1)
        findings.append(
            f"{rel}:{line}: raw-mutex: std::{primitive} bypasses the "
            f"annotated locking layer; use {WRAPPER_FOR[primitive]} from "
            f"common/thread_annotations.h"
        )
    return findings


def scan_tree(root: Path) -> list[str]:
    findings = []
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                rel = path.relative_to(root).as_posix()
                raw = path.read_text(encoding="utf-8", errors="replace")
                findings.extend(check_text(rel, raw))
    return findings


def self_test() -> int:
    cases = [
        # (rel path, contents, expected finding count)
        ("src/core/foo.cc", "std::mutex mu;\n", 1),
        ("src/core/foo.cc", "std::lock_guard<std::mutex> lock(mu);\n", 2),
        ("src/core/foo.cc", "std::unique_lock<std::mutex> l(mu);\n", 2),
        ("src/core/foo.cc", "std::scoped_lock l(a, b);\n", 1),
        ("src/core/foo.cc", "std::shared_lock l(mu);\n", 1),
        ("src/core/foo.h", "std::condition_variable cv;\n", 1),
        ("src/core/foo.h", "std::condition_variable_any cv;\n", 1),
        ("src/core/foo.h", "std::recursive_mutex mu;\n", 1),
        ("src/core/foo.h", "std::shared_mutex mu;\n", 1),
        ("tests/foo_test.cc", "std::timed_mutex mu;\n", 1),
        # Whitespace around :: still matches.
        ("src/core/foo.cc", "std :: mutex mu;\n", 1),
        # The wrappers themselves are fine.
        ("src/core/foo.cc", "Mutex mu;\nMutexLock lock(mu);\nCondVar cv;\n", 0),
        # Identifiers merely containing the token are not findings.
        ("src/core/foo.cc", "int mutex_count = 0; my::mutex m;\n", 0),
        ("src/core/foo.cc", "std::atomic<int> lock_guard_count{0};\n", 0),
        # Comments and strings do not count.
        ("src/core/foo.cc", "// std::mutex in prose\n", 0),
        ("src/core/foo.cc", 'log("std::mutex is banned");\n', 0),
        # Suppression on the line or the line above.
        ("src/core/foo.cc", "std::mutex mu;  // thread-safety: allow\n", 0),
        (
            "src/core/foo.cc",
            "// thread-safety: allow\nstd::mutex mu;\n",
            0,
        ),
        # The wrapper header is the sanctioned exception.
        ("src/common/thread_annotations.h", "std::mutex mu_;\n", 0),
        ("src/common/thread_pool.h", "std::mutex mu_;\n", 1),
    ]
    failures = []
    for rel, text, expected in cases:
        got = check_text(rel, text)
        if len(got) != expected:
            failures.append((rel, text, expected, got))
    if failures:
        print("self-test FAILED")
        for rel, text, expected, got in failures:
            print(f"  {rel!r} x {text!r}: expected {expected}, got {len(got)}")
            for f in got:
                print(f"    {f}")
        return 1
    print(f"self-test passed ({len(cases)} cases)")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--self-test"]
    if "--self-test" in argv[1:]:
        return self_test()
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    findings = scan_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} raw-mutex violation(s)")
        return 1
    print("thread-safety vocabulary clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
