// §IV-B1 / §IV-D overhead accounting: time spent in micro-benchmarking and
// DP optimization under the `all` vs `powerOfTwo` policies (paper on P100:
// 34.16 s vs 3.82 s — ~9x apart), plus the WD ILP statistics for ResNet-50
// (paper: 562 variables, 5.46 ms GLPK solve at 5088 MiB).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("opt_overhead", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.paper("all_vs_pow2_wall_ratio", 8.9);
  artifact.paper("resnet50_ilp_vars", 562.0);
  artifact.paper("resnet50_ilp_solve_ms", 5.46);
  std::printf("Optimization overhead (AlexNet, P100-SXM2, batch 256, "
              "64 MiB/kernel)\n\n");
  std::printf("%-12s %14s %14s %14s\n", "policy", "benchmark[ms]",
              "optimize[ms]", "wall[ms]");
  bench::print_rule(60);
  double all_ms = 0.0, pow2_ms = 0.0;
  for (const auto policy :
       {core::BatchSizePolicy::kPowerOfTwo, core::BatchSizePolicy::kAll}) {
    auto dev = bench::make_device("P100-SXM2");
    core::UcudnnHandle handle(dev,
                              bench::wr_options(std::size_t{64} << 20, policy));
    caffepp::Net net(handle, "alexnet");
    caffepp::build_alexnet(net, 256);
    Timer timer;
    net.forward();  // triggers benchmarking + WR DP for every kernel
    const double wall = timer.elapsed_ms();
    if (policy == core::BatchSizePolicy::kAll) all_ms = wall;
    if (policy == core::BatchSizePolicy::kPowerOfTwo) pow2_ms = wall;
    std::printf("%-12s %14.2f %14.2f %14.2f\n",
                std::string(to_string(policy)).c_str(),
                handle.total_benchmark_ms(), handle.total_optimize_ms(), wall);
    artifact.add_row(bench::BenchRow()
                         .col("section", "wr_overhead")
                         .col("policy", std::string(to_string(policy)))
                         .col("benchmark_ms", handle.total_benchmark_ms())
                         .col("optimize_ms", handle.total_optimize_ms())
                         .col("wall_ms", wall));
  }
  bench::print_rule(60);
  std::printf("all / powerOfTwo wall ratio: %.1fx (paper: ~8.9x)\n\n",
              all_ms / pow2_ms);

  std::printf("WD ILP statistics, ResNet-50 (batch 32), total arena = "
              "#kernels x 32 MiB\n");
  auto dev = bench::make_device("P100-SXM2");
  // Probe the unique-kernel count first.
  std::size_t kernels = 0;
  {
    core::UcudnnHandle probe(bench::make_device("P100-SXM2"),
                             bench::wr_options(std::size_t{8} << 20,
                                               core::BatchSizePolicy::kUndivided));
    caffepp::Net net(probe, "probe");
    caffepp::build_resnet50(net, 32);
    kernels = probe.recorded_kernels().size();
  }
  core::UcudnnHandle handle(
      dev, bench::wd_options(kernels * (std::size_t{32} << 20),
                             core::BatchSizePolicy::kPowerOfTwo));
  caffepp::Net net(handle, "resnet50");
  caffepp::build_resnet50(net, 32);
  net.forward();
  const core::WdPlan* plan = handle.wd_plan();
  std::printf("unique kernels: %zu, ILP variables after Pareto pruning: %zu\n",
              kernels, plan->num_variables);
  std::printf("solver time: %.3f ms (paper: 5.46 ms with GLPK, 562 vars)\n",
              plan->solve_ms);
  std::printf("arena used: %.1f MiB of %.1f MiB; benchmark time %.2f ms\n",
              bench::mib(plan->total_workspace),
              bench::mib(kernels * (std::size_t{32} << 20)),
              handle.total_benchmark_ms());
  artifact.add_row(bench::BenchRow()
                       .col("section", "wd_ilp_resnet50")
                       .col("unique_kernels", kernels)
                       .col("ilp_variables", plan->num_variables)
                       .col("solve_ms", plan->solve_ms)
                       .col("arena_used_mib", bench::mib(plan->total_workspace))
                       .col("benchmark_ms", handle.total_benchmark_ms()));
  return 0;
}
