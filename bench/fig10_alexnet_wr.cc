// Fig. 10 reproduction: Caffe(-style) AlexNet forward+backward time on K80,
// P100-SXM2 and V100-SXM2 under per-layer workspace limits of 8/64/512 MiB
// and batch-size policies undivided (u) / powerOfTwo (p) / all (a).
// Mini-batch 256 on K80 and P100, 1024 on V100 (as in the paper).
//
// Expected shape (paper): large gains at 64 MiB (K80: 1.81x whole-iteration,
// 2.10x convolutions; P100: 1.40x / 1.63x; V100: 1.47x / 1.63x), no gain at
// 8 MiB (workspace too small to exploit), negligible gain at 512 MiB.
#include <cstdio>

#include "bench/bench_util.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  const struct {
    const char* device;
    std::int64_t batch;
  } targets[] = {
      {"K80", 256}, {"P100-SXM2", 256}, {"V100-SXM2", 1024}};

  bench::BenchArtifact artifact("fig10_alexnet_wr", argc, argv);
  artifact.config("network", "AlexNet");
  artifact.paper("k80_total_speedup_64mib", 1.81);
  artifact.paper("k80_conv_speedup_64mib", 2.10);
  artifact.paper("p100_total_speedup_64mib", 1.40);
  artifact.paper("p100_conv_speedup_64mib", 1.63);
  artifact.paper("v100_total_speedup_64mib", 1.47);
  artifact.paper("v100_conv_speedup_64mib", 1.63);

  for (const auto& target : targets) {
    std::printf("=== AlexNet on %s, mini-batch %lld ===\n", target.device,
                static_cast<long long>(target.batch));
    std::printf("%8s %8s %12s %12s %10s %10s\n", "ws[MiB]", "policy",
                "total[ms]", "conv[ms]", "tot spd", "conv spd");
    bench::print_rule(66);
    for (const std::size_t ws_mib : {8, 64, 512}) {
      double base_total = 0.0, base_conv = 0.0;
      for (const auto policy :
           {core::BatchSizePolicy::kUndivided,
            core::BatchSizePolicy::kPowerOfTwo, core::BatchSizePolicy::kAll}) {
        const auto run = bench::run_caffepp(
            target.device, target.batch,
            bench::wr_options(ws_mib << 20, policy), ws_mib << 20,
            [](caffepp::Net& net, std::int64_t batch) {
              caffepp::build_alexnet(net, batch);
            });
        if (policy == core::BatchSizePolicy::kUndivided) {
          base_total = run.total_ms;
          base_conv = run.conv_ms;
        }
        std::printf("%8zu %8s %12.2f %12.2f %9.2fx %9.2fx\n", ws_mib,
                    bench::policy_tag(policy), run.total_ms, run.conv_ms,
                    base_total / run.total_ms, base_conv / run.conv_ms);
        artifact.add_row(bench::BenchRow()
                             .col("device", target.device)
                             .col("workspace_mib", ws_mib)
                             .col("policy", bench::policy_tag(policy))
                             .col("total_ms", run.total_ms)
                             .col("conv_ms", run.conv_ms)
                             .col("total_speedup", base_total / run.total_ms)
                             .col("conv_speedup", base_conv / run.conv_ms));
      }
    }
    bench::print_rule(66);

    // Per-layer convolution breakdown at 64 MiB, undivided vs all.
    std::printf("per-conv-layer breakdown at 64 MiB (fwd+bwd, ms):\n");
    const auto undivided = bench::run_caffepp(
        target.device, target.batch,
        bench::wr_options(std::size_t{64} << 20,
                          core::BatchSizePolicy::kUndivided),
        std::size_t{64} << 20,
        [](caffepp::Net& net, std::int64_t batch) {
          caffepp::build_alexnet(net, batch);
        });
    const auto all = bench::run_caffepp(
        target.device, target.batch,
        bench::wr_options(std::size_t{64} << 20, core::BatchSizePolicy::kAll),
        std::size_t{64} << 20,
        [](caffepp::Net& net, std::int64_t batch) {
          caffepp::build_alexnet(net, batch);
        });
    std::printf("%-8s %12s %12s %10s\n", "layer", "undivided", "all",
                "speedup");
    for (std::size_t i = 0; i < undivided.layers.size(); ++i) {
      const auto& u = undivided.layers[i];
      if (u.name.rfind("conv", 0) != 0) continue;
      const auto& a = all.layers[i];
      const double tu = u.forward_ms + u.backward_ms;
      const double ta = a.forward_ms + a.backward_ms;
      std::printf("%-8s %12.2f %12.2f %9.2fx\n", u.name.c_str(), tu, ta,
                  tu / ta);
    }
    std::printf("\n");
  }
  return 0;
}
