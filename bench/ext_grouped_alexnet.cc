// Extension experiment: grouped convolution under μ-cuDNN. The original
// two-tower AlexNet (conv2/4/5 at groups = 2) halves those layers' FLOPs and
// parameters, but grouped kernels can only use the implicit algorithm family
// (as in cuDNN) — so micro-batching has nothing to unlock there. This
// harness quantifies that interaction against single-column AlexNet.
#include <cstdio>

#include "bench/bench_util.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("ext_grouped_alexnet", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 256);
  artifact.config("workspace_limit_mib", 64);
  std::printf("Extension: grouped (two-tower) vs single-column AlexNet, "
              "P100-SXM2, batch 256, 64 MiB/kernel\n\n");
  std::printf("%-14s %10s %12s %12s %10s\n", "model", "policy", "total[ms]",
              "conv[ms]", "speedup");
  bench::print_rule(64);
  for (const bool grouped : {false, true}) {
    double base = 0.0;
    for (const auto policy :
         {core::BatchSizePolicy::kUndivided, core::BatchSizePolicy::kAll}) {
      const auto run = bench::run_caffepp(
          "P100-SXM2", 256, bench::wr_options(std::size_t{64} << 20, policy),
          std::size_t{64} << 20,
          [grouped](caffepp::Net& net, std::int64_t batch) {
            if (grouped) {
              caffepp::build_alexnet_grouped(net, batch);
            } else {
              caffepp::build_alexnet(net, batch);
            }
          });
      if (policy == core::BatchSizePolicy::kUndivided) base = run.total_ms;
      std::printf("%-14s %10s %12.2f %12.2f %9.2fx\n",
                  grouped ? "two-tower g=2" : "single-column",
                  bench::policy_tag(policy), run.total_ms, run.conv_ms,
                  base / run.total_ms);
      artifact.add_row(bench::BenchRow()
                           .col("model", grouped ? "two-tower g=2"
                                                 : "single-column")
                           .col("policy", bench::policy_tag(policy))
                           .col("total_ms", run.total_ms)
                           .col("conv_ms", run.conv_ms)
                           .col("speedup", base / run.total_ms));
    }
    bench::print_rule(64);
  }
  std::printf("\nGrouped conv2/4/5 are cheaper in absolute terms (half the\n"
              "MACs) but micro-batching helps them less: the implicit-only\n"
              "algorithm menu has no workspace-hungry fast path to unlock.\n");
  return 0;
}
