// Fig. 14 reproduction: how WD divides a 120 MiB arena among AlexNet's 15
// convolution kernels (5 layers x Forward/BackwardFilter/BackwardData) on
// P100-SXM2, batch 256. The paper observes that conv2+conv3 take 93.7% of
// the arena while conv4/conv5 get under 3 MiB each — WD spends memory where
// the time payoff is.
#include <cstdio>

#include "bench/bench_util.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  std::printf("Fig. 14: WD workspace division, AlexNet on P100-SXM2, "
              "batch 256, 120 MiB total\n\n");

  bench::BenchArtifact artifact("fig14_wd_division", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 256);
  artifact.config("arena_mib", 120);
  artifact.paper("conv23_arena_share_pct", 93.7);

  auto dev = bench::make_device("P100-SXM2");
  core::UcudnnHandle handle(
      dev, bench::wd_options(std::size_t{120} << 20,
                             core::BatchSizePolicy::kPowerOfTwo));
  caffepp::Net net(handle, "alexnet");
  caffepp::build_alexnet(net, 256);
  net.forward();  // triggers WD optimization
  const core::WdPlan* plan = handle.wd_plan();
  if (plan == nullptr) {
    std::printf("WD plan missing!\n");
    return 1;
  }

  std::printf("%-28s %10s %10s   %s\n", "kernel", "ws[MiB]", "time[ms]",
              "configuration");
  bench::print_rule(108);
  const auto& requests = handle.recorded_kernels();
  std::size_t conv23 = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    const auto& assignment = plan->assignments[i];
    std::printf("%-28s %10.2f %10.3f   %s\n", request.label.c_str(),
                bench::mib(assignment.config.workspace),
                assignment.config.time_ms,
                assignment.config.to_string(request.type).c_str());
    artifact.add_row(
        bench::BenchRow()
            .col("kernel", request.label)
            .col("workspace_mib", bench::mib(assignment.config.workspace))
            .col("time_ms", assignment.config.time_ms)
            .col("configuration", assignment.config.to_string(request.type)));
    if (request.label.rfind("conv2", 0) == 0 ||
        request.label.rfind("conv3", 0) == 0) {
      conv23 += assignment.config.workspace;
    }
  }
  bench::print_rule(108);
  std::printf("arena used: %.1f / 120 MiB; ILP variables: %zu; solve: %.2f ms\n",
              bench::mib(plan->total_workspace), plan->num_variables,
              plan->solve_ms);
  std::printf("conv2+conv3 share of assigned workspace: %.1f%% (paper: 93.7%%)\n",
              100.0 * static_cast<double>(conv23) /
                  static_cast<double>(std::max<std::size_t>(1, plan->total_workspace)));
  return 0;
}
