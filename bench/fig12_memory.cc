// Fig. 12 reproduction: per-layer memory breakdown of AlexNet (batch 256)
// and ResNet-18 (batch 128) on P100-SXM2, comparing a cuDNN-equivalent run
// (undivided policy, 512 MiB per-layer workspace limit) with μ-cuDNN
// (powerOfTwo policy, 64 MiB limit). The paper reports per-layer workspace
// cuts up to 3.43x (AlexNet) and 2.73x (ResNet-18) with a negligible
// (1.17x) slowdown.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

namespace {

struct MemRun {
  std::map<std::string, caffepp::Net::LayerMemory> report;
  double total_ms = 0.0;
  std::size_t total_ws = 0;
};

MemRun run(const std::function<void(caffepp::Net&, std::int64_t)>& build,
           std::int64_t batch, std::size_t ws_limit,
           core::BatchSizePolicy policy) {
  auto dev = bench::make_device("P100-SXM2");
  core::UcudnnHandle handle(dev, bench::wr_options(ws_limit, policy));
  caffepp::NetOptions options;
  options.workspace_limit = ws_limit;
  caffepp::Net net(handle, "mem", options);
  build(net, batch);
  net.time(1);
  MemRun result;
  result.report = net.memory_report();
  result.total_ms = net.last_iteration_ms();
  for (const auto& [layer, m] : result.report) result.total_ws += m.workspace;
  return result;
}

void compare(bench::BenchArtifact& artifact, const char* title,
             const std::function<void(caffepp::Net&, std::int64_t)>& build,
             std::int64_t batch) {
  std::printf("=== %s (batch %lld) ===\n", title, static_cast<long long>(batch));
  const MemRun cudnn =
      run(build, batch, std::size_t{512} << 20, core::BatchSizePolicy::kUndivided);
  const MemRun ucudnn =
      run(build, batch, std::size_t{64} << 20, core::BatchSizePolicy::kPowerOfTwo);

  std::printf("%-10s %10s %10s %12s %12s %8s\n", "layer", "data[MiB]",
              "param[MiB]", "WS cuDNN", "WS u-cuDNN", "WS cut");
  bench::print_rule(68);
  double worst_cut = 1.0;
  for (const auto& [layer, m] : cudnn.report) {
    if (m.workspace == 0) continue;  // only convolution layers have workspace
    const auto it = ucudnn.report.find(layer);
    const std::size_t ws_u = it == ucudnn.report.end() ? 0 : it->second.workspace;
    const double cut =
        ws_u == 0 ? 0.0
                  : static_cast<double>(m.workspace) / static_cast<double>(ws_u);
    worst_cut = std::max(worst_cut, cut);
    std::printf("%-10s %10.1f %10.1f %12.1f %12.1f %7.2fx\n", layer.c_str(),
                bench::mib(m.data), bench::mib(m.param), bench::mib(m.workspace),
                bench::mib(ws_u), cut);
    artifact.add_row(bench::BenchRow()
                         .col("network", title)
                         .col("layer", layer)
                         .col("ws_cudnn_mib", bench::mib(m.workspace))
                         .col("ws_ucudnn_mib", bench::mib(ws_u))
                         .col("ws_cut", cut));
  }
  bench::print_rule(68);
  std::printf("total workspace: cuDNN %.1f MiB -> u-cuDNN %.1f MiB (%.2fx)\n",
              bench::mib(cudnn.total_ws), bench::mib(ucudnn.total_ws),
              static_cast<double>(cudnn.total_ws) /
                  static_cast<double>(std::max<std::size_t>(1, ucudnn.total_ws)));
  std::printf("max per-layer workspace cut: %.2fx\n", worst_cut);
  std::printf("iteration time: cuDNN@512MiB %.2f ms vs u-cuDNN@64MiB %.2f ms "
              "(slowdown %.2fx; paper: 1.17x)\n\n",
              cudnn.total_ms, ucudnn.total_ms, ucudnn.total_ms / cudnn.total_ms);
  artifact.add_row(
      bench::BenchRow()
          .col("network", title)
          .col("layer", "(total)")
          .col("ws_cudnn_mib", bench::mib(cudnn.total_ws))
          .col("ws_ucudnn_mib", bench::mib(ucudnn.total_ws))
          .col("ws_cut", static_cast<double>(cudnn.total_ws) /
                             static_cast<double>(
                                 std::max<std::size_t>(1, ucudnn.total_ws)))
          .col("cudnn_ms", cudnn.total_ms)
          .col("ucudnn_ms", ucudnn.total_ms)
          .col("slowdown", ucudnn.total_ms / cudnn.total_ms));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Fig. 12: per-layer memory on P100-SXM2 — cuDNN (undivided, "
              "512 MiB) vs u-cuDNN (powerOfTwo, 64 MiB)\n\n");
  bench::BenchArtifact artifact("fig12_memory", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.paper("alexnet_max_ws_cut", 3.43);
  artifact.paper("resnet18_max_ws_cut", 2.73);
  artifact.paper("slowdown", 1.17);
  compare(artifact, "AlexNet",
          [](caffepp::Net& net, std::int64_t batch) {
            caffepp::build_alexnet(net, batch);
          },
          256);
  compare(artifact, "ResNet-18",
          [](caffepp::Net& net, std::int64_t batch) {
            caffepp::build_resnet18(net, batch);
          },
          128);
  std::printf("(paper: per-layer cuts up to 3.43x on AlexNet, 2.73x on "
              "ResNet-18)\n");
  return 0;
}
