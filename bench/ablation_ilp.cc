// Ablations for the design choices called out in DESIGN.md §5:
//  1. Pareto pruning — desirable-set sizes vs the unpruned candidate space
//     (the reason the WD ILP is solvable at all, §III-C1).
//  2. WD solver choice — exact MCKP DP vs branch-and-bound over simplex
//     relaxations: identical objectives, different solve times.
//  3. Batch-size policy quality gap — how much end-to-end time `powerOfTwo`
//     leaves on the table vs `all`, against its benchmarking-time saving.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/benchmarker.h"
#include "core/wd_optimizer.h"
#include "core/wr_optimizer.h"
#include "frameworks/caffepp/model_zoo.h"
#include "ilp/ilp.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("ablation_ilp", argc, argv);
  artifact.config("device", "P100-SXM2");
  auto dev = bench::make_device("P100-SXM2");

  // ---- 1. Pareto pruning -------------------------------------------------
  std::printf("[1] Pareto pruning: desirable-set sizes (AlexNet conv2, "
              "batch 256, cap 120 MiB)\n");
  core::Benchmarker benchmarker({mcudnn::Handle(dev)}, nullptr);
  const auto problem = bench::alexnet_conv2(256);
  std::printf("%-12s %22s %18s\n", "policy", "unpruned candidates*",
              "Pareto front size");
  for (const auto policy :
       {core::BatchSizePolicy::kPowerOfTwo, core::BatchSizePolicy::kAll}) {
    const auto table = benchmarker.run(ConvKernelType::kForward, problem,
                                       policy);
    // Unpruned proxy: number of distinct micro-configurations; the full
    // division space is |A|^(#divisions), i.e. astronomically larger.
    std::size_t micro_configs = 0;
    for (const auto& perfs : table.perfs) micro_configs += perfs.size();
    const auto front = core::desirable_configurations(table, 256,
                                                      std::size_t{120} << 20);
    std::printf("%-12s %22zu %18zu\n", std::string(to_string(policy)).c_str(),
                micro_configs, front.size());
    artifact.add_row(bench::BenchRow()
                         .col("section", "pareto_pruning")
                         .col("policy", std::string(to_string(policy)))
                         .col("micro_configs", micro_configs)
                         .col("front_size", front.size()));
  }
  std::printf("(* micro-configurations only; unconstrained division count is "
              "O(|A|^B))\n\n");

  // ---- 2. Solver comparison ----------------------------------------------
  std::printf("[2] WD solver: exact MCKP DP vs branch-and-bound ILP "
              "(AlexNet, 120 MiB total)\n");
  std::vector<core::KernelRequest> requests;
  {
    core::UcudnnHandle probe(bench::make_device("P100-SXM2"),
                             bench::wr_options(std::size_t{8} << 20,
                                               core::BatchSizePolicy::kUndivided));
    caffepp::Net net(probe, "alexnet");
    caffepp::build_alexnet(net, 256);
    requests = probe.recorded_kernels();
  }
  for (const auto solver :
       {core::WdSolver::kMckpDp, core::WdSolver::kBranchBoundIlp}) {
    core::Benchmarker wd_bench({mcudnn::Handle(dev)}, benchmarker.cache());
    Timer timer;
    const core::WdPlan plan =
        core::optimize_wd(wd_bench, requests, std::size_t{120} << 20,
                          core::BatchSizePolicy::kPowerOfTwo, solver);
    std::printf("  %-18s objective %10.3f ms, vars %4zu, solve %8.3f ms, "
                "pipeline %8.1f ms\n",
                solver == core::WdSolver::kMckpDp ? "MCKP DP" : "B&B simplex",
                plan.total_time_ms, plan.num_variables, plan.solve_ms,
                timer.elapsed_ms());
    artifact.add_row(
        bench::BenchRow()
            .col("section", "wd_solver")
            .col("solver",
                 solver == core::WdSolver::kMckpDp ? "MCKP DP" : "B&B simplex")
            .col("objective_ms", plan.total_time_ms)
            .col("variables", plan.num_variables)
            .col("solve_ms", plan.solve_ms));
  }
  std::printf("\n");

  // ---- 3. Policy quality gap ---------------------------------------------
  std::printf("[3] Policy quality vs optimization cost (AlexNet conv "
              "kernels, 64 MiB/kernel)\n");
  double quality[2] = {0, 0};
  double bench_ms[2] = {0, 0};
  int idx = 0;
  for (const auto policy :
       {core::BatchSizePolicy::kPowerOfTwo, core::BatchSizePolicy::kAll}) {
    core::Benchmarker fresh({mcudnn::Handle(bench::make_device("P100-SXM2"))},
                            nullptr);
    double total = 0.0;
    for (const auto& request : requests) {
      const auto table = fresh.run(request.type, request.problem, policy);
      total += core::optimize_wr(table, request.problem.batch(),
                                 std::size_t{64} << 20)
                   .time_ms;
    }
    quality[idx] = total;
    bench_ms[idx] = fresh.total_benchmark_ms();
    std::printf("  %-12s configured conv time %10.2f ms, benchmarking "
                "%8.1f ms\n",
                std::string(to_string(policy)).c_str(), total, bench_ms[idx]);
    artifact.add_row(bench::BenchRow()
                         .col("section", "policy_quality")
                         .col("policy", std::string(to_string(policy)))
                         .col("conv_time_ms", total)
                         .col("benchmark_ms", bench_ms[idx]));
    ++idx;
  }
  std::printf("  all gains %.1f%% quality for %.1fx more benchmarking\n\n",
              100.0 * (quality[0] - quality[1]) / quality[0],
              bench_ms[1] / std::max(1e-9, bench_ms[0]));

  // ---- 4. WR workspace combiner: max vs sum --------------------------------
  std::printf("[4] Workspace combiner (DESIGN.md 5.4): sequential micro-"
              "batches share ONE buffer,\n    so a configuration costs "
              "max(micro ws), not sum(micro ws)\n");
  {
    const auto table = benchmarker.run(ConvKernelType::kForward, problem,
                                       core::BatchSizePolicy::kPowerOfTwo);
    const auto config = core::optimize_wr(table, 256, std::size_t{64} << 20);
    std::size_t sum = 0;
    for (const auto& micro : config.micro) sum += micro.workspace;
    std::printf("  conv2 @64 MiB picks %s\n",
                config.to_string(ConvKernelType::kForward).c_str());
    std::printf("  max-combiner footprint: %7.1f MiB (fits the limit)\n",
                bench::mib(config.workspace));
    std::printf("  sum-combiner would need: %6.1f MiB (%.1fx the limit -> "
                "the paper's configurations would be unreachable)\n",
                bench::mib(sum),
                static_cast<double>(sum) / (64.0 * 1024 * 1024));
  }
  return 0;
}
