// Fig. 13 reproduction: WR vs WD on AlexNet (batch 256) and ResNet-50
// (batch 32) on P100-SXM2. Adjoined configurations share the same TOTAL
// workspace: WR gives every kernel limit L, WD gets one arena of
// (#kernels x L) bytes to divide freely.
//
// Expected shape (paper): WD(all) @ 120 MiB beats WR(undivided) @ 8 MiB/kernel
// by 1.24x end-to-end (1.38x convolutions) on AlexNet and even beats the
// 960 MiB WR baseline; ResNet-50 WD @ 2544 MiB gains 1.05x / 1.14x.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "frameworks/caffepp/model_zoo.h"

using namespace ucudnn;

namespace {

struct Row {
  double total_ms;
  double conv_ms;
  std::size_t kernels;
};

Row run(const std::function<void(caffepp::Net&, std::int64_t)>& build,
        std::int64_t batch, const core::Options& options,
        std::size_t net_ws_limit) {
  auto dev = bench::make_device("P100-SXM2");
  core::UcudnnHandle handle(dev, options);
  caffepp::NetOptions net_options;
  net_options.workspace_limit = net_ws_limit;
  caffepp::Net net(handle, "bench", net_options);
  build(net, batch);
  const auto layers = net.time(2);
  Row row{net.last_iteration_ms(), 0.0, handle.recorded_kernels().size()};
  for (const auto& lt : layers) {
    const auto& n = lt.name;
    const bool is_conv = (n.rfind("conv", 0) == 0 || n.find("_conv") != std::string::npos ||
                          n.find("_down") != std::string::npos) &&
                         n.find("_bn") == std::string::npos &&
                         n.find("_relu") == std::string::npos;
    if (is_conv) row.conv_ms += lt.forward_ms + lt.backward_ms;
  }
  return row;
}

void compare(bench::BenchArtifact& artifact, const char* title,
             const std::function<void(caffepp::Net&, std::int64_t)>& build,
             std::int64_t batch, const std::vector<std::size_t>& per_kernel_mib) {
  std::printf("=== %s (batch %lld) ===\n", title, static_cast<long long>(batch));
  // Discover the kernel count once (3 kernels per conv layer, deduplicated
  // for replicated shapes).
  const Row probe = run(build, batch,
                        bench::wr_options(std::size_t{8} << 20,
                                          core::BatchSizePolicy::kUndivided),
                        std::size_t{8} << 20);
  const std::size_t kernels = probe.kernels;
  std::printf("unique convolution kernels: %zu\n", kernels);
  std::printf("%-30s %12s %12s %10s\n", "configuration", "total[ms]",
              "conv[ms]", "speedup");
  bench::print_rule(68);

  double baseline = 0.0;
  for (const std::size_t mib : per_kernel_mib) {
    const std::size_t per_kernel = mib << 20;
    const std::size_t total = kernels * per_kernel;
    const Row wr_u = run(build, batch,
                         bench::wr_options(per_kernel,
                                           core::BatchSizePolicy::kUndivided),
                         per_kernel);
    if (baseline == 0.0) baseline = wr_u.total_ms;
    const Row wr_a = run(build, batch,
                         bench::wr_options(per_kernel,
                                           core::BatchSizePolicy::kPowerOfTwo),
                         per_kernel);
    const Row wd_a = run(build, batch,
                         bench::wd_options(total,
                                           core::BatchSizePolicy::kPowerOfTwo),
                         per_kernel);
    const auto emit = [&](const char* config, const Row& row) {
      artifact.add_row(bench::BenchRow()
                           .col("network", title)
                           .col("per_kernel_mib", mib)
                           .col("configuration", config)
                           .col("total_ms", row.total_ms)
                           .col("conv_ms", row.conv_ms)
                           .col("speedup", baseline / row.total_ms));
    };
    emit("WR undivided", wr_u);
    emit("WR powerOfTwo", wr_a);
    emit("WD powerOfTwo", wd_a);
    char label[64];
    std::snprintf(label, sizeof label, "WR undivided @%zu MiB/kern", mib);
    std::printf("%-30s %12.2f %12.2f %9.2fx\n", label, wr_u.total_ms,
                wr_u.conv_ms, baseline / wr_u.total_ms);
    std::snprintf(label, sizeof label, "WR powerOfTwo @%zu MiB/kern", mib);
    std::printf("%-30s %12.2f %12.2f %9.2fx\n", label, wr_a.total_ms,
                wr_a.conv_ms, baseline / wr_a.total_ms);
    std::snprintf(label, sizeof label, "WD powerOfTwo @%zu MiB total",
                  (kernels * per_kernel) >> 20);
    std::printf("%-30s %12.2f %12.2f %9.2fx\n", label, wd_a.total_ms,
                wd_a.conv_ms, baseline / wd_a.total_ms);
    bench::print_rule(68);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Fig. 13: WR vs WD at equal total workspace, P100-SXM2\n\n");
  bench::BenchArtifact artifact("fig13_wd_vs_wr", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.paper("alexnet_wd_total_speedup", 1.24);
  artifact.paper("alexnet_wd_conv_speedup", 1.38);
  artifact.paper("resnet50_wd_total_speedup", 1.05);
  artifact.paper("resnet50_wd_conv_speedup", 1.14);
  compare(artifact, "AlexNet",
          [](caffepp::Net& net, std::int64_t batch) {
            caffepp::build_alexnet(net, batch);
          },
          256, {8, 64, 512});
  compare(artifact, "ResNet-50",
          [](caffepp::Net& net, std::int64_t batch) {
            caffepp::build_resnet50(net, batch);
          },
          32, {8, 16});
  return 0;
}
