// Observability-overhead bench (docs/observability.md).
//
// Measures what the always-on flight recorder costs on the hot path, in
// three tiers:
//
//  * span        — ScopedSpan construct/destroy. Disabled (trace recorder
//                  off, flight recorder disarmed) this is the cost every
//                  instrumented call site pays in production; armed it adds
//                  two ring writes (span_open + span_close).
//  * note        — FlightRecorder::note() directly: disarmed it is a single
//                  relaxed atomic load; armed it is one seqlock ring write.
//  * serve       — end-to-end per-request latency through serve::Server on
//                  a HostCpu handle, flight recorder disarmed vs armed, so
//                  the ring writes are costed against real work.
//
// Each row reports per-operation time in milliseconds per 1000 operations
// (per_1k_ops_ms, lower is better) so bench_compare.py treats it as a
// regression metric; the serve rows report plain per-request milliseconds.
//
// Artifact: BENCH_obs_overhead.json (ucudnn-bench-v1) via --json-dir /
// UCUDNN_BENCH_JSON_DIR, gated by tools/bench_compare.py.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "serve/server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace ucudnn {
namespace {

constexpr int kSpanIters = 200000;
constexpr int kNoteIters = 400000;
constexpr int kServeRequests = 64;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-1000-operation cost of one ScopedSpan open/close pair.
double time_spans() {
  const double begin = now_ms();
  for (int i = 0; i < kSpanIters; ++i) {
    const telemetry::ScopedSpan span("obs.probe");
    (void)span;
  }
  return (now_ms() - begin) / kSpanIters * 1000.0;
}

/// Per-1000-operation cost of one FlightRecorder::note().
double time_notes() {
  const double begin = now_ms();
  for (int i = 0; i < kNoteIters; ++i) {
    telemetry::FlightRecorder::note(telemetry::FlightEventKind::kMark,
                                    "obs.note", 0, i, 0);
  }
  return (now_ms() - begin) / kNoteIters * 1000.0;
}

kernels::ConvProblem sample_problem() {
  return kernels::ConvProblem({1, 4, 8, 8}, {8, 4, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

/// Mean per-request latency of kServeRequests sequential requests.
double time_serve(serve::Server& server, const float* weights) {
  const kernels::ConvProblem problem = sample_problem();
  AlignedBuffer<float> input(static_cast<std::size_t>(problem.x.count()));
  AlignedBuffer<float> output(static_cast<std::size_t>(problem.y.count()),
                              true);
  fill_random(input.data(), problem.x.count(), 11);
  const double begin = now_ms();
  for (int i = 0; i < kServeRequests; ++i) {
    serve::ServeRequest req;
    req.problem = problem;
    req.input = input.data();
    req.weights = weights;
    req.output = output.data();
    serve::TicketPtr ticket = server.submit(std::move(req));
    if (ticket->wait() != Status::kSuccess) return -1.0;
  }
  return (now_ms() - begin) / kServeRequests;
}

}  // namespace
}  // namespace ucudnn

int main(int argc, char** argv) {
  using namespace ucudnn;

  bench::BenchArtifact artifact("obs_overhead", argc, argv);
  artifact.config("device", "HostCpu");
  artifact.config("span_iters", kSpanIters);
  artifact.config("note_iters", kNoteIters);
  artifact.config("serve_requests", kServeRequests);

  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::instance();
  const bool was_armed = flight.is_armed();

  std::printf("obs_overhead: flight-recorder cost, disarmed vs armed\n\n");
  std::printf("%-8s %-10s %16s\n", "case", "mode", "per_1k_ops_ms");
  bench::print_rule(40);

  struct MicroCase {
    const char* name;
    bool armed;
    double (*fn)();
  };
  const MicroCase micro[] = {
      {"span", false, &time_spans},
      {"span", true, &time_spans},
      {"note", false, &time_notes},
      {"note", true, &time_notes},
  };
  for (const MicroCase& c : micro) {
    flight.set_armed(c.armed);
    c.fn();  // warm-up (thread ring allocation, branch predictors)
    const double per_1k_ms = c.fn();
    std::printf("%-8s %-10s %16.6f\n", c.name, c.armed ? "armed" : "disarmed",
                per_1k_ms);
    bench::BenchRow row;
    row.col("case", c.name)
        .col("mode", c.armed ? "armed" : "disarmed")
        .col("per_1k_ops_ms", per_1k_ms);
    artifact.add_row(row);
  }

  // End-to-end: the same serve path twice; the delta is what arming costs
  // against real convolution work (expected: noise).
  core::Options handle_opts;
  handle_opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  handle_opts.workspace_limit = std::size_t{4} << 20;
  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()), handle_opts);
  serve::ServeOptions serve_opts;
  serve_opts.workers = 2;
  serve_opts.queue_capacity = 64;
  serve_opts.batch_window_us = 0;  // latency mode: no batch hold
  serve::Server server(handle, serve_opts);

  const kernels::ConvProblem problem = sample_problem();
  AlignedBuffer<float> weights(static_cast<std::size_t>(problem.w.count()));
  fill_random(weights.data(), problem.w.count(), 7);

  std::printf("\n%-8s %-10s %16s\n", "case", "mode", "per_req_ms");
  bench::print_rule(40);
  bool serve_ok = true;
  for (const bool armed : {false, true}) {
    flight.set_armed(armed);
    time_serve(server, weights.data());  // warm-up: plan + benchmark
    const double per_req_ms = time_serve(server, weights.data());
    if (per_req_ms < 0.0) {
      std::fprintf(stderr, "serve request failed\n");
      serve_ok = false;
      break;
    }
    std::printf("%-8s %-10s %16.4f\n", "serve", armed ? "armed" : "disarmed",
                per_req_ms);
    bench::BenchRow row;
    row.col("case", "serve")
        .col("mode", armed ? "armed" : "disarmed")
        .col("per_req_ms", per_req_ms);
    artifact.add_row(row);
  }
  server.drain();
  flight.set_armed(was_armed);
  return serve_ok ? 0 : 1;
}
