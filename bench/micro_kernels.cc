// Real-CPU micro-benchmark of the convolution algorithm implementations
// (google-benchmark). Unlike the figure harnesses, these numbers are
// measured wall-clock on the host — the same measurements μ-cuDNN's
// benchmarking phase uses when running on the HostCpu backend.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "kernels/registry.h"
#include "tensor/tensor.h"

using namespace ucudnn;
using kernels::ConvProblem;

namespace {

// A small AlexNet-conv2-like problem that every algorithm supports.
ConvProblem problem(std::int64_t batch) {
  return ConvProblem({batch, 32, 27, 27}, {64, 32, 5, 5},
                     {.pad_h = 2, .pad_w = 2});
}

// A 3x3 problem for the Winograd family.
ConvProblem problem3x3(std::int64_t batch) {
  return ConvProblem({batch, 32, 28, 28}, {64, 32, 3, 3},
                     {.pad_h = 1, .pad_w = 1});
}

void run_forward(benchmark::State& state, const ConvProblem& p, int algo) {
  if (!kernels::algo_supported(ConvKernelType::kForward, algo, p)) {
    state.SkipWithError("unsupported");
    return;
  }
  std::vector<float> x(static_cast<std::size_t>(p.x.count()));
  std::vector<float> w(static_cast<std::size_t>(p.w.count()));
  std::vector<float> y(static_cast<std::size_t>(p.y.count()));
  fill_random(x.data(), p.x.count(), 1);
  fill_random(w.data(), p.w.count(), 2);
  const std::size_t ws_bytes =
      kernels::algo_workspace(ConvKernelType::kForward, algo, p);
  AlignedBuffer<char> ws(ws_bytes);
  for (auto _ : state) {
    kernels::execute(ConvKernelType::kForward, algo, p, x.data(), w.data(),
                     y.data(), 1.0f, 0.0f, ws.data(), ws_bytes);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * p.macs() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["ws_MiB"] = static_cast<double>(ws_bytes) / (1 << 20);
}

void BM_Forward5x5(benchmark::State& state) {
  run_forward(state, problem(state.range(0)), static_cast<int>(state.range(1)));
}

void BM_Forward3x3(benchmark::State& state) {
  run_forward(state, problem3x3(state.range(0)),
              static_cast<int>(state.range(1)));
}

}  // namespace

BENCHMARK(BM_Forward5x5)
    ->ArgsProduct({{4, 16},
                   {kernels::fwd_algo::kImplicitGemm,
                    kernels::fwd_algo::kImplicitPrecompGemm,
                    kernels::fwd_algo::kGemm, kernels::fwd_algo::kFft,
                    kernels::fwd_algo::kFftTiling}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Forward3x3)
    ->ArgsProduct({{8},
                   {kernels::fwd_algo::kGemm, kernels::fwd_algo::kWinograd,
                    kernels::fwd_algo::kWinogradNonfused,
                    kernels::fwd_algo::kFft}})
    ->Unit(benchmark::kMillisecond);

namespace {

// Console output as usual, plus one artifact row per completed run (times
// are per-iteration in the benchmark's unit — milliseconds here).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(bench::BenchArtifact& artifact)
      : artifact_(artifact) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      artifact_.add_row(
          bench::BenchRow()
              .col("benchmark", run.benchmark_name())
              .col("iterations", static_cast<double>(run.iterations))
              .col("real_time_ms", run.GetAdjustedRealTime())
              .col("cpu_time_ms", run.GetAdjustedCPUTime()));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchArtifact& artifact_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --json-dir must be stripped
// before benchmark::Initialize, which rejects unknown flags.
int main(int argc, char** argv) {
  bench::BenchArtifact artifact("micro_kernels", argc, argv);
  artifact.config("backend", "HostCpu");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-dir") {
      ++i;  // also skip its value
      continue;
    }
    if (arg.rfind("--json-dir=", 0) == 0) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  ArtifactReporter reporter(artifact);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
