// Serving-front-end throughput/latency bench (docs/serving.md).
//
// A closed-loop Poisson load generator drives serve::Server over a HostCpu
// UcudnnHandle: each of a fixed set of client threads repeatedly sleeps an
// exponentially-distributed think time (seeded PRNG — runs replay exactly),
// submits one deadline-carrying request, and waits for its ticket. Offered
// load is swept across multipliers of the measured single-worker capacity
// (0.5x .. 4x); the 4x point exercises the overload ladder (window
// collapse, priority shed, rejection) rather than queueing delay.
//
// Each row reports offered/achieved qps, terminal-status counts, and exact
// p50/p95/p99 over the successful requests' end-to-end latencies (sorted
// samples, not histogram interpolation). Since post-deadline completions
// resolve kDeadlineExceeded, success p99 is structurally bounded by the
// deadline — the property asserted in the table's last column.
//
// Artifact: BENCH_serve_throughput.json (ucudnn-bench-v1) via --json-dir /
// UCUDNN_BENCH_JSON_DIR, gated by tools/bench_compare.py.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "serve/server.h"
#include "telemetry/metrics.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

constexpr int kClients = 4;
constexpr double kDeadlineMs = 50.0;
constexpr double kRoundSeconds = 0.25;

kernels::ConvProblem sample_problem() {
  return kernels::ConvProblem({1, 4, 8, 8}, {8, 4, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

core::Options handle_options() {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = std::size_t{4} << 20;
  return opts;
}

serve::ServeOptions serve_options() {
  serve::ServeOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  opts.batch_window_us = 200;
  opts.max_batch = 16;
  return opts;
}

struct RoundResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One closed-loop round at `target_qps` offered across kClients threads.
RoundResult run_round(serve::Server& server, const float* weights,
                      double target_qps) {
  const kernels::ConvProblem problem = sample_problem();
  std::vector<std::vector<double>> latencies(kClients);
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> expired{0};

  const auto end_time =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(kRoundSeconds * 1e6));
  const double per_client_rate = target_qps / kClients;  // requests/second

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(1234 + c));
      std::exponential_distribution<double> think(per_client_rate);
      AlignedBuffer<float> input(static_cast<std::size_t>(problem.x.count()));
      AlignedBuffer<float> output(static_cast<std::size_t>(problem.y.count()),
                                  true);
      fill_random(input.data(), problem.x.count(),
                  static_cast<std::uint64_t>(c) + 17);
      while (std::chrono::steady_clock::now() < end_time) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(think(rng)));
        serve::ServeRequest req;
        req.problem = problem;
        req.input = input.data();
        req.weights = weights;
        req.output = output.data();
        req.priority = c % 2;
        req.deadline_ms = kDeadlineMs;
        serve::TicketPtr ticket = server.submit(std::move(req));
        submitted.fetch_add(1);
        const Status status = ticket->wait();  // closed loop
        switch (status) {
          case Status::kSuccess:
            completed.fetch_add(1);
            latencies[static_cast<std::size_t>(c)].push_back(
                ticket->latency_ms());
            break;
          case Status::kRejected:
            rejected.fetch_add(1);
            break;
          case Status::kDeadlineExceeded:
            expired.fetch_add(1);
            break;
          default:
            break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  RoundResult result;
  result.submitted = submitted.load();
  result.completed = completed.load();
  result.rejected = rejected.load();
  result.expired = expired.load();
  result.offered_qps = static_cast<double>(result.submitted) / kRoundSeconds;
  result.achieved_qps = static_cast<double>(result.completed) / kRoundSeconds;
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_ms = percentile(all, 0.50);
  result.p95_ms = percentile(all, 0.95);
  result.p99_ms = percentile(all, 0.99);
  return result;
}

}  // namespace
}  // namespace ucudnn

int main(int argc, char** argv) {
  using namespace ucudnn;

  bench::BenchArtifact artifact("serve_throughput", argc, argv);

  core::UcudnnHandle handle(
      std::make_shared<device::Device>(device::host_cpu_spec()),
      handle_options());
  serve::Server server(handle, serve_options());

  const kernels::ConvProblem problem = sample_problem();
  AlignedBuffer<float> weights(static_cast<std::size_t>(problem.w.count()));
  fill_random(weights.data(), problem.w.count(), 7);

  // Warm-up: plan + benchmark once, and seed the service-time estimate the
  // capacity calibration below reads.
  {
    AlignedBuffer<float> input(static_cast<std::size_t>(problem.x.count()));
    AlignedBuffer<float> output(static_cast<std::size_t>(problem.y.count()),
                                true);
    fill_random(input.data(), problem.x.count(), 3);
    serve::ServeRequest req;
    req.problem = problem;
    req.input = input.data();
    req.weights = weights.data();
    req.output = output.data();
    if (server.submit(std::move(req))->wait() != Status::kSuccess) {
      std::fprintf(stderr, "warm-up request failed\n");
      return 1;
    }
  }
  const double est_ms = server.service_estimate_ms();
  // Single-stream capacity from the estimate, floored against clock noise.
  const double capacity_qps = std::max(100.0, 1000.0 / std::max(est_ms, 1e-3));

  artifact.config("device", "HostCpu");
  artifact.config("clients", kClients);
  artifact.config("workers", serve_options().workers);
  artifact.config("queue_capacity", serve_options().queue_capacity);
  artifact.config("batch_window_us",
                  static_cast<std::size_t>(serve_options().batch_window_us));
  artifact.config("deadline_ms", kDeadlineMs);
  artifact.config("round_seconds", kRoundSeconds);

  std::printf("serve_throughput: closed-loop Poisson load over "
              "serve::Server (HostCpu)\n");
  std::printf("capacity estimate %.1f qps (service est %.3f ms)\n\n",
              capacity_qps, est_ms);
  std::printf("%5s %12s %12s %8s %8s %8s %8s %8s %8s %10s\n", "load",
              "offered_qps", "achieved_qps", "done", "rej", "expired",
              "p50_ms", "p95_ms", "p99_ms", "p99<=dl");
  bench::print_rule(96);

  bool p99_bounded = true;
  for (const double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    const RoundResult r =
        run_round(server, weights.data(), multiplier * capacity_qps);
    const bool bounded = r.p99_ms <= kDeadlineMs;
    p99_bounded = p99_bounded && bounded;
    std::printf("%4.1fx %12.1f %12.1f %8llu %8llu %8llu %8.3f %8.3f %8.3f %10s\n",
                multiplier, r.offered_qps, r.achieved_qps,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.expired), r.p50_ms, r.p95_ms,
                r.p99_ms, bounded ? "yes" : "NO");

    bench::BenchRow row;
    row.col("load", multiplier == 0.5 ? "0.5x"
                 : multiplier == 1.0  ? "1x"
                 : multiplier == 2.0  ? "2x"
                                      : "4x")
        .col("offered_qps", r.offered_qps)
        .col("achieved_qps", r.achieved_qps)
        .col("completed", static_cast<std::size_t>(r.completed))
        .col("rejected", static_cast<std::size_t>(r.rejected))
        .col("expired", static_cast<std::size_t>(r.expired))
        .col("p50_ms", r.p50_ms)
        .col("p95_ms", r.p95_ms)
        .col("p99_ms", r.p99_ms);
    artifact.add_row(row);
  }
  server.drain();

  // Mirror the process-wide serve histogram into the artifact so
  // bench_compare.py gates tail latency from the metrics pipeline too (the
  // per-round rows above are exact sorted-sample percentiles; this row is
  // the registry's interpolated estimate over every round).
  {
    const telemetry::MetricsSnapshot snap =
        telemetry::MetricsRegistry::instance().snapshot();
    const auto it = snap.histograms.find("ucudnn.serve.e2e_ms");
    if (it != snap.histograms.end() && it->second.count > 0) {
      const double p50 = telemetry::histogram_percentile_ms(it->second, 0.50);
      const double p95 = telemetry::histogram_percentile_ms(it->second, 0.95);
      const double p99 = telemetry::histogram_percentile_ms(it->second, 0.99);
      std::printf("\nucudnn.serve.e2e_ms histogram (all rounds): "
                  "p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  (n=%llu)\n",
                  p50, p95, p99,
                  static_cast<unsigned long long>(it->second.count));
      bench::BenchRow row;
      row.col("load", "histogram")
          .col("e2e_p50_ms", p50)
          .col("e2e_p95_ms", p95)
          .col("e2e_p99_ms", p99)
          .col("samples", static_cast<std::size_t>(it->second.count));
      artifact.add_row(row);
    }
  }

  const serve::Server::Counters c = server.counters();
  std::printf("\nserver counters: admitted=%llu rejected=%llu expired=%llu "
              "shed=%llu retried=%llu batches=%llu batched=%llu\n",
              static_cast<unsigned long long>(c.admitted),
              static_cast<unsigned long long>(c.rejected),
              static_cast<unsigned long long>(c.expired),
              static_cast<unsigned long long>(c.shed),
              static_cast<unsigned long long>(c.retried),
              static_cast<unsigned long long>(c.batches),
              static_cast<unsigned long long>(c.batched_requests));

  if (!p99_bounded) {
    std::fprintf(stderr,
                 "success p99 exceeded the deadline — the post-deadline "
                 "completion check is broken\n");
    return 1;
  }
  return 0;
}
