// Fig. 1 reproduction: forward-convolution time of single-column AlexNet's
// layers on P100-SXM2 when the workspace limit is (a) unlimited ("Best") and
// (b) one byte less than the best algorithm needs ("-1 byte"). The paper
// reports a 4.51x gap on conv2; the qualitative claim is that a one-byte
// shortfall silently forces a much slower algorithm.
#include <cstdio>

#include "bench/bench_util.h"
#include "mcudnn/mcudnn.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  std::printf("Fig. 1: cuDNN forward convolution, AlexNet layers, P100-SXM2\n");
  std::printf("mini-batch 256; 'Best' = unlimited workspace, '-1 byte' = one "
              "byte below Best's need\n\n");

  bench::BenchArtifact artifact("fig01_workspace_cliff", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 256);
  artifact.paper("conv2_slowdown", 4.51);

  mcudnn::Handle handle(bench::make_device("P100-SXM2"));

  struct LayerDef {
    const char* name;
    kernels::ConvProblem problem;
  };
  const std::int64_t n = 256;
  const std::vector<LayerDef> layers = {
      {"conv1", {{n, 3, 227, 227}, {96, 3, 11, 11}, {.stride_h = 4, .stride_w = 4}}},
      {"conv2", bench::alexnet_conv2(n)},
      {"conv3", {{n, 256, 13, 13}, {384, 256, 3, 3}, {.pad_h = 1, .pad_w = 1}}},
      {"conv4", {{n, 384, 13, 13}, {384, 384, 3, 3}, {.pad_h = 1, .pad_w = 1}}},
      {"conv5", {{n, 384, 13, 13}, {256, 384, 3, 3}, {.pad_h = 1, .pad_w = 1}}},
  };

  std::printf("%-7s %-24s %10s %-24s %10s %7s\n", "layer", "best algo",
              "best ms", "-1 byte algo", "-1B ms", "slowdn");
  bench::print_rule(92);
  double conv2_ratio = 0.0;
  for (const auto& layer : layers) {
    const int best = mcudnn::get_algorithm(handle, ConvKernelType::kForward,
                                           layer.problem,
                                           mcudnn::AlgoPreference::kPreferFastest);
    const double t_best =
        handle.device().model_time_ms(ConvKernelType::kForward, best,
                                      layer.problem);
    const std::size_t ws_best =
        mcudnn::workspace_size(handle, ConvKernelType::kForward, layer.problem,
                               best);
    int fallback = best;
    double t_fallback = t_best;
    if (ws_best > 0) {
      fallback = mcudnn::get_algorithm(
          handle, ConvKernelType::kForward, layer.problem,
          mcudnn::AlgoPreference::kSpecifyWorkspaceLimit, ws_best - 1);
      t_fallback = handle.device().model_time_ms(ConvKernelType::kForward,
                                                 fallback, layer.problem);
    }
    const double ratio = t_fallback / t_best;
    if (std::string(layer.name) == "conv2") conv2_ratio = ratio;
    artifact.add_row(
        bench::BenchRow()
            .col("layer", layer.name)
            .col("best_algo",
                 std::string(kernels::algo_name(ConvKernelType::kForward, best)))
            .col("best_ms", t_best)
            .col("fallback_algo",
                 std::string(
                     kernels::algo_name(ConvKernelType::kForward, fallback)))
            .col("fallback_ms", t_fallback)
            .col("slowdown", ratio));
    std::printf("%-7s %-24s %10.3f %-24s %10.3f %6.2fx\n", layer.name,
                std::string(kernels::algo_name(ConvKernelType::kForward, best))
                    .c_str(),
                t_best,
                std::string(
                    kernels::algo_name(ConvKernelType::kForward, fallback))
                    .c_str(),
                t_fallback, ratio);
  }
  bench::print_rule(92);
  std::printf("conv2 '-1 byte' slowdown: %.2fx (paper: 4.51x)\n", conv2_ratio);
  return 0;
}
