// Fig. 11 reproduction: TensorFlow(-style) AlexNet, ResNet-50 and
// DenseNet-40 (k = 40) on P100-SXM2 with workspace limits 8/64/512 MiB.
// tfmini, like TensorFlow 1.4.1, never announces a workspace limit through
// the benchmarking functions, so μ-cuDNN takes it from its own options
// (UCUDNN_WORKSPACE_LIMIT) — exactly the integration scenario of §IV-B2.
//
// Expected shape (paper, 64 MiB): 1.24x for AlexNet, 1.06x for ResNet-50.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "frameworks/tfmini/models.h"

using namespace ucudnn;

namespace {

double run_tfmini(const std::function<int(tfmini::Graph&)>& build,
                  std::size_t ws_limit, core::BatchSizePolicy policy) {
  tfmini::Graph graph;
  build(graph);
  auto dev = bench::make_device("P100-SXM2");
  core::Options options = bench::wr_options(ws_limit, policy);
  // TF executes ops sequentially and allocates conv scratch per call; the
  // shared-workspace mode models that (one buffer, max requirement).
  options.share_wr_workspace = true;
  core::UcudnnHandle handle(dev, options);
  tfmini::Session session(graph, handle);
  session.time(3);
  return session.last_iteration_ms();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("fig11_tensorflow_wr", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("framework", "tfmini");
  artifact.paper("alexnet_speedup_64mib", 1.24);
  artifact.paper("resnet50_speedup_64mib", 1.06);

  struct ModelDef {
    const char* name;
    std::function<int(tfmini::Graph&)> build;
  };
  const ModelDef models[] = {
      {"AlexNet (batch 256)",
       [](tfmini::Graph& g) { return tfmini::build_alexnet(g, 256); }},
      {"ResNet-50 (batch 64)",
       [](tfmini::Graph& g) { return tfmini::build_resnet50(g, 64); }},
      {"DenseNet-40 k=40 (batch 256)",
       [](tfmini::Graph& g) { return tfmini::build_densenet40(g, 256, 40); }},
  };

  std::printf("Fig. 11: tfmini (TensorFlow-style) networks on P100-SXM2\n\n");
  for (const auto& model : models) {
    std::printf("--- %s ---\n", model.name);
    std::printf("%8s %8s %12s %10s\n", "ws[MiB]", "policy", "total[ms]",
                "speedup");
    bench::print_rule(44);
    for (const std::size_t ws_mib : {8, 64, 512}) {
      double base = 0.0;
      for (const auto policy :
           {core::BatchSizePolicy::kUndivided,
            core::BatchSizePolicy::kPowerOfTwo, core::BatchSizePolicy::kAll}) {
        const double ms = run_tfmini(model.build, ws_mib << 20, policy);
        if (policy == core::BatchSizePolicy::kUndivided) base = ms;
        std::printf("%8zu %8s %12.2f %9.2fx\n", ws_mib,
                    bench::policy_tag(policy), ms, base / ms);
        artifact.add_row(bench::BenchRow()
                             .col("model", model.name)
                             .col("workspace_mib", ws_mib)
                             .col("policy", bench::policy_tag(policy))
                             .col("total_ms", ms)
                             .col("speedup", base / ms));
      }
    }
    bench::print_rule(44);
    std::printf("\n");
  }
  std::printf("(paper at 64 MiB: AlexNet 1.24x, ResNet-50 1.06x)\n");
  return 0;
}
