// Table I reproduction: the evaluation-environment specification. The
// hardware rows come from this reproduction's simulated device profiles; the
// software rows list the substitutions built for this repository (see
// DESIGN.md §2).
#include <cstdio>

#include "bench/bench_util.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("table1_environment", argc, argv);
  std::printf("Table I: evaluation environment specification\n\n");
  std::printf("%-22s %14s %14s %14s\n", "", "TSUBAME-KFC/DL", "TSUBAME 3",
              "DGX-1");
  bench::print_rule(70);
  const device::DeviceSpec specs[] = {device::k80_spec(),
                                      device::p100_sxm2_spec(),
                                      device::v100_sxm2_spec()};
  for (const auto& spec : specs) {
    artifact.add_row(bench::BenchRow()
                         .col("gpu", spec.name)
                         .col("sp_peak_tflops", spec.peak_sp_gflops / 1e3)
                         .col("mem_bandwidth_gbs", spec.mem_bandwidth_gbs)
                         .col("memory_gib", bench::mib(spec.memory_bytes) / 1024));
  }
  std::printf("%-22s %14s %14s %14s\n", "GPU (simulated)", specs[0].name.c_str(),
              specs[1].name.c_str(), specs[2].name.c_str());
  std::printf("%-22s %11.2f TF %11.2f TF %11.2f TF\n", "SP peak",
              specs[0].peak_sp_gflops / 1e3, specs[1].peak_sp_gflops / 1e3,
              specs[2].peak_sp_gflops / 1e3);
  std::printf("%-22s %9.0f GB/s %9.0f GB/s %9.0f GB/s\n", "memory bandwidth",
              specs[0].mem_bandwidth_gbs, specs[1].mem_bandwidth_gbs,
              specs[2].mem_bandwidth_gbs);
  std::printf("%-22s %10.0f GiB %10.0f GiB %10.0f GiB\n", "device memory",
              bench::mib(specs[0].memory_bytes) / 1024,
              bench::mib(specs[1].memory_bytes) / 1024,
              bench::mib(specs[2].memory_bytes) / 1024);
  bench::print_rule(70);
  std::printf("%-22s %s\n", "cuDNN substitute", "mcudnn (this repo)");
  std::printf("%-22s %s\n", "GLPK substitute", "ilp: simplex + B&B + MCKP DP");
  std::printf("%-22s %s\n", "Caffe substitute", "caffepp (this repo)");
  std::printf("%-22s %s\n", "TensorFlow substitute", "tfmini (this repo)");
  std::printf("%-22s %s\n", "C++ standard", "C++20");
  return 0;
}
