// Fig. 8 reproduction: the desirable-configuration set (Pareto front in the
// execution-time x workspace plane) of AlexNet conv2 (Forward) on P100-SXM2
// with a 120 MiB workspace cap and mini-batch 256. Each point lists the
// micro-batch division and chosen algorithms, like the colored bars of the
// paper's figure (whose top-left point was 2 x 128 @ FFT_TILING).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/benchmarker.h"
#include "core/wr_optimizer.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  std::printf("Fig. 8: desirable configurations of AlexNet conv2 (Forward), "
              "P100-SXM2\n");
  std::printf("workspace cap 120 MiB, mini-batch 256, batch-size policy: all\n\n");

  bench::BenchArtifact artifact("fig08_pareto_front", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 256);
  artifact.config("workspace_cap_mib", 120);
  artifact.paper("max_front_size", 68.0);

  core::Benchmarker benchmarker({mcudnn::Handle(bench::make_device("P100-SXM2"))},
                                nullptr);
  const auto problem = bench::alexnet_conv2(256);
  const auto table = benchmarker.run(ConvKernelType::kForward, problem,
                                     core::BatchSizePolicy::kAll);
  const auto front = core::desirable_configurations(table, 256,
                                                    std::size_t{120} << 20);

  std::printf("%12s %12s   %s\n", "ws [MiB]", "time [ms]", "configuration");
  bench::print_rule();
  for (const auto& config : front) {
    std::printf("%12.2f %12.3f   %s\n", bench::mib(config.workspace),
                config.time_ms,
                config.to_string(ConvKernelType::kForward).c_str());
    artifact.add_row(
        bench::BenchRow()
            .col("configuration", config.to_string(ConvKernelType::kForward))
            .col("workspace_mib", bench::mib(config.workspace))
            .col("time_ms", config.time_ms));
  }
  bench::print_rule();
  std::printf("front size: %zu desirable configurations "
              "(paper: at most 68 across AlexNet's kernels)\n",
              front.size());
  return 0;
}
