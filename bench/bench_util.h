// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints a paper-style table to stdout and finishes in seconds:
// network-scale runs execute in Virtual mode on the simulated device (the
// analytic time model), kernel-scale micro-benchmarks additionally run real
// CPU measurements where noted.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ucudnn.h"
#include "frameworks/caffepp/net.h"
#include "telemetry/json_writer.h"

namespace ucudnn::bench {

inline double mib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline std::shared_ptr<device::Device> make_device(const std::string& name) {
  if (name == "K80") {
    return std::make_shared<device::Device>(device::k80_spec());
  }
  if (name == "P100-SXM2") {
    return std::make_shared<device::Device>(device::p100_sxm2_spec());
  }
  if (name == "V100-SXM2") {
    return std::make_shared<device::Device>(device::v100_sxm2_spec());
  }
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

inline core::Options wr_options(std::size_t per_kernel_limit,
                                core::BatchSizePolicy policy) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWR;
  opts.batch_size_policy = policy;
  opts.workspace_limit = per_kernel_limit;
  return opts;
}

inline core::Options wd_options(std::size_t total_limit,
                                core::BatchSizePolicy policy) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.batch_size_policy = policy;
  opts.total_workspace_size = total_limit;
  return opts;
}

inline const char* policy_tag(core::BatchSizePolicy policy) {
  switch (policy) {
    case core::BatchSizePolicy::kAll: return "a";
    case core::BatchSizePolicy::kPowerOfTwo: return "p";
    case core::BatchSizePolicy::kUndivided: return "u";
  }
  return "?";
}

/// AlexNet conv2 on P100: the running example of the paper (§IV-A).
inline kernels::ConvProblem alexnet_conv2(std::int64_t batch) {
  return kernels::ConvProblem({batch, 96, 27, 27}, {256, 96, 5, 5},
                              {.pad_h = 2, .pad_w = 2});
}

struct NetRun {
  double total_ms = 0.0;
  double conv_ms = 0.0;
  std::vector<caffepp::Net::LayerTime> layers;
};

/// Times one caffepp network configuration in Virtual mode.
template <typename BuildFn>
NetRun run_caffepp(const std::string& device_name, std::int64_t batch,
                   const core::Options& options, std::size_t net_ws_limit,
                   BuildFn&& build, int iterations = 3) {
  auto dev = make_device(device_name);
  core::UcudnnHandle handle(dev, options);
  caffepp::NetOptions net_options;
  net_options.workspace_limit = net_ws_limit;
  caffepp::Net net(handle, "bench", net_options);
  build(net, batch);
  NetRun run;
  run.layers = net.time(iterations);
  run.total_ms = net.last_iteration_ms();
  for (const auto& lt : run.layers) {
    if (lt.name.rfind("conv", 0) == 0 || lt.name.rfind("res", 0) == 0 ||
        lt.name.rfind("dense", 0) == 0 || lt.name.rfind("trans", 0) == 0) {
      // Only convolution layers (their names carry these prefixes and the
      // builder gives BN/ReLU distinct suffixes handled below).
      if (lt.name.find("_bn") == std::string::npos &&
          lt.name.find("_relu") == std::string::npos &&
          lt.name.find("_sum") == std::string::npos &&
          lt.name.find("_out") == std::string::npos &&
          lt.name.find("_concat") == std::string::npos &&
          lt.name.find("_pool") == std::string::npos) {
        run.conv_ms += lt.forward_ms + lt.backward_ms;
      }
    }
  }
  return run;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// --- machine-readable bench artifacts (tools/bench_compare.py) -------------
//
// Every bench binary can dump its measurements next to the printed table as
// BENCH_<name>.json (schema "ucudnn-bench-v1") when an output directory is
// given, either with `--json-dir <dir>` (also `--json-dir=<dir>`) or via
// UCUDNN_BENCH_JSON_DIR. The artifact carries the run configuration, one row
// per table line (string cells identify the row, numeric cells are the
// metrics), and the paper-reference values the table prints — exactly what
// tools/bench_compare.py diffs between two runs.

/// Output directory from argv/environment ("" = artifacts disabled).
inline std::string json_output_dir(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-dir" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json-dir=", 0) == 0) {
      return arg.substr(std::string("--json-dir=").size());
    }
  }
  const char* env = std::getenv("UCUDNN_BENCH_JSON_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

/// One measured table line. String cells name the row (network, policy,
/// batch size...), numeric cells are comparable metrics. Cell order is
/// preserved in the artifact.
class BenchRow {
 public:
  BenchRow& col(const std::string& key, const std::string& v) {
    cells_.emplace_back(key, telemetry::json_quote(v));
    return *this;
  }
  BenchRow& col(const std::string& key, const char* v) {
    return col(key, std::string(v));
  }
  BenchRow& col(const std::string& key, double v) {
    cells_.emplace_back(key, telemetry::json_number(v));
    return *this;
  }
  BenchRow& col(const std::string& key, int v) {
    return col(key, static_cast<double>(v));
  }
  BenchRow& col(const std::string& key, long long v) {
    return col(key, static_cast<double>(v));
  }
  BenchRow& col(const std::string& key, std::size_t v) {
    return col(key, static_cast<double>(v));
  }

 private:
  friend class BenchArtifact;
  std::vector<std::pair<std::string, std::string>> cells_;  // key -> raw JSON
};

/// Collects config/rows/paper references and writes BENCH_<name>.json on
/// destruction when an output directory was resolved. Inert otherwise, so
/// binaries call it unconditionally.
class BenchArtifact {
 public:
  BenchArtifact(std::string name, int argc, char** argv)
      : name_(std::move(name)), dir_(json_output_dir(argc, argv)) {}

  BenchArtifact(const BenchArtifact&) = delete;
  BenchArtifact& operator=(const BenchArtifact&) = delete;

  bool enabled() const { return !dir_.empty(); }
  std::string path() const {
    return (std::filesystem::path(dir_) / ("BENCH_" + name_ + ".json"))
        .string();
  }

  void config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, telemetry::json_quote(v));
  }
  void config(const std::string& key, const char* v) {
    config(key, std::string(v));
  }
  void config(const std::string& key, double v) {
    config_.emplace_back(key, telemetry::json_number(v));
  }
  void config(const std::string& key, int v) {
    config(key, static_cast<double>(v));
  }
  void config(const std::string& key, long long v) {
    config(key, static_cast<double>(v));
  }
  void config(const std::string& key, std::size_t v) {
    config(key, static_cast<double>(v));
  }

  /// Paper-reference value the table prints for comparison (never a
  /// regression metric — references are constants).
  void paper(const std::string& key, double v) {
    paper_.emplace_back(key, telemetry::json_number(v));
  }

  void add_row(const BenchRow& row) { rows_.push_back(row); }

  ~BenchArtifact() {
    if (!enabled()) return;
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.value("ucudnn-bench-v1");
    w.key("name");
    w.value(name_);
    w.key("config");
    w.begin_object();
    for (const auto& [key, json] : config_) {
      w.key(key);
      w.raw(json);
    }
    w.end_object();
    w.key("rows");
    w.begin_array();
    for (const BenchRow& row : rows_) {
      w.begin_object();
      for (const auto& [key, json] : row.cells_) {
        w.key(key);
        w.raw(json);
      }
      w.end_object();
    }
    w.end_array();
    w.key("paper");
    w.begin_object();
    for (const auto& [key, json] : paper_) {
      w.key(key);
      w.raw(json);
    }
    w.end_object();
    w.end_object();

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best effort
    const std::string file = path();
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write %s\n", file.c_str());
      return;
    }
    const std::string json = w.str() + "\n";
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("[bench] wrote %s\n", file.c_str());
  }

 private:
  std::string name_;
  std::string dir_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> paper_;
  std::vector<BenchRow> rows_;
};

}  // namespace ucudnn::bench
