// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints a paper-style table to stdout and finishes in seconds:
// network-scale runs execute in Virtual mode on the simulated device (the
// analytic time model), kernel-scale micro-benchmarks additionally run real
// CPU measurements where noted.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ucudnn.h"
#include "frameworks/caffepp/net.h"

namespace ucudnn::bench {

inline double mib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline std::shared_ptr<device::Device> make_device(const std::string& name) {
  if (name == "K80") {
    return std::make_shared<device::Device>(device::k80_spec());
  }
  if (name == "P100-SXM2") {
    return std::make_shared<device::Device>(device::p100_sxm2_spec());
  }
  if (name == "V100-SXM2") {
    return std::make_shared<device::Device>(device::v100_sxm2_spec());
  }
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

inline core::Options wr_options(std::size_t per_kernel_limit,
                                core::BatchSizePolicy policy) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWR;
  opts.batch_size_policy = policy;
  opts.workspace_limit = per_kernel_limit;
  return opts;
}

inline core::Options wd_options(std::size_t total_limit,
                                core::BatchSizePolicy policy) {
  core::Options opts;
  opts.workspace_policy = core::WorkspacePolicy::kWD;
  opts.batch_size_policy = policy;
  opts.total_workspace_size = total_limit;
  return opts;
}

inline const char* policy_tag(core::BatchSizePolicy policy) {
  switch (policy) {
    case core::BatchSizePolicy::kAll: return "a";
    case core::BatchSizePolicy::kPowerOfTwo: return "p";
    case core::BatchSizePolicy::kUndivided: return "u";
  }
  return "?";
}

/// AlexNet conv2 on P100: the running example of the paper (§IV-A).
inline kernels::ConvProblem alexnet_conv2(std::int64_t batch) {
  return kernels::ConvProblem({batch, 96, 27, 27}, {256, 96, 5, 5},
                              {.pad_h = 2, .pad_w = 2});
}

struct NetRun {
  double total_ms = 0.0;
  double conv_ms = 0.0;
  std::vector<caffepp::Net::LayerTime> layers;
};

/// Times one caffepp network configuration in Virtual mode.
template <typename BuildFn>
NetRun run_caffepp(const std::string& device_name, std::int64_t batch,
                   const core::Options& options, std::size_t net_ws_limit,
                   BuildFn&& build, int iterations = 3) {
  auto dev = make_device(device_name);
  core::UcudnnHandle handle(dev, options);
  caffepp::NetOptions net_options;
  net_options.workspace_limit = net_ws_limit;
  caffepp::Net net(handle, "bench", net_options);
  build(net, batch);
  NetRun run;
  run.layers = net.time(iterations);
  run.total_ms = net.last_iteration_ms();
  for (const auto& lt : run.layers) {
    if (lt.name.rfind("conv", 0) == 0 || lt.name.rfind("res", 0) == 0 ||
        lt.name.rfind("dense", 0) == 0 || lt.name.rfind("trans", 0) == 0) {
      // Only convolution layers (their names carry these prefixes and the
      // builder gives BN/ReLU distinct suffixes handled below).
      if (lt.name.find("_bn") == std::string::npos &&
          lt.name.find("_relu") == std::string::npos &&
          lt.name.find("_sum") == std::string::npos &&
          lt.name.find("_out") == std::string::npos &&
          lt.name.find("_concat") == std::string::npos &&
          lt.name.find("_pool") == std::string::npos) {
        run.conv_ms += lt.forward_ms + lt.backward_ms;
      }
    }
  }
  return run;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace ucudnn::bench
