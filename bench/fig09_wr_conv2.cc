// Fig. 9 reproduction: WR-optimized forward convolution of AlexNet's conv2
// on P100-SXM2 with a 64 MiB workspace limit and mini-batch 256, comparing
// the three batch-size policies. The paper's headline: powerOfTwo unlocks
// FFT at micro-batch 32 within ~49 MiB; `all` adds Winograd-class choices,
// reaching 2.33x over undivided.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/benchmarker.h"
#include "core/wr_optimizer.h"

using namespace ucudnn;

int main(int argc, char** argv) {
  std::printf("Fig. 9: WR optimization of AlexNet conv2 (Forward), "
              "P100-SXM2, 64 MiB limit, batch 256\n\n");

  bench::BenchArtifact artifact("fig09_wr_conv2", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 256);
  artifact.config("workspace_limit_mib", 64);
  artifact.paper("all_speedup", 2.33);
  artifact.paper("fft_ws_mib", 48.9);

  core::Benchmarker benchmarker({mcudnn::Handle(bench::make_device("P100-SXM2"))},
                                nullptr);
  const auto problem = bench::alexnet_conv2(256);
  const std::size_t limit = std::size_t{64} << 20;

  double undivided_ms = 0.0;
  std::printf("%-12s %10s %10s %8s   %s\n", "policy", "time[ms]", "ws[MiB]",
              "speedup", "configuration");
  bench::print_rule(100);
  for (const auto policy :
       {core::BatchSizePolicy::kUndivided, core::BatchSizePolicy::kPowerOfTwo,
        core::BatchSizePolicy::kAll}) {
    const auto table = benchmarker.run(ConvKernelType::kForward, problem,
                                       policy);
    const auto config = core::optimize_wr(table, 256, limit);
    if (policy == core::BatchSizePolicy::kUndivided) {
      undivided_ms = config.time_ms;
    }
    std::printf("%-12s %10.3f %10.2f %7.2fx   %s\n",
                std::string(to_string(policy)).c_str(), config.time_ms,
                bench::mib(config.workspace), undivided_ms / config.time_ms,
                config.to_string(ConvKernelType::kForward).c_str());
    artifact.add_row(
        bench::BenchRow()
            .col("policy", std::string(to_string(policy)))
            .col("time_ms", config.time_ms)
            .col("workspace_mib", bench::mib(config.workspace))
            .col("speedup", undivided_ms / config.time_ms)
            .col("configuration",
                 config.to_string(ConvKernelType::kForward)));
  }
  bench::print_rule(100);
  std::printf("(paper: FFT @ micro-batch 32 using 48.9 MiB; all = 2.33x over "
              "undivided)\n");
  return 0;
}
