// Extension experiment (paper §III-A motivation, §VI outlook): WD's per-
// network arena "enables small groups of convolution operations, as in the
// Inception module, to run concurrently". This harness quantifies that on
// the stream-aware device simulator: the four Inception-branch forward
// chains run on four streams (wall time = max over branches), comparing
//   (a) WR with the budget split evenly per kernel   vs
//   (b) WD dividing the same total budget by the ILP,
// both executed sequentially and concurrently.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/benchmarker.h"
#include "core/wd_optimizer.h"
#include "core/wr_optimizer.h"

using namespace ucudnn;

namespace {

// The six convolutions of a GoogLeNet inception(3a) module at batch 64,
// grouped by branch (branch index -> stream).
struct Kernel {
  const char* name;
  int branch;
  kernels::ConvProblem problem;
};

std::vector<Kernel> inception_kernels() {
  const std::int64_t n = 64;
  return {
      {"1x1", 0, {{n, 192, 28, 28}, {64, 192, 1, 1}, {}}},
      {"3x3_reduce", 1, {{n, 192, 28, 28}, {96, 192, 1, 1}, {}}},
      {"3x3", 1, {{n, 96, 28, 28}, {128, 96, 3, 3}, {.pad_h = 1, .pad_w = 1}}},
      {"5x5_reduce", 2, {{n, 192, 28, 28}, {16, 192, 1, 1}, {}}},
      {"5x5", 2, {{n, 16, 28, 28}, {32, 16, 5, 5}, {.pad_h = 2, .pad_w = 2}}},
      {"pool_proj", 3, {{n, 192, 28, 28}, {32, 192, 1, 1}, {}}},
  };
}

// Executes the chosen configurations, each kernel on its branch's stream
// (or all on stream 0 for the sequential baseline), and returns wall ms.
double execute(const std::vector<Kernel>& kernels,
               const std::vector<core::Configuration>& configs,
               bool concurrent) {
  auto dev = bench::make_device("P100-SXM2");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    mcudnn::Handle handle(dev, mcudnn::ExecMode::kVirtual);
    handle.set_stream(concurrent ? kernels[i].branch : 0);
    for (const auto& micro : configs[i].micro) {
      mcudnn::convolution(handle, ConvKernelType::kForward,
                          kernels[i].problem.with_batch(micro.batch), 1.0f,
                          nullptr, nullptr, 0.0f, nullptr, micro.algo, nullptr,
                          micro.workspace);
    }
  }
  dev->sync_streams();
  return dev->clock_ms();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArtifact artifact("ext_streams_wd", argc, argv);
  artifact.config("device", "P100-SXM2");
  artifact.config("batch", 64);
  std::printf("Extension: concurrent Inception branches under WR vs WD\n");
  std::printf("(inception-3a forward kernels, batch 64, P100-SXM2, four "
              "streams)\n\n");

  const auto kernels = inception_kernels();
  core::Benchmarker benchmarker({mcudnn::Handle(bench::make_device("P100-SXM2"))},
                                nullptr);

  for (const std::size_t total_mib : {24, 96}) {
    const std::size_t total = total_mib << 20;
    const std::size_t per_kernel = total / kernels.size();

    // WR: every kernel gets total/6.
    std::vector<core::Configuration> wr_configs;
    for (const auto& kernel : kernels) {
      const auto table = benchmarker.run(ConvKernelType::kForward,
                                         kernel.problem,
                                         core::BatchSizePolicy::kPowerOfTwo);
      wr_configs.push_back(
          core::optimize_wr(table, kernel.problem.batch(), per_kernel));
    }

    // WD: the ILP divides the same total.
    std::vector<core::KernelRequest> requests;
    for (const auto& kernel : kernels) {
      requests.push_back(
          {ConvKernelType::kForward, kernel.problem, kernel.name});
    }
    const core::WdPlan plan =
        core::optimize_wd(benchmarker, requests, total,
                          core::BatchSizePolicy::kPowerOfTwo,
                          core::WdSolver::kMckpDp);
    std::vector<core::Configuration> wd_configs;
    for (const auto& assignment : plan.assignments) {
      wd_configs.push_back(assignment.config);
    }

    std::printf("--- total workspace %zu MiB (%zu MiB/kernel for WR) ---\n",
                total_mib, per_kernel >> 20);
    const double wr_seq = execute(kernels, wr_configs, false);
    const double wr_con = execute(kernels, wr_configs, true);
    const double wd_seq = execute(kernels, wd_configs, false);
    const double wd_con = execute(kernels, wd_configs, true);
    std::printf("%-22s %10s %12s %10s\n", "", "seq [ms]", "concurrent",
                "overlap");
    std::printf("%-22s %10.3f %12.3f %9.2fx\n", "WR (even split)", wr_seq,
                wr_con, wr_seq / wr_con);
    std::printf("%-22s %10.3f %12.3f %9.2fx\n", "WD (ILP division)", wd_seq,
                wd_con, wd_seq / wd_con);
    artifact.add_row(bench::BenchRow()
                         .col("policy", "WR")
                         .col("total_mib", total_mib)
                         .col("sequential_ms", wr_seq)
                         .col("concurrent_ms", wr_con)
                         .col("overlap_speedup", wr_seq / wr_con));
    artifact.add_row(bench::BenchRow()
                         .col("policy", "WD")
                         .col("total_mib", total_mib)
                         .col("sequential_ms", wd_seq)
                         .col("concurrent_ms", wd_con)
                         .col("overlap_speedup", wd_seq / wd_con));
    std::printf("WD vs WR: %.2fx sequential, %.2fx concurrent\n\n",
                wr_seq / wd_seq, wr_con / wd_con);
    std::printf("WD segment sizes: ");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      std::printf("%s=%.1fMiB ", kernels[i].name,
                  bench::mib(wd_configs[i].workspace));
    }
    std::printf("\n\n");
  }
  std::printf("Takeaway: the ILP shifts budget to the 3x3/5x5 branches whose\n"
              "FFT/Winograd configurations need it, which pays off twice —\n"
              "shorter critical path when branches overlap on streams.\n");
  return 0;
}
