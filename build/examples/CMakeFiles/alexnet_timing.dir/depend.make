# Empty dependencies file for alexnet_timing.
# This may be replaced when dependencies are built.
