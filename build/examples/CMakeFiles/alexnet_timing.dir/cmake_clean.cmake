file(REMOVE_RECURSE
  "CMakeFiles/alexnet_timing.dir/alexnet_timing.cc.o"
  "CMakeFiles/alexnet_timing.dir/alexnet_timing.cc.o.d"
  "alexnet_timing"
  "alexnet_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
