# Empty dependencies file for resnet_memory.
# This may be replaced when dependencies are built.
