file(REMOVE_RECURSE
  "CMakeFiles/resnet_memory.dir/resnet_memory.cc.o"
  "CMakeFiles/resnet_memory.dir/resnet_memory.cc.o.d"
  "resnet_memory"
  "resnet_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
