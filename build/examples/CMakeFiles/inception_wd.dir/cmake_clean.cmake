file(REMOVE_RECURSE
  "CMakeFiles/inception_wd.dir/inception_wd.cc.o"
  "CMakeFiles/inception_wd.dir/inception_wd.cc.o.d"
  "inception_wd"
  "inception_wd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inception_wd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
