
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/inception_wd.cc" "examples/CMakeFiles/inception_wd.dir/inception_wd.cc.o" "gcc" "examples/CMakeFiles/inception_wd.dir/inception_wd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ucudnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcudnn/CMakeFiles/ucudnn_mcudnn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ucudnn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/ucudnn_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ucudnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/ucudnn_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/ucudnn_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ucudnn_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ucudnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
