# Empty dependencies file for inception_wd.
# This may be replaced when dependencies are built.
