file(REMOVE_RECURSE
  "CMakeFiles/offline_cache_tool.dir/offline_cache_tool.cc.o"
  "CMakeFiles/offline_cache_tool.dir/offline_cache_tool.cc.o.d"
  "offline_cache_tool"
  "offline_cache_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_cache_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
