# Empty dependencies file for offline_cache_tool.
# This may be replaced when dependencies are built.
