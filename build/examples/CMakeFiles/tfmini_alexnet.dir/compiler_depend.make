# Empty compiler generated dependencies file for tfmini_alexnet.
# This may be replaced when dependencies are built.
