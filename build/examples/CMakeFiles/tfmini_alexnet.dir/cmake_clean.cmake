file(REMOVE_RECURSE
  "CMakeFiles/tfmini_alexnet.dir/tfmini_alexnet.cc.o"
  "CMakeFiles/tfmini_alexnet.dir/tfmini_alexnet.cc.o.d"
  "tfmini_alexnet"
  "tfmini_alexnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmini_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
