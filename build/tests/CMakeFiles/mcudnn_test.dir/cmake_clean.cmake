file(REMOVE_RECURSE
  "CMakeFiles/mcudnn_test.dir/mcudnn_test.cc.o"
  "CMakeFiles/mcudnn_test.dir/mcudnn_test.cc.o.d"
  "mcudnn_test"
  "mcudnn_test.pdb"
  "mcudnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcudnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
