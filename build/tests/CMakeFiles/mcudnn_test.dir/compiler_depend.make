# Empty compiler generated dependencies file for mcudnn_test.
# This may be replaced when dependencies are built.
