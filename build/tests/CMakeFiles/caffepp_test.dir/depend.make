# Empty dependencies file for caffepp_test.
# This may be replaced when dependencies are built.
