file(REMOVE_RECURSE
  "CMakeFiles/caffepp_test.dir/caffepp_test.cc.o"
  "CMakeFiles/caffepp_test.dir/caffepp_test.cc.o.d"
  "caffepp_test"
  "caffepp_test.pdb"
  "caffepp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caffepp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
