file(REMOVE_RECURSE
  "CMakeFiles/grouped_conv_test.dir/grouped_conv_test.cc.o"
  "CMakeFiles/grouped_conv_test.dir/grouped_conv_test.cc.o.d"
  "grouped_conv_test"
  "grouped_conv_test.pdb"
  "grouped_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
