# Empty dependencies file for grouped_conv_test.
# This may be replaced when dependencies are built.
