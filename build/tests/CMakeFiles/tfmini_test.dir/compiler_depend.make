# Empty compiler generated dependencies file for tfmini_test.
# This may be replaced when dependencies are built.
