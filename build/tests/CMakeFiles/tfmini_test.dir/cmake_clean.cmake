file(REMOVE_RECURSE
  "CMakeFiles/tfmini_test.dir/tfmini_test.cc.o"
  "CMakeFiles/tfmini_test.dir/tfmini_test.cc.o.d"
  "tfmini_test"
  "tfmini_test.pdb"
  "tfmini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
