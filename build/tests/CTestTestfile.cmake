# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/mcudnn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/caffepp_test[1]_include.cmake")
include("/root/repo/build/tests/tfmini_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/grouped_conv_test[1]_include.cmake")
