# Empty dependencies file for ucudnn_core.
# This may be replaced when dependencies are built.
