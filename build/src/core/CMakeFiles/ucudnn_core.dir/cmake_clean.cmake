file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_core.dir/benchmark_cache.cc.o"
  "CMakeFiles/ucudnn_core.dir/benchmark_cache.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/benchmarker.cc.o"
  "CMakeFiles/ucudnn_core.dir/benchmarker.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/options.cc.o"
  "CMakeFiles/ucudnn_core.dir/options.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/types.cc.o"
  "CMakeFiles/ucudnn_core.dir/types.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/ucudnn.cc.o"
  "CMakeFiles/ucudnn_core.dir/ucudnn.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/wd_optimizer.cc.o"
  "CMakeFiles/ucudnn_core.dir/wd_optimizer.cc.o.d"
  "CMakeFiles/ucudnn_core.dir/wr_optimizer.cc.o"
  "CMakeFiles/ucudnn_core.dir/wr_optimizer.cc.o.d"
  "libucudnn_core.a"
  "libucudnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
