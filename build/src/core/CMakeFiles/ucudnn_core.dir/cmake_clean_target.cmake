file(REMOVE_RECURSE
  "libucudnn_core.a"
)
