file(REMOVE_RECURSE
  "libucudnn_ilp.a"
)
