file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_ilp.dir/branch_bound.cc.o"
  "CMakeFiles/ucudnn_ilp.dir/branch_bound.cc.o.d"
  "CMakeFiles/ucudnn_ilp.dir/mckp.cc.o"
  "CMakeFiles/ucudnn_ilp.dir/mckp.cc.o.d"
  "CMakeFiles/ucudnn_ilp.dir/simplex.cc.o"
  "CMakeFiles/ucudnn_ilp.dir/simplex.cc.o.d"
  "libucudnn_ilp.a"
  "libucudnn_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
