# Empty dependencies file for ucudnn_ilp.
# This may be replaced when dependencies are built.
