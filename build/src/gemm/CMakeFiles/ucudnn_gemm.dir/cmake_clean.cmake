file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_gemm.dir/gemm.cc.o"
  "CMakeFiles/ucudnn_gemm.dir/gemm.cc.o.d"
  "libucudnn_gemm.a"
  "libucudnn_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
