file(REMOVE_RECURSE
  "libucudnn_gemm.a"
)
