# Empty compiler generated dependencies file for ucudnn_gemm.
# This may be replaced when dependencies are built.
