# Empty dependencies file for ucudnn_common.
# This may be replaced when dependencies are built.
