file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_common.dir/env.cc.o"
  "CMakeFiles/ucudnn_common.dir/env.cc.o.d"
  "CMakeFiles/ucudnn_common.dir/logging.cc.o"
  "CMakeFiles/ucudnn_common.dir/logging.cc.o.d"
  "CMakeFiles/ucudnn_common.dir/thread_pool.cc.o"
  "CMakeFiles/ucudnn_common.dir/thread_pool.cc.o.d"
  "libucudnn_common.a"
  "libucudnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
