file(REMOVE_RECURSE
  "libucudnn_common.a"
)
