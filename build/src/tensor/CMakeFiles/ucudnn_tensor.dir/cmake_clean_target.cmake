file(REMOVE_RECURSE
  "libucudnn_tensor.a"
)
