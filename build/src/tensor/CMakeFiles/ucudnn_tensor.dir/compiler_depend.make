# Empty compiler generated dependencies file for ucudnn_tensor.
# This may be replaced when dependencies are built.
