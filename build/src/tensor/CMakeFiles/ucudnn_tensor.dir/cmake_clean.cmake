file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/ucudnn_tensor.dir/tensor.cc.o.d"
  "libucudnn_tensor.a"
  "libucudnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
