
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/direct.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/direct.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/direct.cc.o.d"
  "/root/repo/src/kernels/fft_conv.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/fft_conv.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/fft_conv.cc.o.d"
  "/root/repo/src/kernels/gemm_conv.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/gemm_conv.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/gemm_conv.cc.o.d"
  "/root/repo/src/kernels/im2col.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/im2col.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/im2col.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/registry.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/registry.cc.o.d"
  "/root/repo/src/kernels/winograd.cc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/winograd.cc.o" "gcc" "src/kernels/CMakeFiles/ucudnn_kernels.dir/winograd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ucudnn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ucudnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/ucudnn_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/ucudnn_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
