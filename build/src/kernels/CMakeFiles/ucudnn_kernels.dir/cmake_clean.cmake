file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_kernels.dir/direct.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/direct.cc.o.d"
  "CMakeFiles/ucudnn_kernels.dir/fft_conv.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/fft_conv.cc.o.d"
  "CMakeFiles/ucudnn_kernels.dir/gemm_conv.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/gemm_conv.cc.o.d"
  "CMakeFiles/ucudnn_kernels.dir/im2col.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/im2col.cc.o.d"
  "CMakeFiles/ucudnn_kernels.dir/registry.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/registry.cc.o.d"
  "CMakeFiles/ucudnn_kernels.dir/winograd.cc.o"
  "CMakeFiles/ucudnn_kernels.dir/winograd.cc.o.d"
  "libucudnn_kernels.a"
  "libucudnn_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
