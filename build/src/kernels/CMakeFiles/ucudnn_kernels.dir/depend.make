# Empty dependencies file for ucudnn_kernels.
# This may be replaced when dependencies are built.
