file(REMOVE_RECURSE
  "libucudnn_kernels.a"
)
