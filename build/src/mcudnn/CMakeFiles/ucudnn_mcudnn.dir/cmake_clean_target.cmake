file(REMOVE_RECURSE
  "libucudnn_mcudnn.a"
)
