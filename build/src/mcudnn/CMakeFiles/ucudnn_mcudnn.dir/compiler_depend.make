# Empty compiler generated dependencies file for ucudnn_mcudnn.
# This may be replaced when dependencies are built.
