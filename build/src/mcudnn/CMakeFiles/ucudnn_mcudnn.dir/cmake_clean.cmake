file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_mcudnn.dir/mcudnn.cc.o"
  "CMakeFiles/ucudnn_mcudnn.dir/mcudnn.cc.o.d"
  "libucudnn_mcudnn.a"
  "libucudnn_mcudnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_mcudnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
