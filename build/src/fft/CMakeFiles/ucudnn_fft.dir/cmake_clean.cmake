file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_fft.dir/fft.cc.o"
  "CMakeFiles/ucudnn_fft.dir/fft.cc.o.d"
  "libucudnn_fft.a"
  "libucudnn_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
