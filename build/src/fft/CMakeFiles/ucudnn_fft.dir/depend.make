# Empty dependencies file for ucudnn_fft.
# This may be replaced when dependencies are built.
