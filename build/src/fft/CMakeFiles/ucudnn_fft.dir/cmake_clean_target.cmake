file(REMOVE_RECURSE
  "libucudnn_fft.a"
)
