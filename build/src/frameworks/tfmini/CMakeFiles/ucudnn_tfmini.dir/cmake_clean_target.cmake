file(REMOVE_RECURSE
  "libucudnn_tfmini.a"
)
