file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_tfmini.dir/models.cc.o"
  "CMakeFiles/ucudnn_tfmini.dir/models.cc.o.d"
  "CMakeFiles/ucudnn_tfmini.dir/tfmini.cc.o"
  "CMakeFiles/ucudnn_tfmini.dir/tfmini.cc.o.d"
  "libucudnn_tfmini.a"
  "libucudnn_tfmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_tfmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
