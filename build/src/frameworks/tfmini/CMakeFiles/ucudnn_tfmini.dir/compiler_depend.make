# Empty compiler generated dependencies file for ucudnn_tfmini.
# This may be replaced when dependencies are built.
