file(REMOVE_RECURSE
  "libucudnn_caffepp.a"
)
