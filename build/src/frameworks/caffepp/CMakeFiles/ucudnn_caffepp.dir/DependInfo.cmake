
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frameworks/caffepp/blob.cc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/blob.cc.o" "gcc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/blob.cc.o.d"
  "/root/repo/src/frameworks/caffepp/layers.cc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/layers.cc.o" "gcc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/layers.cc.o.d"
  "/root/repo/src/frameworks/caffepp/model_zoo.cc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/model_zoo.cc.o" "gcc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/model_zoo.cc.o.d"
  "/root/repo/src/frameworks/caffepp/net.cc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/net.cc.o" "gcc" "src/frameworks/caffepp/CMakeFiles/ucudnn_caffepp.dir/net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ucudnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcudnn/CMakeFiles/ucudnn_mcudnn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ucudnn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/ucudnn_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ucudnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/ucudnn_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/ucudnn_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ucudnn_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ucudnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
