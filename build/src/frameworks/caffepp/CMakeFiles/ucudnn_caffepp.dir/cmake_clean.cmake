file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_caffepp.dir/blob.cc.o"
  "CMakeFiles/ucudnn_caffepp.dir/blob.cc.o.d"
  "CMakeFiles/ucudnn_caffepp.dir/layers.cc.o"
  "CMakeFiles/ucudnn_caffepp.dir/layers.cc.o.d"
  "CMakeFiles/ucudnn_caffepp.dir/model_zoo.cc.o"
  "CMakeFiles/ucudnn_caffepp.dir/model_zoo.cc.o.d"
  "CMakeFiles/ucudnn_caffepp.dir/net.cc.o"
  "CMakeFiles/ucudnn_caffepp.dir/net.cc.o.d"
  "libucudnn_caffepp.a"
  "libucudnn_caffepp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_caffepp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
