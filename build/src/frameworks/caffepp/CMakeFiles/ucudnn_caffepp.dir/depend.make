# Empty dependencies file for ucudnn_caffepp.
# This may be replaced when dependencies are built.
