file(REMOVE_RECURSE
  "libucudnn_device.a"
)
