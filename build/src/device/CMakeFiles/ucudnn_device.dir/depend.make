# Empty dependencies file for ucudnn_device.
# This may be replaced when dependencies are built.
