file(REMOVE_RECURSE
  "CMakeFiles/ucudnn_device.dir/device.cc.o"
  "CMakeFiles/ucudnn_device.dir/device.cc.o.d"
  "libucudnn_device.a"
  "libucudnn_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucudnn_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
