# Empty dependencies file for ext_grouped_alexnet.
# This may be replaced when dependencies are built.
