file(REMOVE_RECURSE
  "../bench/ext_grouped_alexnet"
  "../bench/ext_grouped_alexnet.pdb"
  "CMakeFiles/ext_grouped_alexnet.dir/ext_grouped_alexnet.cc.o"
  "CMakeFiles/ext_grouped_alexnet.dir/ext_grouped_alexnet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_grouped_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
