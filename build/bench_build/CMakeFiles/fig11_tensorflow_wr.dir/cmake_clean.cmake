file(REMOVE_RECURSE
  "../bench/fig11_tensorflow_wr"
  "../bench/fig11_tensorflow_wr.pdb"
  "CMakeFiles/fig11_tensorflow_wr.dir/fig11_tensorflow_wr.cc.o"
  "CMakeFiles/fig11_tensorflow_wr.dir/fig11_tensorflow_wr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tensorflow_wr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
