# Empty compiler generated dependencies file for fig11_tensorflow_wr.
# This may be replaced when dependencies are built.
