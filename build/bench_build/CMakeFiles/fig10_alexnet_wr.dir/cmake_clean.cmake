file(REMOVE_RECURSE
  "../bench/fig10_alexnet_wr"
  "../bench/fig10_alexnet_wr.pdb"
  "CMakeFiles/fig10_alexnet_wr.dir/fig10_alexnet_wr.cc.o"
  "CMakeFiles/fig10_alexnet_wr.dir/fig10_alexnet_wr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alexnet_wr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
