# Empty dependencies file for fig09_wr_conv2.
# This may be replaced when dependencies are built.
