file(REMOVE_RECURSE
  "../bench/fig09_wr_conv2"
  "../bench/fig09_wr_conv2.pdb"
  "CMakeFiles/fig09_wr_conv2.dir/fig09_wr_conv2.cc.o"
  "CMakeFiles/fig09_wr_conv2.dir/fig09_wr_conv2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_wr_conv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
