file(REMOVE_RECURSE
  "../bench/fig13_wd_vs_wr"
  "../bench/fig13_wd_vs_wr.pdb"
  "CMakeFiles/fig13_wd_vs_wr.dir/fig13_wd_vs_wr.cc.o"
  "CMakeFiles/fig13_wd_vs_wr.dir/fig13_wd_vs_wr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_wd_vs_wr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
