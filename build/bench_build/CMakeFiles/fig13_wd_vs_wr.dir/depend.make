# Empty dependencies file for fig13_wd_vs_wr.
# This may be replaced when dependencies are built.
