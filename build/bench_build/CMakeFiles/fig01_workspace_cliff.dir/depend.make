# Empty dependencies file for fig01_workspace_cliff.
# This may be replaced when dependencies are built.
