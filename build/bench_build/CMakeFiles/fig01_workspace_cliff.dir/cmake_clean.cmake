file(REMOVE_RECURSE
  "../bench/fig01_workspace_cliff"
  "../bench/fig01_workspace_cliff.pdb"
  "CMakeFiles/fig01_workspace_cliff.dir/fig01_workspace_cliff.cc.o"
  "CMakeFiles/fig01_workspace_cliff.dir/fig01_workspace_cliff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_workspace_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
