file(REMOVE_RECURSE
  "../bench/fig08_pareto_front"
  "../bench/fig08_pareto_front.pdb"
  "CMakeFiles/fig08_pareto_front.dir/fig08_pareto_front.cc.o"
  "CMakeFiles/fig08_pareto_front.dir/fig08_pareto_front.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pareto_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
