# Empty compiler generated dependencies file for opt_overhead.
# This may be replaced when dependencies are built.
