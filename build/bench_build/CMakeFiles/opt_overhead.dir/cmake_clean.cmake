file(REMOVE_RECURSE
  "../bench/opt_overhead"
  "../bench/opt_overhead.pdb"
  "CMakeFiles/opt_overhead.dir/opt_overhead.cc.o"
  "CMakeFiles/opt_overhead.dir/opt_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
