# Empty compiler generated dependencies file for ext_streams_wd.
# This may be replaced when dependencies are built.
