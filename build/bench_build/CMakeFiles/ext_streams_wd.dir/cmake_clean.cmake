file(REMOVE_RECURSE
  "../bench/ext_streams_wd"
  "../bench/ext_streams_wd.pdb"
  "CMakeFiles/ext_streams_wd.dir/ext_streams_wd.cc.o"
  "CMakeFiles/ext_streams_wd.dir/ext_streams_wd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_streams_wd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
