file(REMOVE_RECURSE
  "../bench/ablation_ilp"
  "../bench/ablation_ilp.pdb"
  "CMakeFiles/ablation_ilp.dir/ablation_ilp.cc.o"
  "CMakeFiles/ablation_ilp.dir/ablation_ilp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
