file(REMOVE_RECURSE
  "../bench/table1_environment"
  "../bench/table1_environment.pdb"
  "CMakeFiles/table1_environment.dir/table1_environment.cc.o"
  "CMakeFiles/table1_environment.dir/table1_environment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
