# Empty compiler generated dependencies file for table1_environment.
# This may be replaced when dependencies are built.
