# Empty dependencies file for fig14_wd_division.
# This may be replaced when dependencies are built.
