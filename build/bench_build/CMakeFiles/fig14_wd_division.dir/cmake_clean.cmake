file(REMOVE_RECURSE
  "../bench/fig14_wd_division"
  "../bench/fig14_wd_division.pdb"
  "CMakeFiles/fig14_wd_division.dir/fig14_wd_division.cc.o"
  "CMakeFiles/fig14_wd_division.dir/fig14_wd_division.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_wd_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
