// Serving front-end tests (docs/serving.md): deadline-aware admission and
// the overload ladder (deterministic, using a workerless server so nothing
// dequeues underneath the assertions), batch coalescing numerics, drain
// semantics, fault-injected retry + blacklist reuse, and the soak guarantee
// that under sustained overload with serve.* faults armed every request
// resolves to exactly one of kSuccess / kDeadlineExceeded / kRejected /
// kShuttingDown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/fault_injection.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace ucudnn {
namespace {

using serve::Batcher;
using serve::MergedBatch;
using serve::RequestQueue;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::Server;
using serve::Ticket;
using serve::TicketPtr;

std::shared_ptr<device::Device> cpu() {
  return std::make_shared<device::Device>(device::host_cpu_spec());
}

core::Options core_opts() {
  core::Options opts;
  opts.batch_size_policy = core::BatchSizePolicy::kPowerOfTwo;
  opts.workspace_limit = std::size_t{4} << 20;
  return opts;
}

/// Tiny per-sample problem: cheap on HostCpu, real numerics.
kernels::ConvProblem sample_problem(std::int64_t batch = 1) {
  return kernels::ConvProblem({batch, 2, 6, 6}, {4, 2, 3, 3},
                              {.pad_h = 1, .pad_w = 1});
}

ServeOptions workerless(std::size_t capacity = 4) {
  ServeOptions opts;
  opts.workers = 0;
  opts.queue_capacity = capacity;
  // Watermarks at 1.0: the ladder's early rungs stay out of the way so
  // admission tests can fill the queue to capacity with equal priorities.
  opts.window_watermark = 1.0;
  opts.shed_watermark = 1.0;
  return opts;
}

/// One client-side request: owns its operand buffers.
struct Client {
  explicit Client(std::int64_t samples, std::uint64_t seed,
                  const AlignedBuffer<float>& weights)
      : problem(sample_problem(samples)),
        input(static_cast<std::size_t>(problem.x.count())),
        output(static_cast<std::size_t>(problem.y.count()), true),
        weights_(weights.data()) {
    fill_random(input.data(), problem.x.count(), seed);
  }

  ServeRequest request(int priority = 0, double deadline_ms = 0.0) {
    ServeRequest req;
    req.problem = problem;
    req.input = input.data();
    req.weights = weights_;
    req.output = output.data();
    req.priority = priority;
    req.deadline_ms = deadline_ms;
    return req;
  }

  kernels::ConvProblem problem;
  AlignedBuffer<float> input;
  AlignedBuffer<float> output;
  const float* weights_;
};

AlignedBuffer<float> make_weights(std::uint64_t seed = 77) {
  const kernels::ConvProblem p = sample_problem();
  AlignedBuffer<float> w(static_cast<std::size_t>(p.w.count()));
  fill_random(w.data(), p.w.count(), seed);
  return w;
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().configure(""); }
};

// --- admission & overload ladder (workerless => deterministic) ------------

TEST_F(ServeTest, AdmitsUntilFullThenRejectsAndDrainFailsQueued) {
  core::UcudnnHandle handle(cpu(), core_opts());
  Server server(handle, workerless(4));
  const AlignedBuffer<float> weights = make_weights();

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<TicketPtr> queued;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(1, 100 + i, weights));
    TicketPtr ticket = server.submit(clients.back()->request());
    EXPECT_FALSE(ticket->done());
    queued.push_back(ticket);
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  EXPECT_EQ(server.overload_level(), 3);

  // Queue full, equal priority: immediate kRejected, caller never blocks.
  Client extra(1, 200, weights);
  TicketPtr rejected = server.submit(extra.request());
  ASSERT_TRUE(rejected->done());
  EXPECT_EQ(rejected->wait(), Status::kRejected);

  server.drain();
  for (const TicketPtr& ticket : queued) {
    ASSERT_TRUE(ticket->done());
    EXPECT_EQ(ticket->wait(), Status::kShuttingDown);
  }
  // Submit after drain: immediate kShuttingDown.
  TicketPtr late = server.submit(extra.request());
  EXPECT_EQ(late->wait(), Status::kShuttingDown);

  const Server::Counters c = server.counters();
  EXPECT_EQ(c.admitted, 4u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.shutdown_failed, 5u);
  EXPECT_EQ(c.completed, 0u);
}

TEST_F(ServeTest, OverloadLadderShedsByPriority) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions ladder_opts;  // default watermarks: rung 1 at depth 2, rung 2
  ladder_opts.workers = 0;   // at depth 3, rung 3 when full
  ladder_opts.queue_capacity = 4;
  Server server(handle, ladder_opts);
  const AlignedBuffer<float> weights = make_weights();

  std::vector<std::unique_ptr<Client>> clients;
  auto submit = [&](int priority) {
    clients.push_back(
        std::make_unique<Client>(1, 300 + clients.size(), weights));
    return server.submit(clients.back()->request(priority));
  };

  TicketPtr a = submit(1);  // depth 0: rung 0
  TicketPtr b = submit(1);  // depth 1: rung 0
  TicketPtr c = submit(1);  // depth 2: rung 1 (window collapse only)
  EXPECT_EQ(server.overload_level(), 2);
  // Rung 2: only arrivals beating the lowest queued priority get the slot.
  TicketPtr d = submit(2);
  EXPECT_FALSE(d->done());
  EXPECT_EQ(server.overload_level(), 3);
  // Rung 3 (full): a strictly higher-priority arrival evicts the lowest
  // (newest among equals => c), an equal/lower one is rejected.
  TicketPtr e = submit(5);
  ASSERT_TRUE(c->done());
  EXPECT_EQ(c->wait(), Status::kRejected);
  EXPECT_FALSE(e->done());
  TicketPtr f = submit(0);
  EXPECT_EQ(f->wait(), Status::kRejected);

  const Server::Counters counters = server.counters();
  EXPECT_EQ(counters.admitted, 5u);
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.rejected, 2u);  // the shed victim + the refused arrival

  server.drain();
  for (const TicketPtr& ticket : {a, b, d, e}) {
    EXPECT_EQ(ticket->wait(), Status::kShuttingDown);
  }
}

TEST_F(ServeTest, ExpiredInQueueRequestsAreShed) {
  core::UcudnnHandle handle(cpu(), core_opts());
  Server server(handle, workerless());
  const AlignedBuffer<float> weights = make_weights();

  Client stale_client(1, 400, weights);
  TicketPtr stale = server.submit(stale_client.request(0, /*deadline_ms=*/2));
  EXPECT_FALSE(stale->done());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Admission of the next request purges expired entries in passing.
  Client fresh_client(1, 401, weights);
  TicketPtr fresh = server.submit(fresh_client.request());
  ASSERT_TRUE(stale->done());
  EXPECT_EQ(stale->wait(), Status::kDeadlineExceeded);
  EXPECT_FALSE(fresh->done());
  EXPECT_EQ(server.counters().expired, 1u);
  server.drain();
}

TEST_F(ServeTest, NextBatchHandsBackExpiredTicketsInsteadOfSleeping) {
  // Regression: next_batch used to purge expired tickets into the caller's
  // stale vector and then go back to sleep on the condvar — at the tail of a
  // load burst no new traffic arrives to wake the worker, so the purged
  // tickets (and their waiting clients) hung forever. An empty-queue purge
  // must hand the expired tickets back immediately.
  RequestQueue queue(workerless(4));
  const AlignedBuffer<float> weights = make_weights();
  Client client(1, 420, weights);
  auto ticket = std::make_shared<Ticket>(client.request(0, 2.0));
  ticket->set_deadline(ticket->submitted() + std::chrono::milliseconds(2));
  ASSERT_EQ(queue.try_enqueue(ticket, 0.0).status, Status::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  std::vector<TicketPtr> stale;
  const std::vector<TicketPtr> batch =
      queue.next_batch(/*window_us=*/0, /*max_batch=*/64,
                       /*est_service_ms=*/0.0, &stale);
  EXPECT_TRUE(batch.empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].get(), ticket.get());
}

TEST_F(ServeTest, ShedExpiredMaintenanceHook) {
  core::UcudnnHandle handle(cpu(), core_opts());
  Server server(handle, workerless());
  const AlignedBuffer<float> weights = make_weights();

  Client client(1, 410, weights);
  TicketPtr ticket = server.submit(client.request(0, /*deadline_ms=*/2));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.shed_expired(), 1u);
  EXPECT_EQ(ticket->wait(), Status::kDeadlineExceeded);
  server.drain();
}

TEST_F(ServeTest, LateStragglerTightensBatchWindow) {
  // Regression: next_batch computed the deadline-capped window end only from
  // the members present at seed time, so a straggler joining during the wait
  // with a tight deadline was held for the full batch window — past its
  // latest viable start. Late joiners must tighten the window too.
  RequestQueue queue(workerless(8));
  const AlignedBuffer<float> weights = make_weights();

  Client seed_client(1, 950, weights);
  auto seed = std::make_shared<Ticket>(seed_client.request());  // no deadline
  ASSERT_EQ(queue.try_enqueue(seed, 0.0).status, Status::kSuccess);

  Client late_client(1, 951, weights);
  auto late = std::make_shared<Ticket>(late_client.request());
  late->set_deadline(late->submitted() + std::chrono::milliseconds(100));
  std::thread submitter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.try_enqueue(late, 0.0);
  });

  const auto start = std::chrono::steady_clock::now();
  std::vector<TicketPtr> stale;
  const std::vector<TicketPtr> batch =
      queue.next_batch(/*window_us=*/10'000'000, /*max_batch=*/64,
                       /*est_service_ms=*/0.0, &stale);
  submitter.join();
  ASSERT_EQ(batch.size(), 2u);
  // Returned around the straggler's deadline-capped latest start, not the
  // 10 s window the seed alone would have allowed.
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
}

TEST_F(ServeTest, UnmeetableDeadlineRejectedAtAdmission) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  // Establish a positive service-time estimate with one real batch.
  Client warmup(1, 420, weights);
  EXPECT_EQ(server.submit(warmup.request())->wait(), Status::kSuccess);
  ASSERT_GT(server.service_estimate_ms(), 0.0);

  // A microsecond-scale deadline is provably unmeetable under the estimate:
  // resolved kDeadlineExceeded at admission, without occupying the queue.
  Client hopeless(1, 421, weights);
  TicketPtr ticket = server.submit(hopeless.request(0, /*deadline_ms=*/1e-6));
  ASSERT_TRUE(ticket->done());
  EXPECT_EQ(ticket->wait(), Status::kDeadlineExceeded);
}

// --- numerics -------------------------------------------------------------

TEST_F(ServeTest, ServedSingletonMatchesDirectConvolution) {
  const AlignedBuffer<float> weights = make_weights();
  Client client(2, 500, weights);

  core::UcudnnHandle direct(cpu(), core_opts());
  AlignedBuffer<float> expected(
      static_cast<std::size_t>(client.problem.y.count()), true);
  direct.convolution(ConvKernelType::kForward, client.problem, 1.0f,
                     client.input.data(), weights.data(), 0.0f,
                     expected.data());

  core::UcudnnHandle served_handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.pad_to_pow2 = false;  // singleton passes client buffers through
  Server server(served_handle, opts);
  EXPECT_EQ(server.submit(client.request())->wait(), Status::kSuccess);

  EXPECT_LT(max_rel_diff(client.output.data(), expected.data(),
                         client.problem.y.count()),
            1e-3);
}

TEST_F(ServeTest, BatcherMergeScatterMatchesPerRequestResults) {
  const AlignedBuffer<float> weights = make_weights();
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<TicketPtr> tickets;
  const std::int64_t sizes[] = {1, 2, 1, 1};  // total 5 -> padded 8
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(sizes[i], 600 + i, weights));
    tickets.push_back(
        std::make_shared<serve::Ticket>(clients.back()->request()));
  }

  Batcher batcher(/*pad_to_pow2=*/true);
  MergedBatch merged = batcher.build(tickets);
  EXPECT_EQ(merged.total, 5);
  EXPECT_EQ(merged.padded, 8);
  EXPECT_TRUE(merged.staged);
  ASSERT_EQ(merged.problem.batch(), 8);

  core::UcudnnHandle handle(cpu(), core_opts());
  handle.convolution(merged.type, merged.problem, merged.alpha, merged.a,
                     merged.b, merged.beta, merged.out);
  batcher.scatter(merged, tickets);

  core::UcudnnHandle reference(cpu(), core_opts());
  for (const auto& client : clients) {
    AlignedBuffer<float> expected(
        static_cast<std::size_t>(client->problem.y.count()), true);
    reference.convolution(ConvKernelType::kForward, client->problem, 1.0f,
                          client->input.data(), weights.data(), 0.0f,
                          expected.data());
    EXPECT_LT(max_rel_diff(client->output.data(), expected.data(),
                           client->problem.y.count()),
              1e-3);
  }
}

TEST_F(ServeTest, CoalescesConcurrentSameShapeRequests) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.batch_window_us = 250'000;  // hold wide open: submits land in one batch
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(1, 700 + i, weights));
    tickets.push_back(server.submit(clients.back()->request()));
  }
  for (const TicketPtr& ticket : tickets) {
    EXPECT_EQ(ticket->wait(), Status::kSuccess);
  }
  const Server::Counters c = server.counters();
  EXPECT_EQ(c.completed, 4u);
  EXPECT_EQ(c.batched_requests, 4u);
  // All four submits land inside the quarter-second window; the worker
  // merges them instead of running four batch-1 convolutions.
  EXPECT_LE(c.batches, 2u);
}

TEST_F(ServeTest, ConcurrentBackwardRequestsRunAsSingletons) {
  // Regression: coalescible() used to accept same-shape backward pairs, so
  // the queue merged two concurrent backward requests into one batch that
  // Batcher::build then refused with kBadParam — valid requests spuriously
  // failed. Backward requests must never coalesce, and must still succeed
  // (as singleton batches) when submitted concurrently.
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.batch_window_us = 50'000;  // wide open: a coalescible pair WOULD merge
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  const kernels::ConvProblem problem = sample_problem(2);
  struct BwdClient {
    BwdClient(const kernels::ConvProblem& p, std::uint64_t seed)
        : dy(static_cast<std::size_t>(p.y.count())),
          dx(static_cast<std::size_t>(p.x.count()), true) {
      fill_random(dy.data(), p.y.count(), seed);
    }
    AlignedBuffer<float> dy;
    AlignedBuffer<float> dx;
  };
  BwdClient c1(problem, 940), c2(problem, 941);
  auto request_of = [&](BwdClient& c) {
    ServeRequest req;
    req.type = ConvKernelType::kBackwardData;
    req.problem = problem;
    req.input = c.dy.data();
    req.weights = weights.data();
    req.output = c.dx.data();
    return req;
  };
  EXPECT_FALSE(serve::coalescible(request_of(c1), request_of(c2)));

  TicketPtr t1 = server.submit(request_of(c1));
  TicketPtr t2 = server.submit(request_of(c2));
  EXPECT_EQ(t1->wait(), Status::kSuccess);
  EXPECT_EQ(t2->wait(), Status::kSuccess);

  const Server::Counters counters = server.counters();
  EXPECT_EQ(counters.completed, 2u);
  EXPECT_EQ(counters.batches, 2u);  // singletons: never merged

  core::UcudnnHandle reference(cpu(), core_opts());
  for (BwdClient* c : {&c1, &c2}) {
    AlignedBuffer<float> expected(static_cast<std::size_t>(problem.x.count()),
                                  true);
    reference.convolution(ConvKernelType::kBackwardData, problem, 1.0f,
                          c->dy.data(), weights.data(), 0.0f,
                          expected.data());
    EXPECT_LT(max_rel_diff(c->dx.data(), expected.data(), problem.x.count()),
              1e-3);
  }
}

// --- drain ----------------------------------------------------------------

TEST_F(ServeTest, DrainFlushesInFlightBatch) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.batch_window_us = 10'000'000;  // in-flight batch parked for stragglers
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  Client client(1, 800, weights);
  TicketPtr ticket = server.submit(client.request());
  // Wait for the worker to claim the request (it then idles in the batch
  // window); the request is now in flight, not queued.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (server.queue_depth() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(server.queue_depth(), 0u);

  // Drain must flush the claimed batch (kSuccess), not fail it — and must
  // not wait out the 10 s window.
  server.drain();
  ASSERT_TRUE(ticket->done());
  EXPECT_EQ(ticket->wait(), Status::kSuccess);
  EXPECT_EQ(server.counters().completed, 1u);
  EXPECT_EQ(server.counters().shutdown_failed, 0u);
}

// --- fault injection ------------------------------------------------------

TEST_F(ServeTest, InjectedAdmissionFaultRejects) {
  // Configured BEFORE the server exists: the clause parks on the dotted
  // site name and arms when the Server registers serve.enqueue.
  FaultInjector::instance().configure("serve.enqueue:every=2");
  core::UcudnnHandle handle(cpu(), core_opts());
  Server server(handle, workerless());
  const AlignedBuffer<float> weights = make_weights();

  Client client(1, 900, weights);
  TicketPtr first = server.submit(client.request());
  EXPECT_FALSE(first->done());  // check 1: pass
  TicketPtr second = server.submit(client.request());
  ASSERT_TRUE(second->done());  // check 2: injected rejection
  EXPECT_EQ(second->wait(), Status::kRejected);
  EXPECT_EQ(server.counters().rejected, 1u);
  server.drain();
}

TEST_F(ServeTest, TransientExecFaultIsRetriedToSuccess) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.retry_backoff_us = 10;
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  // Warm the plan first so the failure hits steady-state execution.
  Client warmup(1, 910, weights);
  EXPECT_EQ(server.submit(warmup.request())->wait(), Status::kSuccess);

  FaultInjector::instance().configure("serve.exec:every=2");
  Client client(1, 911, weights);
  // Check 1 passes; check 2 (first attempt of this batch)... every=2 fires
  // on even checks, so whichever attempt hits an even check fails and the
  // retry (odd check) succeeds. Submit two: both must succeed via retries.
  TicketPtr t1 = server.submit(client.request());
  EXPECT_EQ(t1->wait(), Status::kSuccess);
  Client client2(1, 912, weights);
  TicketPtr t2 = server.submit(client2.request());
  EXPECT_EQ(t2->wait(), Status::kSuccess);
  EXPECT_GE(server.counters().retried, 1u);
  EXPECT_EQ(server.counters().exec_failed, 0u);
}

TEST_F(ServeTest, RetryRestoresBetaAccumulatedOutputBeforeReexecution) {
  // Regression: an unstaged singleton with beta != 0 executes directly into
  // the client's output buffer; a transient failure whose attempt already
  // wrote it used to let the retry re-read the accumulated values and apply
  // beta twice. The retry ladder must restore the pre-attempt output first.
  // (The serve.exec fault point sits after the convolution precisely so this
  // worst case is injectable.)
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  opts.pad_to_pow2 = false;  // singleton stays unstaged: the direct path
  opts.retry_backoff_us = 10;
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  // Warm the plan so the injected failure hits steady-state execution.
  Client warmup(1, 930, weights);
  EXPECT_EQ(server.submit(warmup.request())->wait(), Status::kSuccess);

  Client client(1, 931, weights);
  fill_random(client.output.data(), client.problem.y.count(), 932);
  AlignedBuffer<float> expected(
      static_cast<std::size_t>(client.problem.y.count()));
  std::copy(client.output.data(),
            client.output.data() + client.problem.y.count(), expected.data());
  core::UcudnnHandle direct(cpu(), core_opts());
  direct.convolution(ConvKernelType::kForward, client.problem, 1.0f,
                     client.input.data(), weights.data(), 1.0f,
                     expected.data());

  // Exactly the first execution attempt fails — after its convolution ran
  // and accumulated into the client buffer.
  FaultInjector::instance().configure("serve.exec:every=1,count=1");
  ServeRequest req = client.request();
  req.beta = 1.0f;
  EXPECT_EQ(server.submit(req)->wait(), Status::kSuccess);
  EXPECT_GE(server.counters().retried, 1u);
  EXPECT_LT(max_rel_diff(client.output.data(), expected.data(),
                         client.problem.y.count()),
            1e-3);
}

TEST_F(ServeTest, KernelFaultsEngageExecutorBlacklistLadder) {
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 1;
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  // Warm up with no faults so planning/benchmarking are done and cached.
  Client warmup(1, 920, weights);
  EXPECT_EQ(server.submit(warmup.request())->wait(), Status::kSuccess);

  // Four consecutive kernel-level failures: the executor's ladder (PR 2)
  // burns its retries, blacklists the algorithm, re-plans onto the
  // runner-up — and the serve request still succeeds.
  FaultInjector::instance().configure("kernel:every=1,count=4");
  Client client(1, 921, weights);
  EXPECT_EQ(server.submit(client.request())->wait(), Status::kSuccess);
  EXPECT_GE(handle.degradation_stats().blacklisted_algorithms, 1u);
}

// --- soak: the no-hang guarantee under overload + faults ------------------

TEST_F(ServeTest, SoakOverloadWithFaultsEveryRequestResolves) {
  FaultInjector::instance().configure(
      "serve.enqueue:p=0.05,seed=7;serve.exec:every=13;serve.batch:every=17");
  core::UcudnnHandle handle(cpu(), core_opts());
  ServeOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 16;  // ~4x overload vs the submit rate below
  opts.batch_window_us = 100;
  opts.max_batch = 8;
  opts.retry_backoff_us = 10;
  Server server(handle, opts);
  const AlignedBuffer<float> weights = make_weights();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::unique_ptr<Client>>> clients(kThreads);
  std::vector<std::vector<TicketPtr>> tickets(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    clients[t].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      clients[t].push_back(std::make_unique<Client>(
          1, static_cast<std::uint64_t>(1000 + t * kPerThread + i), weights));
    }
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int priority = i % 3;
        const double deadline_ms = (i % 3 == 2) ? 2.0 : 0.0;
        tickets[t].push_back(
            server.submit(clients[t][static_cast<std::size_t>(i)]->request(
                priority, deadline_ms)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.drain();

  int resolved = 0;
  for (const auto& per_thread : tickets) {
    for (const TicketPtr& ticket : per_thread) {
      // Bounded wait so a hang fails loudly instead of wedging the suite.
      Status status = Status::kInternalError;
      ASSERT_TRUE(ticket->wait_for_us(30'000'000, &status));
      EXPECT_TRUE(status == Status::kSuccess ||
                  status == Status::kDeadlineExceeded ||
                  status == Status::kRejected ||
                  status == Status::kShuttingDown)
          << "unexpected terminal status: " << to_string(status);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);

  // Every ticket is counted under exactly one terminal status.
  const Server::Counters c = server.counters();
  EXPECT_EQ(c.completed + c.rejected + c.expired + c.shutdown_failed +
                c.exec_failed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.exec_failed, 0u);  // every=13/17 never exhausts 3 retries
}

}  // namespace
}  // namespace ucudnn
